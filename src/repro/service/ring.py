"""Consistent-hash ring and peer directory for the elastic service.

The ring answers one question deterministically on every machine:
*which member owns this key?*  Both sides of the service use it --
:func:`~repro.service.client.solve_grid` places grid cells on ring
members, and the cache fabric's remote tiers probe the key's owner
first -- so a cell and its cached record land on the same server
without any coordination beyond agreeing on the member list.

:class:`HashRing` is the textbook construction: each member is hashed
onto ``replicas`` points of a 2^64 circle (SHA-256, so placement is
identical across processes, machines, and Python hash seeds), and a key
belongs to the first member point at or after the key's own hash.
Virtual nodes smooth the load; consistency bounds churn -- adding or
removing one member of *n* moves only ~1/n of the keyspace, which is
what makes mid-sweep re-sharding cheap.

:class:`PeerDirectory` is the membership view behind the ring: a
thread-safe set of addresses (always including this server's own),
updated by ``PeerHello``/``PeerList`` exchanges and pruned by the
heartbeat loop when a member stops answering.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Callable, Iterable

__all__ = ["HashRing", "PeerDirectory", "ring_key"]


def _point(text: str) -> int:
    """A stable 64-bit position on the hash circle."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


def ring_key(system: str, problem_id: str, seed: int) -> str:
    """The placement key of one grid cell.

    A pure function of the cell's identity -- *not* of the member list
    or the cell's flat grid index -- so every client, before or after a
    membership change, hashes the same cell to the same circle
    position.
    """
    return f"{system}/{problem_id}/{seed}"


class HashRing:
    """Consistent hashing over a set of member addresses.

    Deterministic by construction: two rings built from the same member
    set (in any order) are identical, and ``node_for`` depends only on
    the key and the membership -- never on insertion history.
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[int] = []  # sorted circle positions
        self._owners: dict[int, str] = {}  # position -> member
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> bool:
        """Add one member; False if it was already present."""
        if node in self._nodes:
            return False
        self._nodes.add(node)
        for index in range(self.replicas):
            position = _point(f"{node}#{index}")
            # SHA-256 collisions between distinct vnode labels are not a
            # practical concern, but ties must still resolve the same
            # way everywhere: lowest address wins the point.
            holder = self._owners.get(position)
            if holder is not None:
                if node < holder:
                    self._owners[position] = node
                continue
            self._owners[position] = node
            bisect.insort(self._points, position)
        return True

    def remove(self, node: str) -> bool:
        """Drop one member; False if it was not present."""
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        for index in range(self.replicas):
            position = _point(f"{node}#{index}")
            if self._owners.get(position) != node:
                continue
            del self._owners[position]
            point_at = bisect.bisect_left(self._points, position)
            if (
                point_at < len(self._points)
                and self._points[point_at] == position
            ):
                del self._points[point_at]
        return True

    def node_for(self, key: str) -> str | None:
        """The member owning ``key``, or None for an empty ring."""
        if not self._points:
            return None
        position = _point(key)
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._owners[self._points[index]]

    def preference(self, key: str) -> list[str]:
        """All members in ring order starting at ``key``'s owner.

        The failover order for the key: if the owner is gone, the next
        distinct member clockwise takes over -- the same answer on
        every machine, so clients re-shard identically without talking
        to each other.
        """
        if not self._points:
            return []
        ordered: list[str] = []
        seen: set[str] = set()
        start = bisect.bisect_right(self._points, _point(key))
        for offset in range(len(self._points)):
            owner = self._owners[
                self._points[(start + offset) % len(self._points)]
            ]
            if owner not in seen:
                seen.add(owner)
                ordered.append(owner)
                if len(seen) == len(self._nodes):
                    break
        return ordered


class PeerDirectory:
    """Thread-safe ring membership for one server.

    Always contains ``self_address``.  ``add``/``remove`` return
    whether the view changed so the server can resync its cache tiers
    only on actual membership churn; ``on_change`` (if given) fires
    outside the lock with the new member tuple.
    """

    def __init__(
        self,
        self_address: str,
        on_change: Callable[[tuple[str, ...]], None] | None = None,
    ):
        self.self_address = self_address
        self._members: set[str] = {self_address}
        self._lock = threading.Lock()
        self._on_change = on_change

    def members(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._members))

    def others(self) -> tuple[str, ...]:
        """Every member except this server itself."""
        with self._lock:
            return tuple(
                sorted(self._members - {self.self_address})
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    def __contains__(self, address: str) -> bool:
        with self._lock:
            return address in self._members

    def add(self, addresses: Iterable[str]) -> tuple[str, ...]:
        """Merge addresses into the view; returns the newly added ones."""
        with self._lock:
            fresh = tuple(
                sorted(set(addresses) - self._members - {""})
            )
            if fresh:
                self._members.update(fresh)
            members = tuple(sorted(self._members))
        if fresh and self._on_change is not None:
            self._on_change(members)
        return fresh

    def remove(self, address: str) -> bool:
        """Drop a member (never this server itself)."""
        if address == self.self_address:
            return False
        with self._lock:
            if address not in self._members:
                return False
            self._members.discard(address)
            members = tuple(sorted(self._members))
        if self._on_change is not None:
            self._on_change(members)
        return True

    def ring(self, replicas: int = 64) -> HashRing:
        """A consistent-hash ring over the current membership."""
        return HashRing(self.members(), replicas=replicas)
