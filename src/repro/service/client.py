"""Clients for the solve service: blocking, streaming, and sharded grids.

:class:`ServiceClient` speaks the length-framed protocol over one
persistent TCP connection (requests are pipelined strictly one at a
time per connection, so frames never interleave).  Three entry points:

- :meth:`ServiceClient.solve` -- blocking; returns a
  :class:`SolveOutcome`, optionally forwarding the event stream to a
  sink as it arrives;
- :meth:`ServiceClient.iter_solve` -- a generator yielding each typed
  :class:`~repro.core.events.Event` live, then raising ``StopIteration``
  whose value is the outcome (also stored on ``last_outcome``);
- :func:`solve_grid` -- the Eq. 7 ``problems x runs`` grid fanned over
  one or more server shards with a deterministic merge: cells are
  assigned round-robin by flat grid index, results are keyed by
  ``(problem, run)``, and the reassembled
  :class:`~repro.evaluation.harness.EvalResult` is bit-identical to a
  local ``evaluate_many`` at the same seeds no matter how many shards
  served it or in what order cells finished.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.events import (
    BatchFinished,
    CellFinished,
    Event,
    EventSink,
    as_sink,
)
from repro.service.protocol import (
    Ack,
    CacheGet,
    CachePut,
    CacheReply,
    ControlRequest,
    Done,
    ErrorFrame,
    EventFrame,
    ProtocolError,
    SolveRequest,
    StatsReply,
    WaveSteal,
    WaveTasks,
    read_frame,
    write_frame,
)


class ServiceError(Exception):
    """The server answered with an error frame."""


@dataclass(frozen=True)
class SolveOutcome:
    """Terminal result of one submitted cell."""

    source: str
    passed: bool
    score: float
    seconds: float
    system: str
    cached: bool = False
    dedup: bool = False


def parse_address(address: str) -> tuple[str, int]:
    """``host:port`` -> ``(host, port)`` (host defaults to localhost)."""
    text = address.strip()
    if ":" not in text:
        raise ValueError(f"bad service address {text!r}; expected host:port")
    host, _, port_text = text.rpartition(":")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"bad service port in {text!r}") from exc
    return host or "127.0.0.1", port


def parse_shards(spec: str) -> list[str]:
    """Comma-separated ``host:port`` list -> validated address list."""
    shards = [part.strip() for part in spec.split(",") if part.strip()]
    if not shards:
        raise ValueError("no service addresses given")
    for shard in shards:
        parse_address(shard)
    return shards


class ServiceClient:
    """One connection to one solve server.

    ``timeout`` bounds every read; the default (None) blocks until the
    server answers -- a queued cold cell may legitimately wait behind a
    long sweep, and a half-finished grid is worse than a patient one.
    ``connect_timeout`` only bounds the initial connection, so dead
    addresses still fail fast.
    """

    def __init__(
        self,
        address: str,
        timeout: float | None = None,
        connect_timeout: float | None = 10.0,
    ):
        self.address = address
        self.timeout = timeout
        host, port = parse_address(address)
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._sock.settimeout(timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._next_id = 0
        self.last_outcome: SolveOutcome | None = None

    def close(self) -> None:
        for closer in (self._rfile.close, self._wfile.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _read(self):
        frame = read_frame(self._rfile)
        if frame is None:
            raise ServiceError("server closed the connection")
        return frame

    def iter_solve(
        self,
        system: str,
        problem: str,
        seed: int = 0,
        priority: int = 0,
        stream: bool = True,
    ) -> Iterator[Event]:
        """Submit one cell; yield its events, return the outcome.

        The generator's ``StopIteration.value`` (i.e. ``return`` value)
        is the :class:`SolveOutcome`; it is also stored on
        ``self.last_outcome`` for plain ``for`` loops.  Abandoning the
        generator mid-stream (``break``/``close``) drains the rest of
        the reply up to its terminal frame, so the connection stays
        usable for the next request.
        """
        request_id = self._request_id()
        write_frame(
            self._wfile,
            SolveRequest(
                id=request_id,
                system=system,
                problem=problem,
                seed=seed,
                priority=priority,
                stream=stream,
            ),
        )
        ack = self._read()
        if isinstance(ack, ErrorFrame):
            raise ServiceError(ack.message)
        if not isinstance(ack, Ack):
            raise ProtocolError(f"expected ack, got {ack.type!r}")
        dedup = ack.dedup
        terminal_seen = False
        try:
            while True:
                frame = self._read()
                if isinstance(frame, EventFrame):
                    yield frame.event
                elif isinstance(frame, Done):
                    terminal_seen = True
                    outcome = SolveOutcome(
                        source=frame.source,
                        passed=frame.passed,
                        score=frame.score,
                        seconds=frame.seconds,
                        system=frame.system,
                        cached=frame.cached,
                        dedup=frame.dedup or dedup,
                    )
                    self.last_outcome = outcome
                    return outcome
                elif isinstance(frame, ErrorFrame):
                    terminal_seen = True
                    raise ServiceError(frame.message)
                else:
                    raise ProtocolError(f"unexpected frame {frame.type!r}")
        finally:
            if not terminal_seen:
                self._drain_reply()

    def _drain_reply(self, grace: float = 5.0) -> None:
        """Consume frames up to the terminal one (abandoned stream).

        Drains for at most ``grace`` seconds -- an abandoned *cold*
        solve may not finish for minutes, and blocking a caller that
        already walked away is worse than reconnecting.  If the stream
        can't be drained cleanly in time the connection is closed
        instead of being left desynchronised.
        """
        deadline = time.monotonic() + grace
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._sock.settimeout(remaining)
                frame = self._read()
                if isinstance(frame, (Done, ErrorFrame)):
                    self._sock.settimeout(self.timeout)
                    return
                if not isinstance(frame, EventFrame):
                    break
        except (ServiceError, ProtocolError, OSError):
            pass
        self.close()

    def solve(
        self,
        system: str,
        problem: str,
        seed: int = 0,
        priority: int = 0,
        events: EventSink | Callable[[Event], None] | None = None,
    ) -> SolveOutcome:
        """Blocking submit; streams events into ``events`` if given."""
        sink = as_sink(events)
        stream = events is not None
        iterator = self.iter_solve(
            system, problem, seed=seed, priority=priority, stream=stream
        )
        while True:
            try:
                event = next(iterator)
            except StopIteration as stop:
                return stop.value
            sink.emit(event)

    def _cache_request(self, frame) -> CacheReply:
        write_frame(self._wfile, frame)
        reply = self._read()
        if isinstance(reply, ErrorFrame):
            raise ServiceError(reply.message)
        if not isinstance(reply, CacheReply):
            raise ProtocolError(f"expected cache reply, got {reply.type!r}")
        return reply

    def cache_get(self, layer: str, key: str) -> str | None:
        """Probe the server's ``layer`` cache; the base64 blob or None.

        The transport primitive behind
        :class:`~repro.runtime.cache.RemoteTier`: decoding (and type
        guarding) the blob is the caller's job, so this client never
        unpickles peer data itself.
        """
        reply = self._cache_request(
            CacheGet(id=self._request_id(), layer=layer, key=key)
        )
        return reply.blob if reply.found else None

    def cache_put(self, layer: str, key: str, blob: str) -> bool:
        """Push one encoded entry into the server's ``layer`` cache."""
        reply = self._cache_request(
            CachePut(id=self._request_id(), layer=layer, key=key, blob=blob)
        )
        return reply.stored

    def wave_steal(self, max_items: int = 4) -> list[tuple[str, str]]:
        """Claim published score-wave tasks from the server's steal board.

        Returns ``(simulation key, base64-pickled ScoreTask)`` pairs --
        possibly empty when the server has nothing published.  Like
        :meth:`cache_get`, decoding (and type-guarding) the blobs is
        the caller's job; see
        :func:`repro.service.worker.steal_from_peer` for the full
        steal-execute-return loop.
        """
        write_frame(
            self._wfile, WaveSteal(id=self._request_id(), max_items=max_items)
        )
        reply = self._read()
        if isinstance(reply, ErrorFrame):
            raise ServiceError(reply.message)
        if not isinstance(reply, WaveTasks):
            raise ProtocolError(f"expected wave tasks, got {reply.type!r}")
        return [(key, blob) for key, blob in reply.tasks]

    def _control(self, op: str):
        request_id = self._request_id()
        write_frame(self._wfile, ControlRequest(id=request_id, op=op))
        frame = self._read()
        if isinstance(frame, ErrorFrame):
            raise ServiceError(frame.message)
        return frame

    def ping(self) -> bool:
        return isinstance(self._control("ping"), Ack)

    def stats(self) -> dict:
        frame = self._control("stats")
        if not isinstance(frame, StatsReply):
            raise ProtocolError(f"expected stats, got {frame.type!r}")
        return frame.stats

    def shutdown_server(self) -> None:
        """Ask the server to drain and stop (connection closes after)."""
        self._control("shutdown")
        self.close()


def fetch_stats(address: str, timeout: float | None = 10.0) -> dict:
    """One-shot stats snapshot from a running server."""
    with ServiceClient(address, timeout=timeout) as client:
        return client.stats()


def stop_server(address: str, timeout: float | None = 10.0) -> None:
    """One-shot graceful shutdown of a running server."""
    with ServiceClient(address, timeout=timeout) as client:
        client.shutdown_server()


@dataclass
class GridReport:
    """Execution statistics for one sharded service grid."""

    shards: list[str]
    wall_seconds: float = 0.0
    cells: int = 0
    cached_cells: int = 0
    dedup_cells: int = 0
    latencies: list[float] = field(default_factory=list)
    shard_cells: dict[str, int] = field(default_factory=dict)

    @property
    def cells_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.cells / self.wall_seconds

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> float:
        return max(self.latencies, default=0.0)

    def render(self) -> str:
        lines = [
            f"shards          {len(self.shards)}  ({', '.join(self.shards)})",
            f"wall clock      {self.wall_seconds:8.2f} s",
            f"grid cells      {self.cells:8d}  "
            f"({self.cells_per_second:.2f} cells/s)",
            f"cache-served    {self.cached_cells:8d}",
            f"dedup-shared    {self.dedup_cells:8d}",
            f"latency         mean {self.mean_latency * 1000.0:8.1f} ms  "
            f"max {self.max_latency * 1000.0:8.1f} ms",
        ]
        for shard in self.shards:
            lines.append(
                f"  {shard:20s} {self.shard_cells.get(shard, 0):6d} cells"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class _GridCell:
    index: int  # flat grid index (drives the shard assignment)
    problem_index: int
    run_index: int
    problem_id: str
    seed: int


def solve_grid(
    system: str,
    suite: str,
    runs: int = 1,
    seed0: int = 0,
    problems=None,
    shards: list[str] | None = None,
    connections: int = 2,
    timeout: float | None = None,
    progress: Callable[[str], None] | None = None,
    events: EventSink | Callable[[Event], None] | None = None,
):
    """Evaluate the ``problems x runs`` grid through service shards.

    Returns ``(EvalResult, GridReport)``.  The determinism contract
    matches :func:`~repro.runtime.batch.evaluate_many`: cell seeds are
    fixed as ``seed0 + run`` before dispatch, the shard assignment is a
    pure function of the flat grid index (round-robin), and the merge
    keys results by ``(problem, run)`` -- so the result grid is
    bit-identical to local ``--jobs 1`` execution regardless of shard
    count, per-shard connection count, or completion order.  ``events``
    receives live :class:`~repro.core.events.CellFinished` frames in
    completion order plus a terminal ``BatchFinished``, like the local
    batch API.
    """
    from repro.evalsets.suites import get_suite
    from repro.evaluation.harness import EvalResult, ProblemOutcome
    from repro.service.worker import registered_system_name

    if not shards:
        raise ValueError("solve_grid needs at least one service address")
    for shard in shards:
        parse_address(shard)  # fail fast on malformed addresses
    if runs < 1:
        raise ValueError("runs must be >= 1")
    chosen = problems if problems is not None else get_suite(suite)
    if not chosen:
        raise ValueError("empty problem list")
    resolved_name = registered_system_name(system)
    sink = as_sink(events)

    cells: list[_GridCell] = []
    for problem_index, problem in enumerate(chosen):
        for run in range(runs):
            cells.append(
                _GridCell(
                    index=len(cells),
                    problem_index=problem_index,
                    run_index=run,
                    problem_id=problem.id,
                    seed=seed0 + run,
                )
            )

    # Deterministic shard assignment: flat index round-robin.
    per_shard: dict[str, list[_GridCell]] = {shard: [] for shard in shards}
    for cell in cells:
        per_shard[shards[cell.index % len(shards)]].append(cell)

    report = GridReport(shards=list(shards))
    outcomes: dict[tuple[int, int], SolveOutcome] = {}
    errors: list[str] = []
    lock = threading.Lock()
    by_problem: dict[int, int] = {}
    next_to_report = 0

    def flush_progress() -> None:
        # Progress lines in suite order, like evaluate_many.
        nonlocal next_to_report
        while (
            next_to_report < len(chosen)
            and by_problem.get(next_to_report, 0) == runs
        ):
            if progress is not None:
                done = [
                    outcomes[(next_to_report, run)] for run in range(runs)
                ]
                passes = sum(1 for o in done if o.passed)
                progress(
                    f"{resolved_name} {chosen[next_to_report].id}: "
                    f"{passes}/{runs} passed"
                )
            next_to_report += 1

    def drain(shard: str, work: list[_GridCell]) -> None:
        queue = iter(work)
        queue_lock = threading.Lock()

        def next_cell() -> _GridCell | None:
            with queue_lock:
                return next(queue, None)

        def connection_loop() -> None:
            client: ServiceClient | None = None
            try:
                while True:
                    cell = next_cell()
                    if cell is None:
                        return
                    submitted = time.perf_counter()
                    try:
                        if client is None:
                            client = ServiceClient(shard, timeout=timeout)
                        outcome = client.solve(
                            system, cell.problem_id, seed=cell.seed
                        )
                    except (ServiceError, ProtocolError, OSError, ValueError) as exc:
                        with lock:
                            errors.append(
                                f"{shard} {cell.problem_id} "
                                f"run {cell.run_index}: {exc}"
                            )
                        return
                    latency = time.perf_counter() - submitted
                    with lock:
                        outcomes[(cell.problem_index, cell.run_index)] = outcome
                        report.latencies.append(latency)
                        report.shard_cells[shard] = (
                            report.shard_cells.get(shard, 0) + 1
                        )
                        if outcome.cached:
                            report.cached_cells += 1
                        if outcome.dedup:
                            report.dedup_cells += 1
                        by_problem[cell.problem_index] = (
                            by_problem.get(cell.problem_index, 0) + 1
                        )
                        sink.emit(
                            CellFinished(
                                problem_id=cell.problem_id,
                                run_index=cell.run_index,
                                passed=outcome.passed,
                                score=outcome.score,
                                # Server-side execution time, matching
                                # what local evaluate_many reports (the
                                # round-trip latency lives in the grid
                                # report, not the event stream).
                                seconds=outcome.seconds,
                                solve_cached=outcome.cached,
                            )
                        )
                        flush_progress()
            finally:
                if client is not None:
                    client.close()

        threads = [
            threading.Thread(
                target=connection_loop,
                name=f"repro-grid-{shard}-{index}",
                daemon=True,
            )
            for index in range(max(1, min(connections, len(work))))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    started = time.perf_counter()
    shard_threads = [
        threading.Thread(
            target=drain, args=(shard, work), name=f"repro-shard-{shard}",
            daemon=True,
        )
        for shard, work in per_shard.items()
        if work
    ]
    for thread in shard_threads:
        thread.start()
    for thread in shard_threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - started
    report.cells = len(outcomes)

    if errors:
        raise ServiceError(
            f"{len(errors)} grid cell(s) failed: " + "; ".join(errors[:3])
        )
    if len(outcomes) != len(cells):
        raise ServiceError(
            f"grid incomplete: {len(outcomes)}/{len(cells)} cells returned"
        )
    sink.emit(BatchFinished(cells=len(cells), seconds=report.wall_seconds))

    result = EvalResult(system=resolved_name, suite=suite)
    for problem_index, problem in enumerate(chosen):
        outcome = ProblemOutcome(problem.id, problem.difficulty)
        for run in range(runs):
            cell_outcome = outcomes[(problem_index, run)]
            outcome.runs += 1
            outcome.passes += int(cell_outcome.passed)
            outcome.scores.append(cell_outcome.score)
        result.outcomes.append(outcome)
    return result, report
