"""Clients for the solve service: blocking, multiplexed, and sharded grids.

Two client classes speak the length-framed protocol:

- :class:`ServiceClient` -- the simple one: requests are pipelined
  strictly one at a time per connection, so frames never interleave.
  This is also the legacy (v1/v2) client shape; the server echoes
  whatever protocol version a client speaks.
- :class:`MultiplexedClient` -- the v3 shape: one socket, any number of
  in-flight requests from any number of threads, with reply frames
  demultiplexed by request id on a background reader thread.  A grid
  shard's worth of concurrent solves runs over a single connection.

Three solve entry points:

- :meth:`ServiceClient.solve` / :meth:`MultiplexedClient.solve` --
  blocking; return a :class:`SolveOutcome`, optionally forwarding the
  event stream to a sink as it arrives;
- :meth:`ServiceClient.iter_solve` -- a generator yielding each typed
  :class:`~repro.core.events.Event` live, then raising ``StopIteration``
  whose value is the outcome (also stored on ``last_outcome``);
- :func:`solve_grid` -- the Eq. 7 ``problems x runs`` grid fanned over
  one or more server shards with a deterministic merge: results are
  keyed by ``(problem, run)``, and the reassembled
  :class:`~repro.evaluation.harness.EvalResult` is bit-identical to a
  local ``evaluate_many`` at the same seeds no matter how many shards
  served it or in what order cells finished.

**Elasticity.**  ``solve_grid`` survives shard death: a cell that hits
a transport failure (connection severed, half-written frame, server
killed) is retried once on a fresh connection, and if the shard is
really gone its remaining cells migrate to the surviving shards -- by
consistent-hash preference when ``ring=True``, round-robin otherwise.
Re-running a cell is harmless by construction (the outcome is a pure
function of ``(system, problem, seed)`` and the server dedups in-flight
work), so the merged grid stays bit-identical through failures.  With
``ring=True`` the shard list is first expanded to the full ring
membership (fetched from any given member) and cells are placed by
:func:`~repro.service.ring.ring_key`, which co-locates each cell with
its cached record on every machine that agrees on the member list.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.events import (
    BatchFinished,
    CellFinished,
    Event,
    EventSink,
    as_sink,
)
from repro.service.protocol import (
    Ack,
    CacheGet,
    CachePut,
    CacheReply,
    ControlRequest,
    Done,
    ErrorFrame,
    EventFrame,
    PeerGone,
    PeerHello,
    PeerList,
    ProtocolError,
    SolveRequest,
    StatsReply,
    WaveSteal,
    WaveTasks,
    read_frame,
    write_frame,
)
from repro.service.ring import HashRing, ring_key


class ServiceError(Exception):
    """The server answered with an error frame."""


@dataclass(frozen=True)
class SolveOutcome:
    """Terminal result of one submitted cell."""

    source: str
    passed: bool
    score: float
    seconds: float
    system: str
    cached: bool = False
    dedup: bool = False


def parse_address(address: str) -> tuple[str, int]:
    """``host:port`` -> ``(host, port)`` (host defaults to localhost)."""
    text = address.strip()
    if ":" not in text:
        raise ValueError(f"bad service address {text!r}; expected host:port")
    host, _, port_text = text.rpartition(":")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"bad service port in {text!r}") from exc
    return host or "127.0.0.1", port


def parse_shards(spec: str) -> list[str]:
    """Comma-separated ``host:port`` list -> validated address list."""
    shards = [part.strip() for part in spec.split(",") if part.strip()]
    if not shards:
        raise ValueError("no service addresses given")
    for shard in shards:
        parse_address(shard)
    return shards


class ServiceClient:
    """One connection to one solve server, one request at a time.

    ``timeout`` bounds every read; the default (None) blocks until the
    server answers -- a queued cold cell may legitimately wait behind a
    long sweep, and a half-finished grid is worse than a patient one.
    ``connect_timeout`` only bounds the initial connection, so dead
    addresses still fail fast.
    """

    def __init__(
        self,
        address: str,
        timeout: float | None = None,
        connect_timeout: float | None = 10.0,
    ):
        self.address = address
        self.timeout = timeout
        host, port = parse_address(address)
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._sock.settimeout(timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._next_id = 0
        self.last_outcome: SolveOutcome | None = None

    def close(self) -> None:
        for closer in (self._rfile.close, self._wfile.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _read(self):
        frame = read_frame(self._rfile)
        if frame is None:
            raise ServiceError("server closed the connection")
        return frame

    def iter_solve(
        self,
        system: str,
        problem: str,
        seed: int = 0,
        priority: int = 0,
        stream: bool = True,
    ) -> Iterator[Event]:
        """Submit one cell; yield its events, return the outcome.

        The generator's ``StopIteration.value`` (i.e. ``return`` value)
        is the :class:`SolveOutcome`; it is also stored on
        ``self.last_outcome`` for plain ``for`` loops.  Abandoning the
        generator mid-stream (``break``/``close``) drains the rest of
        the reply up to its terminal frame, so the connection stays
        usable for the next request.
        """
        request_id = self._request_id()
        write_frame(
            self._wfile,
            SolveRequest(
                id=request_id,
                system=system,
                problem=problem,
                seed=seed,
                priority=priority,
                stream=stream,
            ),
        )
        ack = self._read()
        if isinstance(ack, ErrorFrame):
            raise ServiceError(ack.message)
        if not isinstance(ack, Ack):
            raise ProtocolError(f"expected ack, got {ack.type!r}")
        dedup = ack.dedup
        terminal_seen = False
        try:
            while True:
                frame = self._read()
                if isinstance(frame, EventFrame):
                    yield frame.event
                elif isinstance(frame, Done):
                    terminal_seen = True
                    outcome = SolveOutcome(
                        source=frame.source,
                        passed=frame.passed,
                        score=frame.score,
                        seconds=frame.seconds,
                        system=frame.system,
                        cached=frame.cached,
                        dedup=frame.dedup or dedup,
                    )
                    self.last_outcome = outcome
                    return outcome
                elif isinstance(frame, ErrorFrame):
                    terminal_seen = True
                    raise ServiceError(frame.message)
                else:
                    raise ProtocolError(f"unexpected frame {frame.type!r}")
        finally:
            if not terminal_seen:
                self._drain_reply()

    def _drain_reply(self, grace: float = 5.0) -> None:
        """Consume frames up to the terminal one (abandoned stream).

        Drains for at most ``grace`` seconds -- an abandoned *cold*
        solve may not finish for minutes, and blocking a caller that
        already walked away is worse than reconnecting.  If the stream
        can't be drained cleanly in time the connection is closed
        instead of being left desynchronised.
        """
        deadline = time.monotonic() + grace
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._sock.settimeout(remaining)
                frame = self._read()
                if isinstance(frame, (Done, ErrorFrame)):
                    self._sock.settimeout(self.timeout)
                    return
                if not isinstance(frame, EventFrame):
                    break
        except (ServiceError, ProtocolError, OSError):
            pass
        self.close()

    def solve(
        self,
        system: str,
        problem: str,
        seed: int = 0,
        priority: int = 0,
        events: EventSink | Callable[[Event], None] | None = None,
    ) -> SolveOutcome:
        """Blocking submit; streams events into ``events`` if given."""
        sink = as_sink(events)
        stream = events is not None
        iterator = self.iter_solve(
            system, problem, seed=seed, priority=priority, stream=stream
        )
        while True:
            try:
                event = next(iterator)
            except StopIteration as stop:
                return stop.value
            sink.emit(event)

    def _cache_request(self, frame) -> CacheReply:
        write_frame(self._wfile, frame)
        reply = self._read()
        if isinstance(reply, ErrorFrame):
            raise ServiceError(reply.message)
        if not isinstance(reply, CacheReply):
            raise ProtocolError(f"expected cache reply, got {reply.type!r}")
        return reply

    def cache_get(self, layer: str, key: str) -> str | None:
        """Probe the server's ``layer`` cache; the base64 blob or None.

        The transport primitive behind
        :class:`~repro.runtime.cache.RemoteTier`: decoding (and type
        guarding) the blob is the caller's job, so this client never
        unpickles peer data itself.
        """
        reply = self._cache_request(
            CacheGet(id=self._request_id(), layer=layer, key=key)
        )
        return reply.blob if reply.found else None

    def cache_put(self, layer: str, key: str, blob: str) -> bool:
        """Push one encoded entry into the server's ``layer`` cache."""
        reply = self._cache_request(
            CachePut(id=self._request_id(), layer=layer, key=key, blob=blob)
        )
        return reply.stored

    def wave_steal(self, max_items: int = 4) -> list[tuple[str, str]]:
        """Claim published score-wave tasks from the server's steal board.

        Returns ``(simulation key, base64-pickled ScoreTask)`` pairs --
        possibly empty when the server has nothing published.  Like
        :meth:`cache_get`, decoding (and type-guarding) the blobs is
        the caller's job; see
        :func:`repro.service.worker.steal_from_peer` for the full
        steal-execute-return loop.
        """
        write_frame(
            self._wfile, WaveSteal(id=self._request_id(), max_items=max_items)
        )
        reply = self._read()
        if isinstance(reply, ErrorFrame):
            raise ServiceError(reply.message)
        if not isinstance(reply, WaveTasks):
            raise ProtocolError(f"expected wave tasks, got {reply.type!r}")
        return [(key, blob) for key, blob in reply.tasks]

    def _control(self, op: str):
        request_id = self._request_id()
        write_frame(self._wfile, ControlRequest(id=request_id, op=op))
        frame = self._read()
        if isinstance(frame, ErrorFrame):
            raise ServiceError(frame.message)
        return frame

    def ping(self) -> bool:
        return isinstance(self._control("ping"), Ack)

    def stats(self) -> dict:
        frame = self._control("stats")
        if not isinstance(frame, StatsReply):
            raise ProtocolError(f"expected stats, got {frame.type!r}")
        return frame.stats

    def peers(self) -> tuple[str, ...]:
        """The server's current view of the ring membership."""
        frame = self._control("peers")
        if not isinstance(frame, PeerList):
            raise ProtocolError(f"expected peer list, got {frame.type!r}")
        return tuple(frame.peers)

    def hello(
        self, self_address: str, peers: tuple[str, ...] = ()
    ) -> tuple[str, ...]:
        """Introduce ``self_address`` to this server's ring.

        Sends a ``PeerHello`` carrying our own membership view and
        returns the server's merged view -- the gossip primitive behind
        ``serve --join`` and the heartbeat loop.
        """
        request_id = self._request_id()
        write_frame(
            self._wfile,
            PeerHello(id=request_id, address=self_address, peers=tuple(peers)),
        )
        frame = self._read()
        if isinstance(frame, ErrorFrame):
            raise ServiceError(frame.message)
        if not isinstance(frame, PeerList):
            raise ProtocolError(f"expected peer list, got {frame.type!r}")
        return tuple(frame.peers)

    def shutdown_server(self) -> None:
        """Ask the server to drain and stop (connection closes after)."""
        self._control("shutdown")
        self.close()


class MultiplexedClient:
    """One socket, many in-flight requests, demuxed by request id.

    Any number of threads may call :meth:`solve` (or the control
    helpers) concurrently: writes are serialised frame-at-a-time under
    a lock, and a background reader thread routes every reply frame to
    its request's private queue by ``id``.  A transport failure fails
    every in-flight request at once (each caller sees the same
    :class:`ServiceError`), after which the client is dead -- callers
    reconnect by constructing a new one.

    Frames for requests nobody is waiting on (an abandoned or timed-out
    solve's stragglers) are discarded by the reader, so one slow or
    dropped request can never desynchronise the others.
    """

    def __init__(
        self,
        address: str,
        timeout: float | None = None,
        connect_timeout: float | None = 10.0,
    ):
        self.address = address
        self.timeout = timeout
        host, port = parse_address(address)
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        # The reader thread owns the socket timeout; per-request
        # patience is enforced on each pending queue instead.
        self._sock.settimeout(None)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._write_lock = threading.Lock()
        self._pending: dict[int, "queue.SimpleQueue"] = {}
        self._pending_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._dead: Exception | None = None
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-mux-reader-{address}",
            daemon=True,
        )
        self._reader.start()

    @property
    def closed(self) -> bool:
        return self._dead is not None

    def close(self) -> None:
        self._fail(ServiceError("client closed"))

    def __enter__(self) -> "MultiplexedClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- demux machinery ------------------------------------------------

    def _read_loop(self) -> None:
        try:
            while True:
                frame = read_frame(self._rfile)
                if frame is None:
                    raise ServiceError("server closed the connection")
                with self._pending_lock:
                    waiter = self._pending.get(getattr(frame, "id", 0))
                if waiter is not None:
                    waiter.put(frame)
                # else: a stray frame for an abandoned request; drop it.
        except PeerGone as exc:
            self._fail(ServiceError(f"connection severed mid-frame: {exc}"))
        except (ServiceError, ProtocolError) as exc:
            self._fail(exc)
        except (OSError, ValueError) as exc:
            # Keep the transport flavour visible in the message: grid
            # retry triage (_is_transient) only sees the ServiceError.
            self._fail(
                ServiceError(
                    f"connection lost: {exc or type(exc).__name__}"
                )
            )
        finally:
            # The reader owns the final close: closing the buffered file
            # objects from any other thread would block on the buffer
            # lock this thread holds while parked in recv().
            for closer in (
                self._rfile.close,
                self._wfile.close,
                self._sock.close,
            ):
                try:
                    closer()
                except (OSError, ValueError):
                    pass

    def _fail(self, exc: Exception) -> None:
        with self._pending_lock:
            if self._dead is not None:
                return
            self._dead = exc
            waiters = list(self._pending.values())
        for waiter in waiters:
            waiter.put(exc)
        # shutdown() -- not close() -- so the fd dies out from under the
        # reader's blocking recv and it can run its own cleanup.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def _register(self) -> tuple[int, "queue.SimpleQueue"]:
        request_id = next(self._ids)
        waiter: "queue.SimpleQueue" = queue.SimpleQueue()
        with self._pending_lock:
            if self._dead is not None:
                raise self._dead
            self._pending[request_id] = waiter
        return request_id, waiter

    def _unregister(self, request_id: int) -> None:
        with self._pending_lock:
            self._pending.pop(request_id, None)

    def _send(self, frame) -> None:
        try:
            with self._write_lock:
                write_frame(self._wfile, frame)
        except (OSError, ValueError) as exc:
            self._fail(ServiceError(f"send failed: {exc}"))
            raise self._dead from exc

    def _await(self, waiter: "queue.SimpleQueue"):
        try:
            item = waiter.get(timeout=self.timeout)
        except queue.Empty:
            raise ServiceError(
                f"timed out after {self.timeout}s waiting for {self.address}"
            ) from None
        if isinstance(item, Exception):
            raise item
        return item

    # -- requests -------------------------------------------------------

    def solve(
        self,
        system: str,
        problem: str,
        seed: int = 0,
        priority: int = 0,
        events: EventSink | Callable[[Event], None] | None = None,
    ) -> SolveOutcome:
        """Blocking submit, safe to call from any number of threads."""
        sink = as_sink(events)
        stream = events is not None
        request_id, waiter = self._register()
        try:
            self._send(
                SolveRequest(
                    id=request_id,
                    system=system,
                    problem=problem,
                    seed=seed,
                    priority=priority,
                    stream=stream,
                )
            )
            ack = self._await(waiter)
            if isinstance(ack, ErrorFrame):
                raise ServiceError(ack.message)
            if not isinstance(ack, Ack):
                raise ProtocolError(f"expected ack, got {ack.type!r}")
            dedup = ack.dedup
            while True:
                frame = self._await(waiter)
                if isinstance(frame, EventFrame):
                    sink.emit(frame.event)
                elif isinstance(frame, Done):
                    return SolveOutcome(
                        source=frame.source,
                        passed=frame.passed,
                        score=frame.score,
                        seconds=frame.seconds,
                        system=frame.system,
                        cached=frame.cached,
                        dedup=frame.dedup or dedup,
                    )
                elif isinstance(frame, ErrorFrame):
                    raise ServiceError(frame.message)
                else:
                    raise ProtocolError(f"unexpected frame {frame.type!r}")
        finally:
            self._unregister(request_id)

    def _control(self, op: str):
        request_id, waiter = self._register()
        try:
            self._send(ControlRequest(id=request_id, op=op))
            frame = self._await(waiter)
            if isinstance(frame, ErrorFrame):
                raise ServiceError(frame.message)
            return frame
        finally:
            self._unregister(request_id)

    def ping(self) -> bool:
        return isinstance(self._control("ping"), Ack)

    def stats(self) -> dict:
        frame = self._control("stats")
        if not isinstance(frame, StatsReply):
            raise ProtocolError(f"expected stats, got {frame.type!r}")
        return frame.stats

    def peers(self) -> tuple[str, ...]:
        frame = self._control("peers")
        if not isinstance(frame, PeerList):
            raise ProtocolError(f"expected peer list, got {frame.type!r}")
        return tuple(frame.peers)


def fetch_stats(address: str, timeout: float | None = 10.0) -> dict:
    """One-shot stats snapshot from a running server."""
    with ServiceClient(address, timeout=timeout) as client:
        return client.stats()


def fetch_peers(address: str, timeout: float | None = 10.0) -> tuple[str, ...]:
    """One-shot ring-membership fetch from a running server."""
    with ServiceClient(address, timeout=timeout) as client:
        return client.peers()


def hello_peer(
    address: str,
    self_address: str,
    peers: tuple[str, ...] = (),
    timeout: float | None = 10.0,
) -> tuple[str, ...]:
    """One-shot ``PeerHello`` to ``address``; returns its merged view."""
    with ServiceClient(address, timeout=timeout) as client:
        return client.hello(self_address, peers)


def stop_server(address: str, timeout: float | None = 10.0) -> None:
    """One-shot graceful shutdown of a running server."""
    with ServiceClient(address, timeout=timeout) as client:
        client.shutdown_server()


@dataclass
class GridReport:
    """Execution statistics for one sharded service grid."""

    shards: list[str]
    wall_seconds: float = 0.0
    cells: int = 0
    cached_cells: int = 0
    dedup_cells: int = 0
    retried_cells: int = 0
    migrated_cells: int = 0
    dead_shards: list[str] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    shard_cells: dict[str, int] = field(default_factory=dict)

    @property
    def cells_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.cells / self.wall_seconds

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> float:
        return max(self.latencies, default=0.0)

    def render(self) -> str:
        lines = [
            f"shards          {len(self.shards)}  ({', '.join(self.shards)})",
            f"wall clock      {self.wall_seconds:8.2f} s",
            f"grid cells      {self.cells:8d}  "
            f"({self.cells_per_second:.2f} cells/s)",
            f"cache-served    {self.cached_cells:8d}",
            f"dedup-shared    {self.dedup_cells:8d}",
            f"latency         mean {self.mean_latency * 1000.0:8.1f} ms  "
            f"max {self.max_latency * 1000.0:8.1f} ms",
        ]
        if self.retried_cells or self.migrated_cells or self.dead_shards:
            dead = ", ".join(self.dead_shards) or "none"
            lines.append(
                f"elasticity      {self.retried_cells} retried  "
                f"{self.migrated_cells} migrated  dead shards: {dead}"
            )
        for shard in self.shards:
            lines.append(
                f"  {shard:20s} {self.shard_cells.get(shard, 0):6d} cells"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class _GridCell:
    index: int  # flat grid index (drives the static shard assignment)
    problem_index: int
    run_index: int
    problem_id: str
    seed: int


class _ShardDead(Exception):
    """A shard failed a cell twice on fresh connections; migrate."""


def _is_transient(exc: Exception) -> bool:
    """Transport-ish failures that justify a retry on a new connection.

    Deterministic server errors ("unknown system ...", "unknown
    problem ...") would fail identically everywhere; retrying those
    only hides real bugs, so they abort the grid instead.
    """
    if isinstance(exc, (OSError, PeerGone)):
        return True
    if isinstance(exc, ProtocolError):
        return True  # desynchronised stream: only a reconnect recovers
    if isinstance(exc, ServiceError):
        message = str(exc)
        return any(
            marker in message
            for marker in (
                "server closed the connection",
                "connection severed",
                "connection lost",
                "server killed",
                "broker is shut down",
                "client closed",
                "send failed",
                "timed out",
                "busy:",
            )
        )
    return False


class _ShardLink:
    """Lazy, shared, regenerating connection to one shard.

    All of a shard's grid workers multiplex over one
    :class:`MultiplexedClient`; when the connection dies, the first
    worker to notice invalidates it (by the generation it was using,
    so racing workers don't tear down a fresh replacement) and the
    next :meth:`get` dials anew.
    """

    def __init__(self, shard: str, timeout: float | None):
        self.shard = shard
        self.timeout = timeout
        self._lock = threading.Lock()
        self._client: MultiplexedClient | None = None
        self._generation = 0

    def get(self) -> tuple[MultiplexedClient, int]:
        with self._lock:
            if self._client is None or self._client.closed:
                self._client = MultiplexedClient(
                    self.shard, timeout=self.timeout
                )
                self._generation += 1
            return self._client, self._generation

    def invalidate(self, generation: int) -> None:
        with self._lock:
            if self._generation != generation or self._client is None:
                return
            self._client.close()
            self._client = None

    def close(self) -> None:
        with self._lock:
            if self._client is not None:
                self._client.close()
                self._client = None


def solve_grid(
    system: str,
    suite: str,
    runs: int = 1,
    seed0: int = 0,
    problems=None,
    shards: list[str] | None = None,
    connections: int = 2,
    timeout: float | None = None,
    progress: Callable[[str], None] | None = None,
    events: EventSink | Callable[[Event], None] | None = None,
    ring: bool = False,
):
    """Evaluate the ``problems x runs`` grid through service shards.

    Returns ``(EvalResult, GridReport)``.  The determinism contract
    matches :func:`~repro.runtime.batch.evaluate_many`: cell seeds are
    fixed as ``seed0 + run`` before dispatch, the shard assignment is a
    pure function of the cell's identity, and the merge keys results by
    ``(problem, run)`` -- so the result grid is bit-identical to local
    ``--jobs 1`` execution regardless of shard count, per-shard
    connection count, completion order, or mid-grid shard failures.

    Placement: by default cells round-robin over ``shards`` by flat
    grid index.  With ``ring=True`` the shard list is expanded to the
    full ring membership (any one given address suffices -- the rest
    are discovered over a ``peers`` control request) and each cell is
    placed on ``HashRing.node_for(ring_key(cell))``, the same member
    its cached record gossips to.

    Fault tolerance: each shard's workers share one multiplexed
    connection; a cell that fails with a transport error is retried
    once on a fresh connection, and a shard that fails twice in a row
    is declared dead -- its unfinished cells migrate to the surviving
    shards (ring preference order when ``ring=True``).  ``events``
    receives live :class:`~repro.core.events.CellFinished` frames in
    completion order plus a terminal ``BatchFinished``, like the local
    batch API.
    """
    from repro.evalsets.suites import get_suite
    from repro.evaluation.harness import EvalResult, ProblemOutcome
    from repro.service.worker import registered_system_name

    if not shards:
        raise ValueError("solve_grid needs at least one service address")
    for shard in shards:
        parse_address(shard)  # fail fast on malformed addresses
    if runs < 1:
        raise ValueError("runs must be >= 1")
    chosen = problems if problems is not None else get_suite(suite)
    if not chosen:
        raise ValueError("empty problem list")
    resolved_name = registered_system_name(system)
    sink = as_sink(events)

    hash_ring: HashRing | None = None
    if ring:
        # Expand to the full membership: any one live member knows the
        # rest.  Unreachable seed addresses are fine as long as one
        # answers; placement then uses the discovered ring.
        members: set[str] = set(shards)
        for shard in shards:
            try:
                members.update(fetch_peers(shard, timeout=10.0))
            except (ServiceError, ProtocolError, OSError, ValueError):
                continue
        shards = sorted(members)
        hash_ring = HashRing(shards)

    cells: list[_GridCell] = []
    for problem_index, problem in enumerate(chosen):
        for run in range(runs):
            cells.append(
                _GridCell(
                    index=len(cells),
                    problem_index=problem_index,
                    run_index=run,
                    problem_id=problem.id,
                    seed=seed0 + run,
                )
            )

    # Deterministic placement: ring ownership of the cell's identity
    # key, or flat-index round-robin in static mode.
    work: dict[str, deque] = {shard: deque() for shard in shards}
    for cell in cells:
        if hash_ring is not None:
            owner = hash_ring.node_for(
                ring_key(resolved_name, cell.problem_id, cell.seed)
            )
        else:
            owner = shards[cell.index % len(shards)]
        work[owner].append(cell)

    report = GridReport(shards=list(shards))
    outcomes: dict[tuple[int, int], SolveOutcome] = {}
    fatal: list[str] = []
    by_problem: dict[int, int] = {}
    next_to_report = 0
    remaining = len(cells)
    finished = threading.Event()
    dead: set[str] = set()
    cond = threading.Condition()
    links = {shard: _ShardLink(shard, timeout) for shard in shards}

    def flush_progress() -> None:
        # Progress lines in suite order, like evaluate_many.
        nonlocal next_to_report
        while (
            next_to_report < len(chosen)
            and by_problem.get(next_to_report, 0) == runs
        ):
            if progress is not None:
                done = [
                    outcomes[(next_to_report, run)] for run in range(runs)
                ]
                passes = sum(1 for o in done if o.passed)
                progress(
                    f"{resolved_name} {chosen[next_to_report].id}: "
                    f"{passes}/{runs} passed"
                )
            next_to_report += 1

    def record(shard: str, cell: _GridCell, outcome: SolveOutcome,
               latency: float) -> None:
        nonlocal remaining
        with cond:
            if (cell.problem_index, cell.run_index) in outcomes:
                return  # a migrated duplicate raced us; identical anyway
            outcomes[(cell.problem_index, cell.run_index)] = outcome
            remaining -= 1
            report.latencies.append(latency)
            report.shard_cells[shard] = report.shard_cells.get(shard, 0) + 1
            if outcome.cached:
                report.cached_cells += 1
            if outcome.dedup:
                report.dedup_cells += 1
            by_problem[cell.problem_index] = (
                by_problem.get(cell.problem_index, 0) + 1
            )
            sink.emit(
                CellFinished(
                    problem_id=cell.problem_id,
                    run_index=cell.run_index,
                    passed=outcome.passed,
                    score=outcome.score,
                    # Server-side execution time, matching what local
                    # evaluate_many reports (the round-trip latency
                    # lives in the grid report, not the event stream).
                    seconds=outcome.seconds,
                    solve_cached=outcome.cached,
                )
            )
            flush_progress()
            if remaining == 0:
                finished.set()
            cond.notify_all()

    def abort(message: str) -> None:
        with cond:
            fatal.append(message)
            finished.set()
            cond.notify_all()

    def declare_dead(shard: str, orphan: _GridCell | None) -> None:
        """Migrate a dead shard's unfinished cells to the survivors.

        Every orphan goes to its highest-preference *surviving* shard
        (ring mode) or round-robins over the survivors -- the same
        deterministic answer any client would compute, so concurrent
        grids re-shard identically.
        """
        with cond:
            orphans = list(work[shard])
            work[shard].clear()
            if orphan is not None:
                orphans.append(orphan)
            first_death = shard not in dead
            dead.add(shard)
            if first_death:
                report.dead_shards.append(shard)
            survivors = [s for s in shards if s not in dead]
            if not survivors:
                fatal.append(f"all shards dead (last: {shard})")
                finished.set()
                cond.notify_all()
                return
            for index, cell in enumerate(orphans):
                if hash_ring is not None:
                    order = hash_ring.preference(
                        ring_key(resolved_name, cell.problem_id, cell.seed)
                    )
                    target = next(
                        (s for s in order if s not in dead),
                        survivors[index % len(survivors)],
                    )
                else:
                    target = survivors[cell.index % len(survivors)]
                work[target].append(cell)
                report.migrated_cells += 1
            cond.notify_all()
        links[shard].close()

    def solve_cell(shard: str, cell: _GridCell) -> SolveOutcome:
        """Up to two attempts, the second on a fresh connection."""
        last: Exception | None = None
        for attempt in range(2):
            generation = None
            try:
                client, generation = links[shard].get()
                return client.solve(system, cell.problem_id, seed=cell.seed)
            except Exception as exc:  # noqa: BLE001 -- triaged below
                if not _is_transient(exc):
                    raise
                last = exc
                if generation is not None:
                    links[shard].invalidate(generation)
                if attempt == 0:
                    with cond:
                        report.retried_cells += 1
        raise _ShardDead(f"{shard}: {last}")

    def worker(shard: str) -> None:
        while True:
            with cond:
                while (
                    not work[shard]
                    and not finished.is_set()
                    and shard not in dead
                ):
                    cond.wait(timeout=0.5)
                if finished.is_set() or shard in dead:
                    return
                cell = work[shard].popleft()
            submitted = time.perf_counter()
            try:
                outcome = solve_cell(shard, cell)
            except _ShardDead:
                declare_dead(shard, cell)
                continue
            except Exception as exc:  # noqa: BLE001 -- deterministic error
                abort(
                    f"{shard} {cell.problem_id} run {cell.run_index}: {exc}"
                )
                return
            record(shard, cell, outcome, time.perf_counter() - submitted)

    started = time.perf_counter()
    threads = [
        threading.Thread(
            target=worker,
            args=(shard,),
            name=f"repro-grid-{shard}-{index}",
            daemon=True,
        )
        for shard in shards
        for index in range(max(1, min(connections, max(1, len(cells)))))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for link in links.values():
        link.close()
    report.wall_seconds = time.perf_counter() - started
    report.cells = len(outcomes)

    if fatal:
        raise ServiceError(
            f"{len(fatal)} grid failure(s): " + "; ".join(fatal[:3])
        )
    if len(outcomes) != len(cells):
        raise ServiceError(
            f"grid incomplete: {len(outcomes)}/{len(cells)} cells returned"
        )
    sink.emit(BatchFinished(cells=len(cells), seconds=report.wall_seconds))

    result = EvalResult(system=resolved_name, suite=suite)
    for problem_index, problem in enumerate(chosen):
        outcome = ProblemOutcome(problem.id, problem.difficulty)
        for run in range(runs):
            cell_outcome = outcomes[(problem_index, run)]
            outcome.runs += 1
            outcome.passes += int(cell_outcome.passed)
            outcome.scores.append(cell_outcome.score)
        result.outcomes.append(outcome)
    return result, report
