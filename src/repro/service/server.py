"""Threaded TCP solve server: broker + worker pool behind the protocol.

:class:`SolveServer` binds a localhost TCP socket, accepts one
connection per client (each served by its own handler thread), and
routes :class:`~repro.service.protocol.SolveRequest` frames through a
shared :class:`~repro.service.broker.Broker` into a pool of long-lived
:class:`~repro.service.worker.Worker` threads.  Both cache layers live
in the server process, so the layered serving ladder is:

1. **solve-cell cache hit** -- served inline by the connection thread
   (events replayed, scoring via the simulation cache); no worker is
   touched and no queue slot is consumed;
2. **peer replay** -- the same rung through the cache fabric's remote
   tiers: a cell warm on a ``cache_peers`` server is fetched over
   ``CacheGet`` frames, promoted into the local memory/disk tiers, and
   served inline exactly like a local cache hit;
3. **in-flight dedup** -- an identical queued/running cell adopts the
   new subscriber; one execution, n streams;
4. **cold cell** -- queued by priority, executed by the next free
   worker, and stored in both caches on the way out (write-through to
   peers, so the whole ring warms at once).

The server also *answers* ``CacheGet``/``CachePut`` frames from its
local tiers, making it a peer for other machines' remote tiers.

Shutdown is a graceful drain: new submissions are refused, queued jobs
finish, workers exit, then the socket closes.
"""

from __future__ import annotations

import socketserver
import threading
import time

from repro.runtime.cache import (
    SimulationCache,
    SolveCellCache,
    decode_value,
    encode_value,
    solve_cell_key,
)
from repro.service.broker import Broker, BrokerClosed, BrokerFull
from repro.runtime.rollout import StealBoard
from repro.service.protocol import (
    Ack,
    CacheGet,
    CachePut,
    CacheReply,
    ControlRequest,
    Done,
    ErrorFrame,
    EventFrame,
    ProtocolError,
    SolveRequest,
    StatsReply,
    WaveSteal,
    WaveTasks,
    read_frame,
    write_frame,
)
from repro.service.worker import (
    RolloutWorker,
    ServiceStats,
    Worker,
    registered_fingerprint,
    serve_cached_record,
)


class _ServiceTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    service: "SolveServer"


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One client connection: a loop of request -> framed reply stream."""

    def handle(self) -> None:
        service = self.server.service
        while True:
            try:
                frame = read_frame(self.rfile)
            except ProtocolError as exc:
                self._safe_write(ErrorFrame(id=0, message=str(exc)))
                return
            if frame is None:
                return  # clean EOF
            try:
                if isinstance(frame, SolveRequest):
                    # Tracked so shutdown() can wait for the terminal
                    # frame of every accepted solve to hit the wire.
                    service._solve_started()
                    try:
                        self._handle_solve(service, frame)
                    finally:
                        service._solve_finished()
                elif isinstance(frame, CacheGet):
                    self._handle_cache_get(service, frame)
                elif isinstance(frame, CachePut):
                    self._handle_cache_put(service, frame)
                elif isinstance(frame, WaveSteal):
                    self._handle_wave_steal(service, frame)
                elif isinstance(frame, ControlRequest):
                    if not self._handle_control(service, frame):
                        return
                else:
                    self._safe_write(
                        ErrorFrame(
                            id=getattr(frame, "id", 0),
                            message=f"unexpected frame type {frame.type!r}",
                        )
                    )
            except OSError:
                return  # client went away mid-stream

    def _safe_write(self, frame) -> bool:
        try:
            write_frame(self.wfile, frame)
            return True
        except OSError:
            return False
        except ProtocolError as exc:
            # The frame itself is unsendable (e.g. a payload past the
            # frame ceiling); tell the client with a typed error rather
            # than dropping the connection with no terminal frame.
            try:
                write_frame(
                    self.wfile,
                    ErrorFrame(
                        id=getattr(frame, "id", 0),
                        message=f"unsendable reply: {exc}",
                    ),
                )
            except (OSError, ProtocolError):
                pass
            return False

    def _handle_solve(self, service: "SolveServer", req: SolveRequest) -> None:
        key = f"{req.system}/{req.problem}/{req.seed}"
        record = service.fetch_cached(req.system, req.problem, req.seed)
        if record is not None:
            # Warm path: serve inline from the already-fetched record;
            # the worker pool and queue are never touched.  A record
            # evicted between probe and fetch simply lands on the cold
            # path below, so an inline solve can never execute a
            # pipeline outside the broker's queue and dedup.
            self._safe_write(Ack(id=req.id, key=key, cached=True))
            self._serve_record(service, req, record)
            return
        try:
            job, sub, deduped = service.broker.submit(
                req.system, req.problem, req.seed, priority=req.priority
            )
        except BrokerFull as exc:
            self._safe_write(ErrorFrame(id=req.id, message=f"busy: {exc}"))
            return
        except BrokerClosed as exc:
            self._safe_write(ErrorFrame(id=req.id, message=str(exc)))
            return
        self._safe_write(Ack(id=req.id, key=key, dedup=deduped))
        for kind, payload in sub:
            if kind == "event":
                if req.stream and not self._safe_write(
                    EventFrame(id=req.id, event=payload)
                ):
                    return
            elif kind == "done":
                self._safe_write(
                    Done(
                        id=req.id,
                        source=payload.source,
                        passed=payload.passed,
                        score=payload.score,
                        seconds=payload.seconds,
                        system=payload.system,
                        cached=payload.solve_cached,
                        dedup=deduped,
                    )
                )
            else:
                self._safe_write(ErrorFrame(id=req.id, message=payload))

    def _serve_record(
        self, service: "SolveServer", req: SolveRequest, record
    ) -> None:
        sink = None
        if req.stream:
            sink = lambda event: self._safe_write(  # noqa: E731
                EventFrame(id=req.id, event=event)
            )
        try:
            result = serve_cached_record(
                req.system,
                req.problem,
                record,
                sink=sink,
                sim_cache=service.sim_cache,
            )
        except Exception as exc:  # noqa: BLE001 -- becomes an error frame
            service.stats.count("errors")
            self._safe_write(
                ErrorFrame(id=req.id, message=f"{type(exc).__name__}: {exc}")
            )
            return
        service.stats.count("cache_served")
        self._safe_write(
            Done(
                id=req.id,
                source=result.source,
                passed=result.passed,
                score=result.score,
                seconds=result.seconds,
                system=result.system,
                cached=True,
            )
        )

    def _handle_cache_get(self, service: "SolveServer", req: CacheGet) -> None:
        """The peer-sharing read rung: answer from LOCAL tiers only.

        A peer's :class:`~repro.runtime.cache.RemoteTier` is asking; if
        this server consulted its *own* remote tiers here, two mutually
        peered servers would chase a missing key around the ring.
        """
        from repro.service.protocol import MAX_FRAME_BYTES

        service.stats.count("peer_gets")
        cache = service.cache_layer(req.layer)
        value = cache.peek_local(req.key) if cache is not None else None
        if value is None:
            self._safe_write(CacheReply(id=req.id))
            return
        try:
            blob = encode_value(value)
        except Exception:  # noqa: BLE001 -- unpicklable value: report a miss
            self._safe_write(CacheReply(id=req.id))
            return
        if len(blob) > MAX_FRAME_BYTES - 4096:
            # A value past the frame ceiling must be a typed miss, not
            # an 'unsendable reply' error the peer would hold against
            # this server's health.
            self._safe_write(CacheReply(id=req.id))
            return
        service.stats.count("peer_hits")
        self._safe_write(CacheReply(id=req.id, found=True, blob=blob))

    def _handle_cache_put(self, service: "SolveServer", req: CachePut) -> None:
        """The peer-sharing write rung: store locally, never re-gossip."""
        cache = service.cache_layer(req.layer)
        if cache is None:
            self._safe_write(CacheReply(id=req.id))
            return
        value = decode_value(req.blob, cache.value_type)
        if value is None:
            # Garbage or wrong-typed blob: refuse, exactly like the
            # disk tier refuses a corrupt file.
            self._safe_write(CacheReply(id=req.id))
            return
        cache.put_local(req.key, value)
        service.stats.count("peer_puts")
        self._safe_write(CacheReply(id=req.id, stored=True))

    def _handle_wave_steal(self, service: "SolveServer", req: WaveSteal) -> None:
        """Hand published wave tasks to an idle peer.

        Claimed tasks leave the board atomically, so concurrent thieves
        never duplicate work; an unpicklable task simply stays home
        (the victim simulates it like any unclaimed one).
        """
        claimed = service.steal_board.claim(req.max_items)
        wire = []
        for key, task in claimed:
            try:
                wire.append([key, encode_value(task)])
            except Exception:  # noqa: BLE001 -- keep the task local
                continue
            service.stats.count("steal_served")
        self._safe_write(WaveTasks(id=req.id, tasks=wire))

    def _handle_control(
        self, service: "SolveServer", req: ControlRequest
    ) -> bool:
        """Returns False when the connection should close."""
        if req.op == "ping":
            self._safe_write(Ack(id=req.id))
            return True
        if req.op == "stats":
            self._safe_write(StatsReply(id=req.id, stats=service.stats_snapshot()))
            return True
        if req.op == "shutdown":
            self._safe_write(Ack(id=req.id))
            # Drain from a helper thread: shutdown() joins the acceptor
            # loop and the workers, which must not happen on a handler
            # thread that the acceptor is indirectly waiting on.
            threading.Thread(
                target=service.shutdown, name="repro-service-drain", daemon=True
            ).start()
            return False
        self._safe_write(
            ErrorFrame(id=req.id, message=f"unknown control op {req.op!r}")
        )
        return True


class SolveServer:
    """Long-lived solve service on a localhost TCP port.

    ``sim_cache``/``solve_cache`` accept an instance, ``False`` to
    disable the layer, or ``None`` for a fresh in-memory cache (pass
    instances with a ``directory`` to persist across restarts).
    ``cache_peers`` adds one :class:`~repro.runtime.cache.RemoteTier`
    per address to each default-built cache (instances carry their own
    tier stacks), so a cold server replays cells warmed anywhere in the
    peer ring -- and answers the same ``CacheGet``/``CachePut`` frames
    for its peers in turn.

    ``gateway`` pins the LLM gateway settings every worker solve runs
    under (``None`` resolves from the environment at construction, and
    stays ``None`` when the gateway is not enabled).  When a cassette
    directory is configured the server also exposes the cassette store
    as the ``llm`` cache layer, so peers can share recorded completions
    over the same wire protocol as the other tiers.

    ``steal_peers`` (rollout mode only) names peer servers whose
    published score waves this server's *idle* workers drain over
    ``WaveSteal`` frames; the server's own waves are published on
    ``steal_board`` for its peers in turn.  Stealing moves pure
    simulations only, with results returned through the cache fabric,
    so the topology -- typically a ring of mutually-peered servers --
    never affects any run's output.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        sim_cache: SimulationCache | bool | None = None,
        solve_cache: SolveCellCache | bool | None = None,
        max_pending: int = 256,
        rollout_batch: int = 0,
        cache_peers: tuple[str, ...] | list[str] | None = None,
        gateway=None,
        steal_peers: tuple[str, ...] | list[str] | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        peers = tuple(cache_peers or ())
        self.sim_cache = self._resolve(sim_cache, SimulationCache, peers)
        self.solve_cache = self._resolve(solve_cache, SolveCellCache, peers)
        if gateway is None:
            from repro.llm.gateway.settings import GatewaySettings

            resolved = GatewaySettings.from_env()
            gateway = resolved if resolved.enabled else None
        self.gateway = gateway
        self.broker = Broker(max_pending=max_pending)
        self.stats = ServiceStats()
        self.rollout_batch = max(0, int(rollout_batch))
        self.steal_peers = tuple(steal_peers or ())
        # The published-wave board every local scheduler shares: any
        # worker's score wave can be drained by any thief.
        self.steal_board = StealBoard()
        self._tcp = _ServiceTCPServer((host, port), _ConnectionHandler)
        self._tcp.service = self
        if self.rollout_batch:
            # Batching mode: each worker gathers up to rollout_batch
            # dedup-distinct in-flight cells and gang-schedules their
            # sampling through shared scoring waves.
            self._workers: list = [
                RolloutWorker(
                    self.broker,
                    self.stats,
                    sim_cache=self.sim_cache,
                    solve_cache=self.solve_cache,
                    batch=self.rollout_batch,
                    name=f"repro-service-rollout-{index}",
                    gateway=self.gateway,
                    steal_peers=self.steal_peers,
                    steal_board=self.steal_board,
                )
                for index in range(workers)
            ]
        else:
            self._workers = [
                Worker(
                    self.broker,
                    self.stats,
                    sim_cache=self.sim_cache,
                    solve_cache=self.solve_cache,
                    name=f"repro-service-worker-{index}",
                    gateway=self.gateway,
                )
                for index in range(workers)
            ]
        self._acceptor: threading.Thread | None = None
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._active_solves = 0
        self._idle = threading.Condition()

    @staticmethod
    def _resolve(cache, default_cls, peers=()):
        if cache is False:
            return None
        if cache is None or cache is True:
            return default_cls(peers=peers)
        return cache

    @property
    def address(self) -> str:
        host, port = self._tcp.server_address[:2]
        return f"{host}:{port}"

    def cassette(self):
        """The server's cassette store, or None without a gateway."""
        if self.gateway is None:
            return None
        from repro.llm.gateway.cassette import cassette_store

        return cassette_store(
            self.gateway.cassette_dir, self.gateway.cache_peers
        )

    def cache_layer(self, layer: str):
        """The cache a wire-level ``layer`` tag routes to (or None)."""
        if layer == "llm":
            return self.cassette()
        return {"sim": self.sim_cache, "solve": self.solve_cache}.get(layer)

    def fetch_cached(self, system: str, problem_id: str, seed: int):
        """The cell's solve-cell record, or None to take the cold path.

        One counted ``get`` is the whole decision: the record it
        returns is the record that gets served (no probe/serve gap for
        eviction to slip through, disk hits attributed correctly).  A
        cold submit therefore counts a broker-side miss in addition to
        the worker's own lookup -- the worker lookup stays, because a
        dedup-raced store may have landed by the time the job runs.
        """
        if self.solve_cache is None:
            return None
        from repro.evalsets import get_problem
        from repro.runtime.context import RuntimeContext, runtime_session
        from repro.runtime.executor import SerialExecutor

        # Resolve under the server's pinned gateway so the fingerprint
        # matches what the workers' pinned sessions compute.
        inner = RuntimeContext(
            executor=SerialExecutor(),
            cache=self.sim_cache,
            gateway=self.gateway,
        )
        with runtime_session(context=inner):
            fingerprint = registered_fingerprint(system)
        if fingerprint is None:
            return None
        try:
            key = solve_cell_key(fingerprint, get_problem(problem_id), seed)
        except Exception:
            return None
        return self.solve_cache.get(key)

    def start(self) -> "SolveServer":
        for worker in self._workers:
            worker.start()
        self._acceptor = threading.Thread(
            target=self._tcp.serve_forever,
            name="repro-service-acceptor",
            daemon=True,
        )
        self._acceptor.start()
        return self

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the server has shut down."""
        return self._stopped.wait(timeout=timeout)

    def _solve_started(self) -> None:
        with self._idle:
            self._active_solves += 1

    def _solve_finished(self) -> None:
        with self._idle:
            self._active_solves -= 1
            self._idle.notify_all()

    def shutdown(self, handler_grace: float = 30.0) -> None:
        """Graceful drain: refuse new work, finish the queue, close.

        After the workers exit, waits up to ``handler_grace`` seconds
        for in-flight connection handlers to flush their terminal
        frames, so a client whose queued job just finished still gets
        its ``done`` before the sockets close.
        """
        with self._shutdown_lock:
            if self._stopped.is_set():
                return
            self._tcp.shutdown()  # stop accepting connections
            self.broker.close()  # queued jobs still drain to workers
            for worker in self._workers:
                worker.join()
            deadline = time.monotonic() + handler_grace
            with self._idle:
                while self._active_solves > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._idle.wait(
                        timeout=remaining
                    ):
                        break
            self._tcp.server_close()
            self._stopped.set()

    def executed_count(self) -> int:
        """Pipeline executions across the pool (dedup/cache verification)."""
        return self.stats.snapshot()["executed"]

    def stats_snapshot(self) -> dict:
        def cache_stats(cache):
            if cache is None:
                return None
            stats = cache.stats
            return {
                "entries": len(cache),
                "lookups": stats.lookups,
                "hits": stats.hits,
                "misses": stats.misses,
                "stores": stats.stores,
                "disk_hits": stats.disk_hits,
                "remote_hits": stats.remote_hits,
                "corrupt": stats.corrupt,
                "directory": cache.directory,
                "peers": list(cache.peers),
                "tiers": cache.tier_report(),
            }

        from repro.core.pipeline import STAGE_CLOCK
        from repro.llm.gateway.client import GATEWAY_STATS

        # Aggregate scheduler counters across the rollout workers (the
        # section is absent in plain-worker mode).
        scheduler = None
        pool = [w for w in self._workers if isinstance(w, RolloutWorker)]
        if pool:
            dedup: dict[str, int] = {}
            speculation: dict[str, int] = {}
            for worker in pool:
                for key, value in worker.scheduler.dedup.snapshot().items():
                    dedup[key] = dedup.get(key, 0) + value
                for key, value in (
                    worker.scheduler.speculation.snapshot().items()
                ):
                    speculation[key] = speculation.get(key, 0) + value
            scheduler = {"dedup": dedup, "speculation": speculation}

        return {
            "address": self.address,
            "workers": len(self._workers),
            "rollout_batch": self.rollout_batch,
            "pending": len(self.broker),
            "broker": self.broker.stats.snapshot(),
            "service": self.stats.snapshot(),
            "gateway": GATEWAY_STATS.snapshot(),
            "gateway_mode": (
                self.gateway.mode if self.gateway is not None else None
            ),
            "stages": STAGE_CLOCK.snapshot(),
            "scheduler": scheduler,
            "steal": {
                **self.steal_board.snapshot(),
                "peers": list(self.steal_peers),
            },
            "caches": {
                "simulation": cache_stats(self.sim_cache),
                "solve_cell": cache_stats(self.solve_cache),
                "cassette": cache_stats(self.cassette()),
            },
        }

    def __enter__(self) -> "SolveServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
