"""Asyncio TCP solve server: multiplexed connections over one event loop.

:class:`SolveServer` binds a localhost TCP socket and serves every
client connection on a single asyncio event loop: one reader coroutine
and one writer task per connection, with each *request* dispatched to a
thread pool.  Frames carry request ids, so any number of requests can
be in flight on one connection and their reply streams interleave
frame-by-frame -- a v3 multiplexing client runs a whole grid shard over
one socket.  Legacy v1/v2 clients pipeline strictly one request at a
time, which is simply a degenerate schedule of the same machinery;
replies echo the client's protocol version, so old clients never see a
frame dialect they don't speak.

Requests route through a shared :class:`~repro.service.broker.Broker`
into a pool of long-lived :class:`~repro.service.worker.Worker`
threads.  Both cache layers live in the server process, so the layered
serving ladder is:

1. **solve-cell cache hit** -- served inline by the request's handler
   thread (events replayed, scoring via the simulation cache); no
   worker is touched and no queue slot is consumed;
2. **peer replay** -- the same rung through the cache fabric's remote
   tiers: a cell warm on a peer server is fetched over ``CacheGet``
   frames, promoted into the local memory/disk tiers, and served
   inline exactly like a local cache hit;
3. **in-flight dedup** -- an identical queued/running cell adopts the
   new subscriber; one execution, n streams;
4. **cold cell** -- queued by priority, executed by the next free
   worker, and stored in both caches on the way out (gossiped to peers
   through a write-behind queue, so the put never sits on the solve
   path and the whole ring still warms).

The server also *answers* ``CacheGet``/``CachePut`` frames from its
local tiers, making it a peer for other machines' remote tiers.

**The elastic ring.**  Servers discover each other over
``PeerHello``/``PeerList`` frames: ``join`` bootstraps membership from
any existing member, and a heartbeat loop re-hellos every known member,
merging peer lists (so views converge) and expelling members that stop
answering.  Membership changes resync the cache fabric's remote tiers,
and clients fetch the member list with a ``peers`` control request --
which is how ``solve_grid`` re-shards mid-sweep when a ring member
dies.

Shutdown is a graceful drain: new submissions are refused, queued jobs
finish, workers exit, then the sockets close.  :meth:`SolveServer.kill`
is the chaos-test path: queued jobs are aborted and every connection is
severed mid-frame, exactly like a SIGKILL.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import socket
import threading
import time

from repro.runtime.cache import (
    SimulationCache,
    SolveCellCache,
    decode_value,
    encode_value,
    solve_cell_key,
)
from repro.runtime.rollout import StealBoard
from repro.service.broker import Broker, BrokerClosed, BrokerFull
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Ack,
    CacheGet,
    CachePut,
    CacheReply,
    ControlRequest,
    Done,
    ErrorFrame,
    EventFrame,
    Frame,
    PeerGone,
    PeerHello,
    PeerList,
    ProtocolError,
    SolveRequest,
    StatsReply,
    WaveSteal,
    WaveTasks,
    encode_frame,
    read_frame_async,
)
from repro.service.ring import PeerDirectory
from repro.service.worker import (
    RolloutWorker,
    ServiceStats,
    Worker,
    registered_fingerprint,
    serve_cached_record,
)


class _Connection:
    """One client connection on the event loop.

    The reader coroutine (``run``) parses frames and dispatches each
    request; a dedicated writer task drains ``_outbox`` so that frames
    enqueued by concurrent handler threads interleave at frame
    granularity and per-request order is preserved (each handler
    enqueues its own frames sequentially).  ``send`` is the only
    cross-thread entry point: it marshals onto the loop with
    ``call_soon_threadsafe``.
    """

    def __init__(self, service: "SolveServer", reader, writer):
        self.service = service
        self.reader = reader
        self.writer = writer
        self.loop = asyncio.get_running_loop()
        # The protocol version this client speaks (from its last frame);
        # replies are stamped with it, which is the whole legacy shim.
        self.version = PROTOCOL_VERSION
        self._outbox: asyncio.Queue = asyncio.Queue()
        self._tasks: set = set()
        self._closed = False

    # -- cross-thread send ---------------------------------------------

    def send(self, frame: Frame) -> bool:
        """Enqueue one frame from any thread; False once the client is
        known to be gone (handlers use this to stop streaming)."""
        if self._closed:
            return False
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self.loop:
            # Already on the loop (control/hello handlers): enqueue now,
            # so the reader's close sentinel can never overtake a reply
            # that was sent before it.
            self._enqueue(frame)
            return not self._closed
        try:
            self.loop.call_soon_threadsafe(self._enqueue, frame)
        except RuntimeError:
            return False  # loop already closed (server killed)
        return not self._closed

    def _enqueue(self, frame: Frame | None) -> None:
        if not self._closed or frame is None:
            self._outbox.put_nowait(frame)

    # -- loop-side machinery -------------------------------------------

    async def _write_loop(self) -> None:
        while True:
            frame = await self._outbox.get()
            if frame is None:
                return
            try:
                data = encode_frame(frame, version=self.version)
            except ProtocolError as exc:
                # The frame itself is unsendable (e.g. a payload past
                # the frame ceiling); tell the client with a typed error
                # rather than dropping the connection silently.
                data = encode_frame(
                    ErrorFrame(
                        id=getattr(frame, "id", 0),
                        message=f"unsendable reply: {exc}",
                    ),
                    version=self.version,
                )
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, OSError):
                self._closed = True
                return

    async def run(self) -> None:
        writer_task = asyncio.create_task(self._write_loop())
        try:
            while True:
                try:
                    item = await read_frame_async(self.reader)
                except PeerGone:
                    break  # client died mid-frame
                except ProtocolError as exc:
                    self._enqueue(ErrorFrame(id=0, message=str(exc)))
                    break
                if item is None:
                    break  # clean EOF
                frame, version = item
                self.version = version
                if not self._dispatch(frame):
                    break  # shutdown request: close after the ack
        finally:
            # Let in-flight handlers publish their terminal frames, then
            # flush the outbox and close.
            if self._tasks:
                await asyncio.gather(*self._tasks, return_exceptions=True)
            self._enqueue(None)
            await writer_task
            self._closed = True
            try:
                self.writer.close()
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def abort(self) -> None:
        """Sever the transport immediately (the kill path)."""
        self._closed = True
        transport = self.writer.transport
        if transport is not None:
            transport.abort()

    def _dispatch(self, frame: Frame) -> bool:
        """Route one frame; False closes the connection (shutdown)."""
        service = self.service
        if isinstance(frame, ControlRequest):
            return service._handle_control(self, frame)
        if isinstance(frame, PeerHello):
            service._handle_peer_hello(self, frame)
            return True
        handler = None
        if isinstance(frame, SolveRequest):
            handler = service._handle_solve
        elif isinstance(frame, CacheGet):
            handler = service._handle_cache_get
        elif isinstance(frame, CachePut):
            handler = service._handle_cache_put
        elif isinstance(frame, WaveSteal):
            handler = service._handle_wave_steal
        if handler is None:
            self._enqueue(
                ErrorFrame(
                    id=getattr(frame, "id", 0),
                    message=f"unexpected frame type {frame.type!r}",
                )
            )
            return True
        # Each request runs on its own pool thread: a streaming solve
        # can wait minutes on the broker while pings, cache probes, and
        # other solves keep flowing on this same connection.
        task = self.loop.run_in_executor(
            service._pool, service._run_handler, handler, self, frame
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return True


class SolveServer:
    """Long-lived solve service on a localhost TCP port.

    ``sim_cache``/``solve_cache`` accept an instance, ``False`` to
    disable the layer, or ``None`` for a fresh in-memory cache (pass
    instances with a ``directory`` to persist across restarts).
    ``cache_peers`` adds one :class:`~repro.runtime.cache.RemoteTier`
    per address to each default-built cache (instances carry their own
    tier stacks), so a cold server replays cells warmed anywhere in the
    peer ring -- and answers the same ``CacheGet``/``CachePut`` frames
    for its peers in turn.  Default-built caches gossip write-behind:
    a worker's ``CachePut`` to peers rides a background queue, never
    the solve path.

    ``join`` bootstraps the elastic ring: each address is sent a
    ``PeerHello`` on start and the membership it answers with is
    merged.  Ring members learned this way (from joins, incoming
    hellos, or heartbeat gossip) are automatically added to -- and,
    when they die, removed from -- the caches' remote tiers, on top of
    any static ``cache_peers``.  ``advertise`` overrides the address
    other members should reach this server on (defaults to the bound
    address).

    ``gateway`` pins the LLM gateway settings every worker solve runs
    under (``None`` resolves from the environment at construction, and
    stays ``None`` when the gateway is not enabled).  When a cassette
    directory is configured the server also exposes the cassette store
    as the ``llm`` cache layer, so peers can share recorded completions
    over the same wire protocol as the other tiers.

    ``steal_peers`` (rollout mode only) names peer servers whose
    published score waves this server's *idle* workers drain over
    ``WaveSteal`` frames; the server's own waves are published on
    ``steal_board`` for its peers in turn.  Stealing moves pure
    simulations only, with results returned through the cache fabric,
    so the topology -- typically a ring of mutually-peered servers --
    never affects any run's output.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        sim_cache: SimulationCache | bool | None = None,
        solve_cache: SolveCellCache | bool | None = None,
        max_pending: int = 256,
        rollout_batch: int = 0,
        cache_peers: tuple[str, ...] | list[str] | None = None,
        gateway=None,
        steal_peers: tuple[str, ...] | list[str] | None = None,
        join: tuple[str, ...] | list[str] | None = None,
        advertise: str | None = None,
        peer_interval: float = 1.0,
        peer_failures: int = 3,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._static_peers = tuple(cache_peers or ())
        self.sim_cache = self._resolve(
            sim_cache, SimulationCache, self._static_peers
        )
        self.solve_cache = self._resolve(
            solve_cache, SolveCellCache, self._static_peers
        )
        if gateway is None:
            from repro.llm.gateway.settings import GatewaySettings

            resolved = GatewaySettings.from_env()
            gateway = resolved if resolved.enabled else None
        self.gateway = gateway
        self.broker = Broker(max_pending=max_pending)
        self.stats = ServiceStats()
        self.rollout_batch = max(0, int(rollout_batch))
        self.steal_peers = tuple(steal_peers or ())
        # The published-wave board every local scheduler shares: any
        # worker's score wave can be drained by any thief.
        self.steal_board = StealBoard()
        # Bind in the constructor so ``address`` is valid before start()
        # (and the port is reserved for us).
        self._listen_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen_sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listen_sock.bind((host, port))
        self._listen_sock.listen(128)
        self.advertised = advertise or self.address
        self.directory = PeerDirectory(
            self.advertised, on_change=self._membership_changed
        )
        self.join = tuple(join or ())
        self.peer_interval = peer_interval
        self.peer_failures = peer_failures
        if self.rollout_batch:
            # Batching mode: each worker gathers up to rollout_batch
            # dedup-distinct in-flight cells and gang-schedules their
            # sampling through shared scoring waves.
            self._workers: list = [
                RolloutWorker(
                    self.broker,
                    self.stats,
                    sim_cache=self.sim_cache,
                    solve_cache=self.solve_cache,
                    batch=self.rollout_batch,
                    name=f"repro-service-rollout-{index}",
                    gateway=self.gateway,
                    steal_peers=self.steal_peers,
                    steal_board=self.steal_board,
                )
                for index in range(workers)
            ]
        else:
            self._workers = [
                Worker(
                    self.broker,
                    self.stats,
                    sim_cache=self.sim_cache,
                    solve_cache=self.solve_cache,
                    name=f"repro-service-worker-{index}",
                    gateway=self.gateway,
                )
                for index in range(workers)
            ]
        # One pool thread per in-flight request (a streaming solve holds
        # its thread while it waits on the broker), sized past the
        # broker's own admission bound so backpressure comes from
        # BrokerFull, not silent pool queuing.
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_pending + 16,
            thread_name_prefix="repro-service-handler",
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._async_server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._loop_ready = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._active_solves = 0
        self._idle = threading.Condition()
        self._heartbeat: threading.Thread | None = None

    @staticmethod
    def _resolve(cache, default_cls, peers=()):
        if cache is False:
            return None
        if cache is None or cache is True:
            return default_cls(peers=peers, write_behind=True)
        return cache

    @property
    def address(self) -> str:
        host, port = self._listen_sock.getsockname()[:2]
        return f"{host}:{port}"

    def cassette(self):
        """The server's cassette store, or None without a gateway."""
        if self.gateway is None:
            return None
        from repro.llm.gateway.cassette import cassette_store

        return cassette_store(
            self.gateway.cassette_dir, self.gateway.cache_peers
        )

    def cache_layer(self, layer: str):
        """The cache a wire-level ``layer`` tag routes to (or None)."""
        if layer == "llm":
            return self.cassette()
        return {"sim": self.sim_cache, "solve": self.solve_cache}.get(layer)

    def fetch_cached(self, system: str, problem_id: str, seed: int):
        """The cell's solve-cell record, or None to take the cold path.

        One counted ``get`` is the whole decision: the record it
        returns is the record that gets served (no probe/serve gap for
        eviction to slip through, disk hits attributed correctly).  A
        cold submit therefore counts a broker-side miss in addition to
        the worker's own lookup -- the worker lookup stays, because a
        dedup-raced store may have landed by the time the job runs.
        """
        if self.solve_cache is None:
            return None
        from repro.evalsets import get_problem
        from repro.runtime.context import RuntimeContext, runtime_session
        from repro.runtime.executor import SerialExecutor

        # Resolve under the server's pinned gateway so the fingerprint
        # matches what the workers' pinned sessions compute.
        inner = RuntimeContext(
            executor=SerialExecutor(),
            cache=self.sim_cache,
            gateway=self.gateway,
        )
        with runtime_session(context=inner):
            fingerprint = registered_fingerprint(system)
        if fingerprint is None:
            return None
        try:
            key = solve_cell_key(fingerprint, get_problem(problem_id), seed)
        except Exception:
            return None
        return self.solve_cache.get(key)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "SolveServer":
        for worker in self._workers:
            worker.start()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-service-loop", daemon=True
        )
        self._loop_thread.start()
        self._loop_ready.wait()
        if self.join or self.directory.others():
            self._start_heartbeat()
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def boot() -> None:
            self._listen_sock.setblocking(False)
            self._async_server = await asyncio.start_server(
                self._serve_connection, sock=self._listen_sock
            )

        try:
            loop.run_until_complete(boot())
        finally:
            self._loop_ready.set()
        try:
            loop.run_forever()
        finally:
            # Drain cancellations and close whatever is still open.
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            except Exception:  # noqa: BLE001 -- best-effort teardown
                pass
            loop.close()

    async def _serve_connection(self, reader, writer) -> None:
        conn = _Connection(self, reader, writer)
        self._connections.add(conn)
        try:
            await conn.run()
        except asyncio.CancelledError:
            # kill() cancels connection tasks; asyncio's stream-server
            # done-callback calls task.exception(), which would re-raise
            # the cancellation as a logged callback error.
            conn.abort()
        finally:
            self._connections.discard(conn)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the server has shut down."""
        return self._stopped.wait(timeout=timeout)

    def _solve_started(self) -> None:
        with self._idle:
            self._active_solves += 1

    def _solve_finished(self) -> None:
        with self._idle:
            self._active_solves -= 1
            self._idle.notify_all()

    def _call_in_loop(self, coro, timeout: float | None = 10.0):
        """Run one coroutine on the loop thread from outside it."""
        if self._loop is None:
            coro.close()
            return None
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout=timeout)
        except (concurrent.futures.TimeoutError, RuntimeError):
            return None

    async def _close_listener(self) -> None:
        if self._async_server is not None:
            self._async_server.close()
            try:
                await self._async_server.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _close_connections(self, abort: bool) -> None:
        for conn in list(self._connections):
            if abort:
                conn.abort()
            else:
                conn._closed = True
                try:
                    conn.writer.close()
                except (ConnectionError, OSError):
                    pass

    def shutdown(self, handler_grace: float = 30.0) -> None:
        """Graceful drain: refuse new work, finish the queue, close.

        After the workers exit, waits up to ``handler_grace`` seconds
        for in-flight request handlers to flush their terminal frames,
        so a client whose queued job just finished still gets its
        ``done`` before the sockets close.
        """
        with self._shutdown_lock:
            if self._stopped.is_set():
                return
            if self._loop is None:
                # Never started: just release the port.
                self._listen_sock.close()
                self._stopped.set()
                return
            self._call_in_loop(self._close_listener())
            self.broker.close()  # queued jobs still drain to workers
            for worker in self._workers:
                worker.join()
            deadline = time.monotonic() + handler_grace
            with self._idle:
                while self._active_solves > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._idle.wait(
                        timeout=remaining
                    ):
                        break
            self._call_in_loop(self._close_connections(abort=False))
            self._stop_loop()
            self._pool.shutdown(wait=False)
            self._stopped.set()

    def kill(self) -> None:
        """Abrupt stop, as close to SIGKILL as in-process gets.

        Queued jobs are aborted (their subscribers get a terminal
        error), every connection is severed mid-whatever, the listener
        closes, and nothing is drained.  Chaos tests use this to prove
        clients re-shard; production paths should call
        :meth:`shutdown`.
        """
        with self._shutdown_lock:
            if self._stopped.is_set():
                return
            self.broker.abort("server killed")
            if self._loop is not None:
                self._call_in_loop(self._close_listener(), timeout=2.0)
                self._call_in_loop(
                    self._close_connections(abort=True), timeout=2.0
                )
                self._stop_loop()
            else:
                self._listen_sock.close()
            self._pool.shutdown(wait=False)
            self._stopped.set()

    def _stop_loop(self) -> None:
        loop, thread = self._loop, self._loop_thread
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(loop.stop)
        except RuntimeError:
            pass
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10.0)

    # -- elastic ring ---------------------------------------------------

    def _start_heartbeat(self) -> None:
        if self._heartbeat is not None or self._stopped.is_set():
            return
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name="repro-service-heartbeat",
            daemon=True,
        )
        self._heartbeat.start()

    def _heartbeat_loop(self) -> None:
        """Gossip membership and expel peers that stop answering.

        Every tick hellos each known member (and any still-pending
        ``join`` seed) with this server's view; the answers are merged,
        so partial views converge in one round trip per edge.  A member
        failing ``peer_failures`` consecutive hellos is removed --
        which fires the membership hook and drops its cache tiers.
        """
        from repro.service.client import hello_peer

        pending = list(self.join)
        failures: dict[str, int] = {}
        while not self._stopped.is_set():
            targets = sorted(set(pending) | set(self.directory.others()))
            for address in targets:
                if self._stopped.is_set():
                    return
                try:
                    peers = hello_peer(
                        address,
                        self.advertised,
                        self.directory.members(),
                        timeout=max(2.0, self.peer_interval),
                    )
                except Exception:  # noqa: BLE001 -- peer down or draining
                    failures[address] = failures.get(address, 0) + 1
                    if (
                        failures[address] >= self.peer_failures
                        and address in self.directory
                    ):
                        self.directory.remove(address)
                    continue
                failures.pop(address, None)
                if address in pending:
                    pending.remove(address)
                self.directory.add((address, *peers))
            self._stopped.wait(self.peer_interval)

    def _membership_changed(self, members: tuple[str, ...]) -> None:
        """Resync the cache fabric's remote tiers to the ring."""
        ring_peers = tuple(
            address
            for address in members
            if address not in (self.advertised, self.address)
        )
        merged = tuple(
            dict.fromkeys(self._static_peers + ring_peers)
        )
        for cache in (self.sim_cache, self.solve_cache):
            if cache is not None:
                try:
                    cache.set_peers(merged)
                except Exception:  # noqa: BLE001 -- never kill the caller
                    pass

    # -- request handlers (pool threads) --------------------------------

    def _run_handler(self, handler, conn: _Connection, frame) -> None:
        try:
            handler(conn, frame)
        except Exception as exc:  # noqa: BLE001 -- keep the loop alive
            self.stats.count("errors")
            conn.send(
                ErrorFrame(
                    id=getattr(frame, "id", 0),
                    message=f"{type(exc).__name__}: {exc}",
                )
            )

    def _handle_solve(self, conn: _Connection, req: SolveRequest) -> None:
        # Tracked so shutdown() can wait for the terminal frame of
        # every accepted solve to hit the wire.
        self._solve_started()
        try:
            self._solve_request(conn, req)
        finally:
            self._solve_finished()

    def _solve_request(self, conn: _Connection, req: SolveRequest) -> None:
        key = f"{req.system}/{req.problem}/{req.seed}"
        record = self.fetch_cached(req.system, req.problem, req.seed)
        if record is not None:
            # Warm path: serve inline from the already-fetched record;
            # the worker pool and queue are never touched.  A record
            # evicted between probe and fetch simply lands on the cold
            # path below, so an inline solve can never execute a
            # pipeline outside the broker's queue and dedup.
            conn.send(Ack(id=req.id, key=key, cached=True))
            self._serve_record(conn, req, record)
            return
        try:
            job, sub, deduped = self.broker.submit(
                req.system, req.problem, req.seed, priority=req.priority
            )
        except BrokerFull as exc:
            conn.send(ErrorFrame(id=req.id, message=f"busy: {exc}"))
            return
        except BrokerClosed as exc:
            conn.send(ErrorFrame(id=req.id, message=str(exc)))
            return
        conn.send(Ack(id=req.id, key=key, dedup=deduped))
        for kind, payload in sub:
            if kind == "event":
                if req.stream and not conn.send(
                    EventFrame(id=req.id, event=payload)
                ):
                    return
            elif kind == "done":
                conn.send(
                    Done(
                        id=req.id,
                        source=payload.source,
                        passed=payload.passed,
                        score=payload.score,
                        seconds=payload.seconds,
                        system=payload.system,
                        cached=payload.solve_cached,
                        dedup=deduped,
                    )
                )
            else:
                conn.send(ErrorFrame(id=req.id, message=payload))

    def _serve_record(
        self, conn: _Connection, req: SolveRequest, record
    ) -> None:
        sink = None
        if req.stream:
            sink = lambda event: conn.send(  # noqa: E731
                EventFrame(id=req.id, event=event)
            )
        try:
            result = serve_cached_record(
                req.system,
                req.problem,
                record,
                sink=sink,
                sim_cache=self.sim_cache,
            )
        except Exception as exc:  # noqa: BLE001 -- becomes an error frame
            self.stats.count("errors")
            conn.send(
                ErrorFrame(id=req.id, message=f"{type(exc).__name__}: {exc}")
            )
            return
        self.stats.count("cache_served")
        conn.send(
            Done(
                id=req.id,
                source=result.source,
                passed=result.passed,
                score=result.score,
                seconds=result.seconds,
                system=result.system,
                cached=True,
            )
        )

    def _handle_cache_get(self, conn: _Connection, req: CacheGet) -> None:
        """The peer-sharing read rung: answer from LOCAL tiers only.

        A peer's :class:`~repro.runtime.cache.RemoteTier` is asking; if
        this server consulted its *own* remote tiers here, two mutually
        peered servers would chase a missing key around the ring.
        """
        from repro.service.protocol import MAX_FRAME_BYTES

        self.stats.count("peer_gets")
        cache = self.cache_layer(req.layer)
        value = cache.peek_local(req.key) if cache is not None else None
        if value is None:
            conn.send(CacheReply(id=req.id))
            return
        try:
            blob = encode_value(value)
        except Exception:  # noqa: BLE001 -- unpicklable value: report a miss
            conn.send(CacheReply(id=req.id))
            return
        if len(blob) > MAX_FRAME_BYTES - 4096:
            # A value past the frame ceiling must be a typed miss, not
            # an 'unsendable reply' error the peer would hold against
            # this server's health.
            conn.send(CacheReply(id=req.id))
            return
        self.stats.count("peer_hits")
        conn.send(CacheReply(id=req.id, found=True, blob=blob))

    def _handle_cache_put(self, conn: _Connection, req: CachePut) -> None:
        """The peer-sharing write rung: store locally, never re-gossip."""
        cache = self.cache_layer(req.layer)
        if cache is None:
            conn.send(CacheReply(id=req.id))
            return
        value = decode_value(req.blob, cache.value_type)
        if value is None:
            # Garbage or wrong-typed blob: refuse, exactly like the
            # disk tier refuses a corrupt file.
            conn.send(CacheReply(id=req.id))
            return
        cache.put_local(req.key, value)
        self.stats.count("peer_puts")
        conn.send(CacheReply(id=req.id, stored=True))

    def _handle_wave_steal(self, conn: _Connection, req: WaveSteal) -> None:
        """Hand published wave tasks to an idle peer.

        Claimed tasks leave the board atomically, so concurrent thieves
        never duplicate work; an unpicklable task simply stays home
        (the victim simulates it like any unclaimed one).
        """
        claimed = self.steal_board.claim(req.max_items)
        wire = []
        for key, task in claimed:
            try:
                wire.append([key, encode_value(task)])
            except Exception:  # noqa: BLE001 -- keep the task local
                continue
            self.stats.count("steal_served")
        conn.send(WaveTasks(id=req.id, tasks=wire))

    # -- control + discovery (loop thread; all fast) ---------------------

    def _handle_peer_hello(self, conn: _Connection, frame: PeerHello) -> None:
        """Merge the sender's view, answer with ours, start gossiping."""
        self.directory.add((frame.address, *frame.peers))
        conn.send(PeerList(id=frame.id, peers=self.directory.members()))
        # A server that *receives* a hello is in a ring even if it was
        # started without --join: begin heartbeating its members.
        self._start_heartbeat()

    def _handle_control(self, conn: _Connection, req: ControlRequest) -> bool:
        """Returns False when the connection should close."""
        if req.op == "ping":
            conn.send(Ack(id=req.id))
            return True
        if req.op == "peers":
            conn.send(PeerList(id=req.id, peers=self.directory.members()))
            return True
        if req.op == "stats":
            # Snapshotting walks worker and cache locks: off the loop.
            task = conn.loop.run_in_executor(
                self._pool, self._send_stats, conn, req.id
            )
            conn._tasks.add(task)
            task.add_done_callback(conn._tasks.discard)
            return True
        if req.op == "shutdown":
            conn.send(Ack(id=req.id))
            # Drain from a helper thread: shutdown() joins the loop and
            # the workers, which must not happen on the loop thread.
            threading.Thread(
                target=self.shutdown, name="repro-service-drain", daemon=True
            ).start()
            return False
        conn.send(
            ErrorFrame(id=req.id, message=f"unknown control op {req.op!r}")
        )
        return True

    def _send_stats(self, conn: _Connection, request_id: int) -> None:
        try:
            conn.send(StatsReply(id=request_id, stats=self.stats_snapshot()))
        except Exception as exc:  # noqa: BLE001 -- keep the loop alive
            conn.send(
                ErrorFrame(
                    id=request_id,
                    message=f"{type(exc).__name__}: {exc}",
                )
            )

    # -- introspection ---------------------------------------------------

    def executed_count(self) -> int:
        """Pipeline executions across the pool (dedup/cache verification)."""
        return self.stats.snapshot()["executed"]

    def stats_snapshot(self) -> dict:
        def cache_stats(cache):
            if cache is None:
                return None
            stats = cache.stats
            return {
                "entries": len(cache),
                "lookups": stats.lookups,
                "hits": stats.hits,
                "misses": stats.misses,
                "stores": stats.stores,
                "disk_hits": stats.disk_hits,
                "remote_hits": stats.remote_hits,
                "corrupt": stats.corrupt,
                "directory": cache.directory,
                "peers": list(cache.peers),
                "tiers": cache.tier_report(),
                "gossip": cache.gossip_report(),
            }

        from repro.core.pipeline import STAGE_CLOCK
        from repro.llm.gateway.client import GATEWAY_STATS

        # Aggregate scheduler counters across the rollout workers (the
        # section is absent in plain-worker mode).
        scheduler = None
        pool = [w for w in self._workers if isinstance(w, RolloutWorker)]
        if pool:
            dedup: dict[str, int] = {}
            speculation: dict[str, int] = {}
            for worker in pool:
                for key, value in worker.scheduler.dedup.snapshot().items():
                    dedup[key] = dedup.get(key, 0) + value
                for key, value in (
                    worker.scheduler.speculation.snapshot().items()
                ):
                    speculation[key] = speculation.get(key, 0) + value
            scheduler = {"dedup": dedup, "speculation": speculation}

        return {
            "address": self.address,
            "workers": len(self._workers),
            "rollout_batch": self.rollout_batch,
            "pending": len(self.broker),
            "protocol": PROTOCOL_VERSION,
            "broker": self.broker.stats.snapshot(),
            "service": self.stats.snapshot(),
            "gateway": GATEWAY_STATS.snapshot(),
            "gateway_mode": (
                self.gateway.mode if self.gateway is not None else None
            ),
            "stages": STAGE_CLOCK.snapshot(),
            "scheduler": scheduler,
            "steal": {
                **self.steal_board.snapshot(),
                "peers": list(self.steal_peers),
            },
            "ring": {
                "self": self.advertised,
                "members": list(self.directory.members()),
                "join": list(self.join),
                "interval": self.peer_interval,
            },
            "caches": {
                "simulation": cache_stats(self.sim_cache),
                "solve_cell": cache_stats(self.solve_cache),
                "cassette": cache_stats(self.cassette()),
            },
        }

    def __enter__(self) -> "SolveServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
