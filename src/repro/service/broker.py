"""Task broker: priority queue, backpressure, and in-flight dedup.

The broker sits between connection handlers (producers) and the worker
pool (consumers).  Three properties matter:

- **Priority**: jobs pop highest-``priority`` first, FIFO within a
  priority level (a monotonic sequence number breaks ties), so a sweep
  submitted at priority 0 never starves an interactive submit at 5.
- **Backpressure**: at most ``max_pending`` jobs may be queued; beyond
  that :meth:`Broker.submit` raises :class:`BrokerFull` and the server
  turns it into an error frame instead of buffering unboundedly.
- **In-flight dedup**: jobs are keyed by ``(system, problem, seed)`` --
  the same triple that addresses the solve-cell cache.  A submit whose
  key matches a queued *or running* job attaches to it instead of
  enqueuing a second execution: every subscriber replays the events the
  job has already published, then receives the rest live, and all of
  them get the one terminal outcome.  Two clients racing on the same
  cell therefore cost exactly one pipeline execution.

Everything is thread-safe; subscribers drain their own
:class:`Subscription` queue so a slow client never blocks the worker
that publishes.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator


class BrokerFull(Exception):
    """The pending queue is at capacity; retry later."""


class BrokerClosed(Exception):
    """The broker is draining or shut down; no new submissions."""


# Subscription messages: ("event", Event) | ("done", result) | ("error", msg)
class Subscription:
    """One subscriber's private view of a job's stream."""

    def __init__(self) -> None:
        self._queue: "queue.SimpleQueue[tuple[str, Any]]" = queue.SimpleQueue()

    def _push(self, kind: str, payload: Any) -> None:
        self._queue.put((kind, payload))

    def get(self, timeout: float | None = None) -> tuple[str, Any]:
        return self._queue.get(timeout=timeout)

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        """Yield messages until (and including) the terminal one."""
        while True:
            kind, payload = self.get()
            yield kind, payload
            if kind in ("done", "error"):
                return


@dataclass
class BrokerStats:
    """Counters for the dedup/backpressure contract (lock in Broker)."""

    submitted: int = 0
    deduped: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "deduped": self.deduped,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
        }


@dataclass
class Job:
    """One unique cell execution plus everyone listening to it."""

    key: tuple[str, str, int]
    system: str
    problem: str
    seed: int
    priority: int = 0
    # Set (under the broker lock) when a worker pops the job; stale heap
    # entries left behind by a priority bump are skipped on pop.
    dispatched: bool = False
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _subscribers: list[Subscription] = field(default_factory=list, repr=False)
    _events: list = field(default_factory=list, repr=False)
    _outcome: tuple[str, Any] | None = field(default=None, repr=False)

    def subscribe(self) -> Subscription:
        """Attach a subscriber; replays history, then streams live."""
        sub = Subscription()
        with self._lock:
            for event in self._events:
                sub._push("event", event)
            if self._outcome is not None:
                sub._push(*self._outcome)
            else:
                self._subscribers.append(sub)
        return sub

    def publish(self, event) -> None:
        """Fan one run event out to every subscriber (and the replay log)."""
        with self._lock:
            self._events.append(event)
            listeners = list(self._subscribers)
        for sub in listeners:
            sub._push("event", event)

    def _settle(self, kind: str, payload: Any) -> None:
        with self._lock:
            if self._outcome is not None:
                return
            self._outcome = (kind, payload)
            listeners, self._subscribers = self._subscribers, []
        for sub in listeners:
            sub._push(kind, payload)

    @property
    def events(self) -> list:
        with self._lock:
            return list(self._events)


class Broker:
    """Thread-safe priority queue with keyed in-flight dedup."""

    def __init__(self, max_pending: int = 256):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = max_pending
        self.stats = BrokerStats()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, Job]] = []
        self._inflight: dict[tuple[str, str, int], Job] = {}
        self._queued = 0  # undispatched jobs (the heap may hold stale dupes)
        self._seq = itertools.count()
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return self._queued

    def submit(
        self, system: str, problem: str, seed: int, priority: int = 0
    ) -> tuple[Job, Subscription, bool]:
        """Enqueue (or join) one cell; returns (job, subscription, deduped)."""
        key = (system, problem, int(seed))
        with self._ready:
            if self._closed:
                raise BrokerClosed("broker is shut down")
            self.stats.submitted += 1
            existing = self._inflight.get(key)
            if existing is not None:
                self.stats.deduped += 1
                if priority > existing.priority and not existing.dispatched:
                    # The attaching submit outranks the queued job: bump
                    # it by pushing a fresh heap entry (the old one goes
                    # stale and is skipped on pop).
                    existing.priority = priority
                    heapq.heappush(
                        self._heap, (-priority, next(self._seq), existing)
                    )
                return existing, existing.subscribe(), True
            if self._queued >= self.max_pending:
                self.stats.rejected += 1
                self.stats.submitted -= 1
                raise BrokerFull(
                    f"queue full ({self.max_pending} pending jobs)"
                )
            job = Job(
                key=key,
                system=system,
                problem=problem,
                seed=int(seed),
                priority=priority,
            )
            self._inflight[key] = job
            heapq.heappush(self._heap, (-priority, next(self._seq), job))
            self._queued += 1
            self._ready.notify()
            return job, job.subscribe(), False

    def next_job(self, timeout: float | None = None) -> Job | None:
        """Pop the highest-priority job; blocks.  None = drained + closed.

        After :meth:`close`, queued jobs keep popping until the heap is
        empty (graceful drain), then every waiter gets None.
        """
        with self._ready:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.dispatched:
                        continue  # stale entry from a priority bump
                    job.dispatched = True
                    self._queued -= 1
                    return job
                if self._closed:
                    return None
                if not self._ready.wait(timeout=timeout):
                    return None

    def finish(self, job: Job, result) -> None:
        """Publish the terminal result and retire the key."""
        with self._ready:
            self._inflight.pop(job.key, None)
            self.stats.completed += 1
        job._settle("done", result)

    def fail(self, job: Job, message: str) -> None:
        """Publish a terminal error and retire the key."""
        with self._ready:
            self._inflight.pop(job.key, None)
            self.stats.failed += 1
        job._settle("error", message)

    def close(self) -> None:
        """Refuse new submissions; queued jobs still drain to workers."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    def abort(self, message: str = "server killed") -> int:
        """Close *and* fail every undispatched job immediately.

        The ungraceful twin of :meth:`close`, used by a server being
        killed rather than drained: subscribers of queued jobs get a
        terminal error frame (so remote clients can re-shard the cell
        to a surviving peer) instead of waiting on workers that will
        never run them.  Jobs already dispatched to a worker finish
        normally.  Returns how many queued jobs were failed.
        """
        aborted: list[Job] = []
        with self._ready:
            self._closed = True
            while self._heap:
                _, _, job = heapq.heappop(self._heap)
                if job.dispatched:
                    continue  # stale entry from a priority bump
                job.dispatched = True
                self._queued -= 1
                self._inflight.pop(job.key, None)
                self.stats.failed += 1
                aborted.append(job)
            self._ready.notify_all()
        for job in aborted:
            job._settle("error", message)
        return len(aborted)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
