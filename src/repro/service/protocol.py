"""Versioned, length-framed JSON wire format for the solve service.

One frame on the wire is a 4-byte big-endian payload length followed by
a UTF-8 JSON object.  Every payload carries ``"v"`` (the protocol
version) and ``"type"`` (which frame dataclass below it deserialises
to).  Three protocol generations share this framing:

- **v1** -- the original strictly client-driven conversation: one
  request on the wire at a time, replies in request order;
- **v2** -- v1 plus the cache-fabric and work-stealing frames
  (``CacheGet``/``CachePut``/``WaveSteal``/``WaveTasks``);
- **v3** -- multiplexing: every frame carries ``id`` (the request id),
  and a client may interleave any number of in-flight requests on one
  connection -- replies are matched by id, not by order.  v3 also adds
  the peer-discovery frames ``PeerHello``/``PeerList`` that servers use
  to form an elastic consistent-hash ring.

Readers accept any supported version and remember which one the peer
spoke, so a v3 server answers a legacy v1/v2 client in its own dialect
(legacy clients pipeline strictly one request at a time, which is a
degenerate -- and therefore automatically compatible -- multiplexing
schedule).  Unknown versions are rejected with a typed error.

The per-request conversation is unchanged across versions:

- ``SolveRequest``  -> :class:`Ack`, then zero or more
  :class:`EventFrame` (the run's typed event stream, live on a cold
  cell, replayed on a warm one), then exactly one :class:`Done` or
  :class:`ErrorFrame`;
- ``ControlRequest`` -> one :class:`StatsReply`, :class:`PeerList`
  (``peers``), :class:`Ack` (``ping``/``shutdown``), or
  :class:`ErrorFrame`;
- ``CacheGet``/``CachePut`` -> one :class:`CacheReply` -- the cache
  fabric's peer-sharing rungs: a
  :class:`~repro.runtime.cache.RemoteTier` probes or populates another
  server's cache layers (``layer`` routes to the simulation,
  solve-cell, or LLM-cassette cache; values travel as base64-pickled
  blobs, type-guarded on receipt exactly like the disk tier's files);
- ``WaveSteal`` -> one :class:`WaveTasks` -- work stealing: an idle
  scheduler claims published score-wave tasks from a busy peer's steal
  board, simulates them, and returns the reports via ``CachePut``;
- ``PeerHello`` -> one :class:`PeerList` -- membership gossip: the
  sender advertises its own public address plus every member it knows,
  the receiver merges them into its directory and answers with its
  full member list.

Events cross the wire via
:meth:`repro.core.events.Event.to_json`/``from_json``, so the stream a
remote client sees is field-identical to a local run's -- the event
stream *is* the protocol, no transcript parsing.

Stream-end semantics are typed: a stream ending *between* frames is a
clean EOF (``read_frame`` returns None), while a stream ending *inside*
a frame raises :class:`PeerGone` -- the peer died or the connection was
severed mid-write.  ``PeerGone`` subclasses :class:`ProtocolError`, so
callers that only care about "the bytes were bad" keep working, while
gossip/steal/ring paths can catch it specifically and skip the peer
instead of logging corruption.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, fields
from typing import Any, BinaryIO, ClassVar

from repro.core.events import Event

#: The version this process speaks natively (stamped on outgoing frames
#: unless a reply deliberately echoes a legacy peer's version).
PROTOCOL_VERSION = 3

#: Versions this process can read.  v1/v2 peers predate multiplexing;
#: their frames are valid v3 frames with a degenerate (one-at-a-time)
#: schedule, so accepting them *is* the compat shim.
SUPPORTED_VERSIONS = frozenset({1, 2, 3})

#: Versions whose speakers must be answered in their own dialect.
LEGACY_VERSIONS = frozenset({1, 2})

# Generous ceiling: frames hold one JSON-encoded event or result, not
# bulk data.  Anything larger is a corrupt or hostile stream.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")

# type tag -> concrete frame class; populated as subclasses are defined.
FRAME_TYPES: dict[str, type["Frame"]] = {}


class ProtocolError(Exception):
    """Malformed frame, version mismatch, or unknown frame type."""


class PeerGone(ProtocolError):
    """The peer vanished mid-frame (or refused the connection).

    Distinct from corrupt data: the bytes that did arrive were fine,
    the stream just ended inside a frame.  Ring and gossip paths catch
    this to mark the peer down and move on, rather than treating a
    crashed server as a protocol bug.
    """


@dataclass(frozen=True)
class Frame:
    """Base frame: ``type`` discriminates on the wire."""

    type: ClassVar[str] = "frame"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        FRAME_TYPES[cls.type] = cls

    def to_wire(self) -> dict:
        payload: dict[str, Any] = {"type": self.type}
        for f in fields(self):
            payload[f.name] = getattr(self, f.name)
        return payload

    @classmethod
    def from_wire(cls, payload: dict) -> "Frame":
        kwargs = {
            f.name: payload[f.name] for f in fields(cls) if f.name in payload
        }
        return cls(**kwargs)


@dataclass(frozen=True)
class SolveRequest(Frame):
    """Submit one solve cell: (registered system, problem id, seed).

    ``priority`` orders the broker's queue (higher runs sooner);
    ``stream`` asks for the per-run event frames (grid clients turn it
    off and read only the terminal frame).
    """

    type: ClassVar[str] = "request"
    id: int
    system: str
    problem: str
    seed: int = 0
    priority: int = 0
    stream: bool = True


@dataclass(frozen=True)
class ControlRequest(Frame):
    """Out-of-band server control: ``op`` is ping | stats | peers |
    shutdown."""

    type: ClassVar[str] = "control"
    id: int
    op: str


@dataclass(frozen=True)
class Ack(Frame):
    """The request was accepted (and how it will be served).

    ``dedup`` marks a submit that attached to an identical in-flight
    cell; ``cached`` marks one served straight from the solve-cell
    cache without touching a worker.
    """

    type: ClassVar[str] = "ack"
    id: int
    key: str = ""
    dedup: bool = False
    cached: bool = False


@dataclass(frozen=True)
class EventFrame(Frame):
    """One typed run event, exactly as a local sink would receive it."""

    type: ClassVar[str] = "event"
    id: int
    event: Event

    def to_wire(self) -> dict:
        return {"type": self.type, "id": self.id, "event": self.event.to_json()}

    @classmethod
    def from_wire(cls, payload: dict) -> "EventFrame":
        try:
            event = Event.from_json(payload["event"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad event frame: {exc}") from exc
        return cls(id=payload.get("id", 0), event=event)


@dataclass(frozen=True)
class Done(Frame):
    """Terminal frame of a solve: the scored result.

    ``cached`` records whether the solve-cell cache served the run;
    ``dedup`` whether this subscriber shared another client's
    execution.
    """

    type: ClassVar[str] = "done"
    id: int
    source: str
    passed: bool
    score: float
    seconds: float
    system: str = ""
    cached: bool = False
    dedup: bool = False


@dataclass(frozen=True)
class ErrorFrame(Frame):
    """Terminal frame of a failed request."""

    type: ClassVar[str] = "error"
    id: int
    message: str


@dataclass(frozen=True)
class CacheGet(Frame):
    """Probe a peer's cache fabric for one content-addressed key.

    ``layer`` picks the server-side cache (``sim`` | ``solve`` |
    ``llm``).  The
    peer answers from its local tiers only (memory + disk), never its
    own remote tiers, so mutually peered servers cannot loop.
    """

    type: ClassVar[str] = "cache_get"
    id: int
    layer: str
    key: str


@dataclass(frozen=True)
class CachePut(Frame):
    """Push one cache entry to a peer (gossip).

    ``blob`` is the base64-pickled value; the receiver type-guards it
    before storing, exactly like a disk-tier read.  Senders normally
    queue these on a write-behind gossip queue so a put never sits on
    the solve path.
    """

    type: ClassVar[str] = "cache_put"
    id: int
    layer: str
    key: str
    blob: str


@dataclass(frozen=True)
class CacheReply(Frame):
    """Answer to a cache frame: the blob (get) or a store ack (put)."""

    type: ClassVar[str] = "cache_reply"
    id: int
    found: bool = False
    stored: bool = False
    blob: str = ""


@dataclass(frozen=True)
class WaveSteal(Frame):
    """Ask a peer for up to ``max_items`` of its published wave tasks.

    Claimed tasks leave the peer's steal board, so two thieves never
    simulate the same published task.  The peer still simulates a
    claimed task itself if the thief's result has not landed by the
    time its wave runs -- simulations are pure, so the race is benign.
    """

    type: ClassVar[str] = "wave_steal"
    id: int
    max_items: int = 4


@dataclass(frozen=True)
class WaveTasks(Frame):
    """Answer to ``WaveSteal``: ``(simulation key, pickled task)`` pairs.

    Each entry is a two-item ``[key, blob]`` list; the blob decodes to
    a :class:`~repro.runtime.rollout.ScoreTask`, type-guarded by the
    thief exactly like any other fabric blob.
    """

    type: ClassVar[str] = "wave_tasks"
    id: int
    tasks: tuple = ()


@dataclass(frozen=True)
class PeerHello(Frame):
    """Membership gossip: "I am ``address``, and I know ``peers``".

    Sent by a server to every ring member it knows (on ``--join``
    bootstrap and on each heartbeat tick).  The receiver merges the
    sender and its peer list into its own directory and answers with a
    :class:`PeerList` of everything *it* knows, so two partially
    informed servers converge in one exchange.
    """

    type: ClassVar[str] = "peer_hello"
    id: int
    address: str
    peers: tuple = ()


@dataclass(frozen=True)
class PeerList(Frame):
    """The responder's full membership view (its own address included).

    Also the answer to a client's ``peers`` control request, which is
    how ``eval --service`` pointed at any one ring member discovers the
    whole ring.
    """

    type: ClassVar[str] = "peer_list"
    id: int
    peers: tuple = ()


@dataclass(frozen=True)
class StatsReply(Frame):
    """Server-side metrics report: broker and worker counters, every
    cache layer's tier stats, gateway call/retry/fallback/token
    totals, and per-stage wall-clock."""

    type: ClassVar[str] = "stats"
    id: int
    stats: dict


def encode_frame(frame: Frame, version: int = PROTOCOL_VERSION) -> bytes:
    """Length-prefixed wire bytes for one frame.

    ``version`` stamps the payload -- servers pass the version the
    connection's client spoke so legacy peers get replies in their own
    dialect.
    """
    payload = frame.to_wire()
    payload["v"] = version
    data = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large ({len(data)} bytes)")
    return _HEADER.pack(len(data)) + data


def decode_payload_versioned(data: bytes) -> tuple[Frame, int]:
    """Parse one frame payload; returns ``(frame, spoken version)``."""
    try:
        payload = json.loads(data.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload is not an object")
    version = payload.get("v")
    if (
        not isinstance(version, int)
        or isinstance(version, bool)
        or version not in SUPPORTED_VERSIONS
    ):
        raise ProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"want one of {sorted(SUPPORTED_VERSIONS)}"
        )
    frame_cls = FRAME_TYPES.get(payload.get("type"))
    if frame_cls is None or frame_cls is Frame:
        raise ProtocolError(f"unknown frame type {payload.get('type')!r}")
    try:
        return frame_cls.from_wire(payload), version
    except TypeError as exc:
        raise ProtocolError(f"bad {frame_cls.type} frame: {exc}") from exc


def decode_payload(data: bytes) -> Frame:
    """Parse one frame payload (the bytes after the length header)."""
    frame, _ = decode_payload_versioned(data)
    return frame


def read_frame(stream: BinaryIO) -> Frame | None:
    """Read one frame; None on clean EOF at a frame boundary.

    Both the header and the body reads loop over short reads, so the
    framing survives raw (unbuffered) streams that deliver a frame in
    arbitrary fragments.  A stream ending *mid-frame* raises
    :class:`PeerGone` (the peer died or the link was severed); corrupt
    bytes raise plain :class:`ProtocolError`.  Neither hangs or returns
    a partial frame.
    """
    frame_and_version = read_frame_versioned(stream)
    if frame_and_version is None:
        return None
    return frame_and_version[0]


def read_frame_versioned(stream: BinaryIO) -> tuple[Frame, int] | None:
    """Like :func:`read_frame`, but also reports the spoken version."""
    header = b""
    while len(header) < _HEADER.size:
        chunk = stream.read(_HEADER.size - len(header))
        if not chunk:
            if not header:
                return None  # clean EOF at a frame boundary
            raise PeerGone("truncated frame header")
        header += chunk
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large ({length} bytes)")
    data = b""
    while len(data) < length:
        chunk = stream.read(length - len(data))
        if not chunk:
            raise PeerGone("truncated frame body")
        data += chunk
    return decode_payload_versioned(data)


def write_frame(
    stream: BinaryIO, frame: Frame, version: int = PROTOCOL_VERSION
) -> None:
    """Serialise and flush one frame."""
    stream.write(encode_frame(frame, version=version))
    stream.flush()


async def read_frame_async(reader) -> tuple[Frame, int] | None:
    """Async twin of :func:`read_frame_versioned` for asyncio streams.

    Returns ``(frame, spoken version)``, or None on clean EOF at a
    frame boundary; raises :class:`PeerGone` on EOF mid-frame and
    :class:`ProtocolError` on corrupt bytes, never hangs on a short
    read.
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF at a frame boundary
        raise PeerGone("truncated frame header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large ({length} bytes)")
    try:
        data = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise PeerGone("truncated frame body") from exc
    return decode_payload_versioned(data)


async def write_frame_async(
    writer, frame: Frame, version: int = PROTOCOL_VERSION
) -> None:
    """Serialise one frame to an asyncio writer and drain it."""
    writer.write(encode_frame(frame, version=version))
    await writer.drain()
