"""Long-lived solve workers: pull cells, run the pipeline, stream events.

A :class:`Worker` is a daemon thread bound to a
:class:`~repro.service.broker.Broker`.  For each job it resolves the
registered system and benchmark problem, then runs exactly the
computation an :func:`~repro.runtime.batch.evaluate_many` cell would
run -- a fresh system instance under a pinned-serial runtime session,
scored against the hidden golden testbench -- while streaming the typed
event stream to every subscriber via ``job.publish``.  Bit-for-bit
parity with the local executor is therefore structural, not aspirational:
both paths share :func:`repro.runtime.workers.solve_streaming`.

Workers populate (and are fronted by) both cache layers: the solve-cell
cache memoizes whole runs, the simulation cache the golden scoring, so
a repeated submit replays its event stream and re-scores entirely from
cache.  ``executed`` counts only jobs whose pipeline actually ran --
the counter the dedup and cache contracts are verified against.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover -- annotation-only import
    from repro.llm.gateway.settings import GatewaySettings

from repro.runtime.cache import (
    SimulationCache,
    SolveCellCache,
    cached_run_testbench,
    decode_value,
    encode_value,
    system_fingerprint,
)
from repro.runtime.config import default_jobs
from repro.runtime.context import RuntimeContext, runtime_session
from repro.runtime.executor import Executor, SerialExecutor, ThreadExecutor
from repro.runtime.rollout import (
    RolloutRequest,
    RolloutScheduler,
    ScoreTask,
    StealBoard,
    rollout_score,
)
from repro.runtime.workers import solve_streaming


@dataclass(frozen=True)
class ServiceResult:
    """One solved cell: what the terminal ``done`` frame carries."""

    source: str
    passed: bool
    score: float
    seconds: float
    system: str
    solve_cached: bool = False


class ServiceStats:
    """Thread-safe service counters (worker executions, cache serves,
    and the peer-sharing traffic answered for other machines)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.executed = 0  # pipelines actually run (not cache-served)
        self.cache_served = 0  # results served from the solve-cell cache
        self.errors = 0
        self.peer_gets = 0  # CacheGet frames answered
        self.peer_hits = 0  # ... of which found a local entry
        self.peer_puts = 0  # CachePut frames stored
        self.steal_served = 0  # wave tasks handed to thieves (victim side)
        self.steal_attempts = 0  # WaveSteal frames sent (thief side)
        self.steal_executed = 0  # stolen tasks simulated and returned
        self.steal_peer_gone = 0  # steal rounds abandoned: peer dead/severed

    def count(self, field: str) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + 1)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "executed": self.executed,
                "cache_served": self.cache_served,
                "errors": self.errors,
                "peer_gets": self.peer_gets,
                "peer_hits": self.peer_hits,
                "peer_puts": self.peer_puts,
                "steal_served": self.steal_served,
                "steal_attempts": self.steal_attempts,
                "steal_executed": self.steal_executed,
                "steal_peer_gone": self.steal_peer_gone,
            }


# Registered-system display names and config fingerprints, resolved
# once per process: both are pure functions of the registry key (plus,
# for fingerprints, the active gateway configuration), and recomputing
# them (an instance construction, a _stable_repr walk over the whole
# config) per request would be wasted work on hot paths.
_NAME_CACHE: dict[str, str] = {}
_FINGERPRINT_CACHE: dict[tuple, str | None] = {}
_NAME_LOCK = threading.Lock()


def registered_system_name(key: str) -> str:
    """The ``.name`` a fresh instance of a registered system reports."""
    from repro.baselines.registry import SYSTEMS, system_names

    with _NAME_LOCK:
        name = _NAME_CACHE.get(key)
        if name is None:
            spec = SYSTEMS.get(key)
            if spec is None:
                raise KeyError(
                    f"unknown system {key!r}; "
                    f"known: {', '.join(system_names())}"
                )
            name = spec.factory().name
            _NAME_CACHE[key] = name
        return name


def registered_fingerprint(key: str) -> str | None:
    """Memoized :func:`system_fingerprint` of a registered system.

    None means the factory has no stable configuration identity (and
    solve-cell caching is skipped for it), memoized all the same.  The
    memo key folds in the active gateway fingerprint because
    ``system_fingerprint`` resolves it ambiently: the same system key
    under a different backend chain or stage routing is a different
    solve-cell identity and must not reuse a stale memo entry.
    """
    from repro.baselines.registry import SYSTEMS
    from repro.llm.gateway.settings import active_gateway_fingerprint

    memo_key = (key, active_gateway_fingerprint())
    with _NAME_LOCK:
        if memo_key not in _FINGERPRINT_CACHE:
            spec = SYSTEMS.get(key)
            _FINGERPRINT_CACHE[memo_key] = (
                system_fingerprint(spec.factory) if spec is not None else None
            )
        return _FINGERPRINT_CACHE[memo_key]


def serve_cached_record(
    system: str,
    problem_id: str,
    record,
    sink=None,
    sim_cache: SimulationCache | None = None,
) -> ServiceResult:
    """Serve one cell from an already-fetched solve-cell record.

    Replays the recorded event stream into ``sink`` and re-scores the
    cached source against the golden testbench (itself a simulation-
    cache hit on a warm server) -- the server's inline warm path, which
    never touches the worker pool.
    """
    from repro.core.events import as_sink
    from repro.evalsets import get_problem, golden_testbench

    problem = get_problem(problem_id)
    golden = golden_testbench(problem)
    started = time.perf_counter()
    if sink is not None:
        live = as_sink(sink)
        for event in record.events:
            live.emit(event)
    inner = RuntimeContext(executor=SerialExecutor(), cache=sim_cache)
    with runtime_session(context=inner):
        report = cached_run_testbench(
            record.source, golden, problem.top, cache=sim_cache
        )
    return ServiceResult(
        source=record.source,
        passed=report.passed,
        score=report.score,
        seconds=time.perf_counter() - started,
        system=registered_system_name(system),
        solve_cached=True,
    )


def solve_service_request(
    system: str,
    problem_id: str,
    seed: int,
    sink=None,
    sim_cache: SimulationCache | None = None,
    solve_cache: SolveCellCache | None = None,
    gateway: "GatewaySettings | None" = None,
) -> ServiceResult:
    """Run one (system, problem, seed) cell exactly as a grid cell would.

    Raises ``KeyError`` for an unknown system or problem id; the caller
    turns that into an error frame.
    """
    from repro.baselines.registry import SYSTEMS, system_names
    from repro.evalsets import get_problem, golden_testbench

    spec = SYSTEMS.get(system)
    if spec is None:
        raise KeyError(
            f"unknown system {system!r}; known: {', '.join(system_names())}"
        )
    problem = get_problem(problem_id)
    golden = golden_testbench(problem)
    started = time.perf_counter()
    # Same isolation as a batch cell: the whole request runs under a
    # serial inner runtime (pinning the server's gateway settings), so
    # worker threads never nest parallelism and LLM-call ordering
    # matches a plain local solve.  The fingerprint is resolved inside
    # the session so it sees the same gateway the solve will.
    inner = RuntimeContext(
        executor=SerialExecutor(), cache=sim_cache, gateway=gateway
    )
    with runtime_session(context=inner):
        fingerprint = (
            registered_fingerprint(system) if solve_cache is not None else None
        )
        source, cached = solve_streaming(
            spec.factory,
            problem,
            seed,
            sink=sink,
            solve_cache=solve_cache,
            fingerprint=fingerprint,
        )
        report = cached_run_testbench(source, golden, problem.top, cache=sim_cache)
    return ServiceResult(
        source=source,
        passed=report.passed,
        score=report.score,
        seconds=time.perf_counter() - started,
        system=registered_system_name(system),
        solve_cached=cached,
    )


def steal_from_peer(
    address: str,
    cache: SimulationCache | None = None,
    max_items: int = 4,
    stats: ServiceStats | None = None,
    timeout: float | None = 30.0,
) -> int:
    """Claim, simulate, and return up to ``max_items`` of a busy peer's
    published score-wave tasks.  Returns how many were executed.

    The claimed :class:`~repro.runtime.rollout.ScoreTask` blobs are
    type-guarded on receipt, simulated through *this* process's cache
    (warming it too), and the reports pushed back over ``CachePut``
    into the victim's ``sim`` layer -- where the victim's own wave
    lookups find them.  Every failure mode (peer gone, corrupt blob,
    simulation error, lost put) degrades to the victim simulating
    locally, never to a wrong or missing result.
    """
    from repro.service.client import ServiceClient

    if stats is not None:
        stats.count("steal_attempts")
    executed = 0
    with ServiceClient(address, timeout=timeout) as client:
        pairs = client.wave_steal(max_items=max_items)
        for key, blob in pairs:
            task = decode_value(blob, ScoreTask)
            if task is None:
                continue  # corrupt or wrong-typed blob: skip
            try:
                outcome = rollout_score(task, cache)
            except Exception:  # noqa: BLE001 -- victim retains the task
                continue
            try:
                client.cache_put("sim", key, encode_value(outcome.report))
            except Exception:  # noqa: BLE001 -- lost put = local re-sim
                continue
            executed += 1
            if stats is not None:
                stats.count("steal_executed")
    return executed


class RolloutWorker(threading.Thread):
    """A worker that gang-schedules sampling across in-flight cells.

    Where :class:`Worker` drains one job at a time, this worker gathers
    up to ``batch`` dedup-distinct jobs from the broker (after the
    first blocking pop it lingers ``linger`` seconds for stragglers),
    turns them into rollout requests, and drives them through a shared
    :class:`~repro.runtime.rollout.RolloutScheduler`: every gathered
    cell advances to its Step-4 suspension point, their candidate
    simulations coalesce into shared scoring waves, and each job's
    event stream is published as its phases complete.

    Batch *composition* is timing-dependent (it depends on what is
    queued when), but per-job output is not: the rollout determinism
    contract makes every job's events and result identical to a plain
    :class:`Worker`'s, whichever batch it happened to ride in.

    With ``steal_peers``, an *idle* worker (empty broker) turns thief:
    it polls the queue with a short timeout and, between polls, drains
    published score waves from each peer in turn via
    :func:`steal_from_peer`.  ``steal_board`` is this server's own
    published-wave board, shared across its workers so any of them can
    be the victim.
    """

    def __init__(
        self,
        broker,
        stats: ServiceStats,
        sim_cache: SimulationCache | None = None,
        solve_cache: SolveCellCache | None = None,
        batch: int = 4,
        linger: float = 0.05,
        executor: Executor | None = None,
        name: str | None = None,
        gateway: "GatewaySettings | None" = None,
        steal_peers: tuple[str, ...] | list[str] | None = None,
        steal_board: StealBoard | None = None,
        steal_poll: float = 0.25,
    ):
        super().__init__(name=name or "repro-service-rollout", daemon=True)
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.broker = broker
        self.stats = stats
        self.sim_cache = sim_cache
        self.solve_cache = solve_cache
        self.batch = batch
        self.linger = linger
        self.gateway = gateway
        self.steal_peers = tuple(steal_peers or ())
        self.steal_poll = steal_poll
        # Per-peer cooldown deadlines: a peer that died mid-steal (or
        # refused the connection) is skipped until its deadline passes,
        # so an idle thief doesn't hammer a corpse every poll tick.
        self.steal_cooldown = 2.0
        self._peer_down_until: dict[str, float] = {}
        self._owns_executor = executor is None
        self.scheduler = RolloutScheduler(
            executor=(
                executor
                if executor is not None
                # Wave fan-out sized to the machine, not the batch knob:
                # score waves carry batch x pool_size simulations.
                else ThreadExecutor(max(2, default_jobs()))
            ),
            batch=batch,
            cache=sim_cache,
            solve_cache=solve_cache,
            gateway=gateway,
            steal_board=steal_board,
        )

    def _fingerprint(self, system: str) -> str | None:
        # Resolve under a context pinning the worker's gateway settings
        # so the memoized fingerprint matches what the scheduler's
        # pinned cells will compute (not whatever this thread's ambient
        # environment happens to say).
        inner = RuntimeContext(
            executor=SerialExecutor(),
            cache=self.sim_cache,
            gateway=self.gateway,
        )
        with runtime_session(context=inner):
            return registered_fingerprint(system)

    def run(self) -> None:
        try:
            while True:
                if self.steal_peers:
                    # Idle loop with theft: poll the queue briefly, and
                    # between polls drain score waves from busy peers.
                    job = self.broker.next_job(timeout=self.steal_poll)
                    if job is None:
                        if self.broker.closed:
                            return
                        self._steal_round()
                        continue
                else:
                    job = self.broker.next_job()
                    if job is None:
                        return  # broker closed and drained
                jobs = [job]
                while len(jobs) < self.batch:
                    extra = self.broker.next_job(timeout=self.linger)
                    if extra is None:
                        break  # nothing else queued right now
                    jobs.append(extra)
                self._solve_batch(jobs)
        finally:
            if self._owns_executor:
                self.scheduler.executor.shutdown()

    def _steal_round(self) -> None:
        """One pass over the peer ring; dead peers are typed and cooled.

        A peer that vanished -- connection refused, reset, or severed
        mid-frame (:class:`~repro.service.protocol.PeerGone`) -- is
        *expected* during elastic churn: it is counted, put on a short
        cooldown, and skipped, never logged as corruption.  Anything
        else (a genuine protocol violation) also skips the peer but
        without assuming it will come back.
        """
        from repro.service.client import ServiceError
        from repro.service.protocol import PeerGone, ProtocolError

        now = time.monotonic()
        for address in self.steal_peers:
            if now < self._peer_down_until.get(address, 0.0):
                continue  # cooling down after a recent death
            try:
                steal_from_peer(
                    address,
                    cache=self.sim_cache,
                    max_items=self.batch,
                    stats=self.stats,
                )
            except (PeerGone, ConnectionError, OSError, ServiceError):
                # The peer is gone (or going): cool down and move on.
                self.stats.count("steal_peer_gone")
                self._peer_down_until[address] = (
                    time.monotonic() + self.steal_cooldown
                )
                continue
            except ProtocolError:
                # Desynchronised or corrupt stream: the one-shot client
                # is already closed; treat the peer as suspect too.
                self.stats.count("steal_peer_gone")
                self._peer_down_until[address] = (
                    time.monotonic() + self.steal_cooldown
                )
                continue
            self._peer_down_until.pop(address, None)

    def _solve_batch(self, jobs: list) -> None:
        from repro.baselines.registry import SYSTEMS, system_names
        from repro.evalsets import get_problem, golden_testbench

        requests: list[RolloutRequest] = []
        admitted: list = []
        for job in jobs:
            spec = SYSTEMS.get(job.system)
            if spec is None:
                self.stats.count("errors")
                self.broker.fail(
                    job,
                    f"KeyError: unknown system {job.system!r}; "
                    f"known: {', '.join(system_names())}",
                )
                continue
            try:
                problem = get_problem(job.problem)
                golden = golden_testbench(problem)
            except Exception as exc:  # noqa: BLE001 -- becomes an error frame
                self.stats.count("errors")
                self.broker.fail(job, f"{type(exc).__name__}: {exc}")
                continue
            requests.append(
                RolloutRequest(
                    index=len(requests),
                    factory=spec.factory,
                    problem=problem,
                    golden_tb=golden,
                    seed=job.seed,
                    sink=job.publish,
                    fingerprint=(
                        self._fingerprint(job.system)
                        if self.solve_cache is not None
                        else None
                    ),
                )
            )
            admitted.append(job)
        if not requests:
            return
        try:
            results = self.scheduler.run(requests)
        except Exception as exc:  # noqa: BLE001 -- fail the whole batch
            for job in admitted:
                self.stats.count("errors")
                self.broker.fail(job, f"{type(exc).__name__}: {exc}")
            return
        for job, result in zip(admitted, results):
            if result.error is not None:
                self.stats.count("errors")
                self.broker.fail(job, result.error)
                continue
            self.stats.count(
                "cache_served" if result.solve_cached else "executed"
            )
            self.broker.finish(
                job,
                ServiceResult(
                    source=result.source,
                    passed=result.passed,
                    score=result.score,
                    seconds=result.seconds,
                    system=registered_system_name(job.system),
                    solve_cached=result.solve_cached,
                ),
            )


class Worker(threading.Thread):
    """One long-lived worker thread draining the broker."""

    def __init__(
        self,
        broker,
        stats: ServiceStats,
        sim_cache: SimulationCache | None = None,
        solve_cache: SolveCellCache | None = None,
        name: str | None = None,
        gateway: "GatewaySettings | None" = None,
    ):
        super().__init__(name=name or "repro-service-worker", daemon=True)
        self.broker = broker
        self.stats = stats
        self.sim_cache = sim_cache
        self.solve_cache = solve_cache
        self.gateway = gateway

    def run(self) -> None:
        while True:
            job = self.broker.next_job()
            if job is None:
                return  # broker closed and drained
            try:
                result = solve_service_request(
                    job.system,
                    job.problem,
                    job.seed,
                    sink=job.publish,
                    sim_cache=self.sim_cache,
                    solve_cache=self.solve_cache,
                    gateway=self.gateway,
                )
            except Exception as exc:  # noqa: BLE001 -- becomes an error frame
                self.stats.count("errors")
                self.broker.fail(job, f"{type(exc).__name__}: {exc}")
                continue
            self.stats.count(
                "cache_served" if result.solve_cached else "executed"
            )
            self.broker.finish(job, result)
