"""``repro.service``: a long-lived solve service over the event stream.

The one-shot :func:`~repro.runtime.batch.evaluate_many` model, turned
into a service: a localhost TCP :class:`SolveServer` owns a priority
:class:`Broker` (with backpressure and in-flight dedup), a pool of
long-lived :class:`~repro.service.worker.Worker` threads running the
existing staged pipeline, and both content-addressed cache layers.
Clients speak a versioned, length-framed JSON protocol
(:mod:`repro.service.protocol`) whose event frames are the exact typed
events of :mod:`repro.core.events` -- the event stream is the wire
protocol.  :func:`solve_grid` shards the Eq. 7 ``problems x runs`` grid
across servers with a deterministic merge, bit-identical to local
serial evaluation.

Servers are also cache peers: ``CacheGet``/``CachePut`` frames let a
:class:`~repro.runtime.cache.RemoteTier` read and populate another
server's cache layers, so warm solve cells and simulation reports
travel the peer ring instead of being recomputed (the serving ladder's
peer-replay rung).
"""

from repro.service.broker import (
    Broker,
    BrokerClosed,
    BrokerFull,
    BrokerStats,
    Job,
    Subscription,
)
from repro.service.client import (
    GridReport,
    ServiceClient,
    ServiceError,
    SolveOutcome,
    fetch_stats,
    parse_address,
    parse_shards,
    solve_grid,
    stop_server,
)
from repro.service.metrics import render_prometheus
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Ack,
    CacheGet,
    CachePut,
    CacheReply,
    ControlRequest,
    Done,
    ErrorFrame,
    EventFrame,
    Frame,
    ProtocolError,
    SolveRequest,
    StatsReply,
    WaveSteal,
    WaveTasks,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.service.server import SolveServer
from repro.service.worker import (
    RolloutWorker,
    ServiceResult,
    ServiceStats,
    Worker,
    registered_fingerprint,
    registered_system_name,
    serve_cached_record,
    solve_service_request,
    steal_from_peer,
)

__all__ = [
    "PROTOCOL_VERSION",
    "Ack",
    "Broker",
    "BrokerClosed",
    "BrokerFull",
    "BrokerStats",
    "CacheGet",
    "CachePut",
    "CacheReply",
    "ControlRequest",
    "Done",
    "ErrorFrame",
    "EventFrame",
    "Frame",
    "GridReport",
    "Job",
    "ProtocolError",
    "RolloutWorker",
    "ServiceClient",
    "ServiceError",
    "ServiceResult",
    "ServiceStats",
    "SolveOutcome",
    "SolveRequest",
    "SolveServer",
    "StatsReply",
    "Subscription",
    "WaveSteal",
    "WaveTasks",
    "Worker",
    "encode_frame",
    "fetch_stats",
    "parse_address",
    "parse_shards",
    "read_frame",
    "registered_fingerprint",
    "registered_system_name",
    "render_prometheus",
    "serve_cached_record",
    "solve_grid",
    "solve_service_request",
    "steal_from_peer",
    "stop_server",
    "write_frame",
]
