"""``repro.service``: a long-lived solve service over the event stream.

The one-shot :func:`~repro.runtime.batch.evaluate_many` model, turned
into a service: a localhost TCP :class:`SolveServer` owns a priority
:class:`Broker` (with backpressure and in-flight dedup), a pool of
long-lived :class:`~repro.service.worker.Worker` threads running the
existing staged pipeline, and both content-addressed cache layers.
Clients speak a versioned, length-framed JSON protocol
(:mod:`repro.service.protocol`) whose event frames are the exact typed
events of :mod:`repro.core.events` -- the event stream is the wire
protocol.  :func:`solve_grid` shards the Eq. 7 ``problems x runs`` grid
across servers with a deterministic merge, bit-identical to local
serial evaluation.

Servers are also cache peers: ``CacheGet``/``CachePut`` frames let a
:class:`~repro.runtime.cache.RemoteTier` read and populate another
server's cache layers, so warm solve cells and simulation reports
travel the peer ring instead of being recomputed (the serving ladder's
peer-replay rung).

The peer ring is *elastic*: servers discover each other over
``PeerHello``/``PeerList`` frames (``serve --join ADDR`` bootstraps a
new member from any existing one), agree on membership through a
heartbeat gossip loop, and place work and cache entries on a
consistent-hash :class:`~repro.service.ring.HashRing` -- so
``solve_grid(ring=True)`` and the cache fabric's remote tiers send each
cell to the same member, and a member dying mid-sweep only moves its
own share of the keyspace.  :class:`MultiplexedClient` runs any number
of concurrent requests over one connection (protocol v3), while legacy
v1/v2 clients keep working one request at a time.
"""

from repro.service.broker import (
    Broker,
    BrokerClosed,
    BrokerFull,
    BrokerStats,
    Job,
    Subscription,
)
from repro.service.client import (
    GridReport,
    MultiplexedClient,
    ServiceClient,
    ServiceError,
    SolveOutcome,
    fetch_peers,
    fetch_stats,
    hello_peer,
    parse_address,
    parse_shards,
    solve_grid,
    stop_server,
)
from repro.service.metrics import render_prometheus
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Ack,
    CacheGet,
    CachePut,
    CacheReply,
    ControlRequest,
    Done,
    ErrorFrame,
    EventFrame,
    Frame,
    PeerGone,
    PeerHello,
    PeerList,
    ProtocolError,
    SolveRequest,
    StatsReply,
    WaveSteal,
    WaveTasks,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.service.ring import HashRing, PeerDirectory, ring_key
from repro.service.server import SolveServer
from repro.service.worker import (
    RolloutWorker,
    ServiceResult,
    ServiceStats,
    Worker,
    registered_fingerprint,
    registered_system_name,
    serve_cached_record,
    solve_service_request,
    steal_from_peer,
)

__all__ = [
    "PROTOCOL_VERSION",
    "Ack",
    "Broker",
    "BrokerClosed",
    "BrokerFull",
    "BrokerStats",
    "CacheGet",
    "CachePut",
    "CacheReply",
    "ControlRequest",
    "Done",
    "ErrorFrame",
    "EventFrame",
    "Frame",
    "GridReport",
    "HashRing",
    "Job",
    "MultiplexedClient",
    "PeerDirectory",
    "PeerGone",
    "PeerHello",
    "PeerList",
    "ProtocolError",
    "RolloutWorker",
    "ServiceClient",
    "ServiceError",
    "ServiceResult",
    "ServiceStats",
    "SolveOutcome",
    "SolveRequest",
    "SolveServer",
    "StatsReply",
    "SUPPORTED_VERSIONS",
    "Subscription",
    "WaveSteal",
    "WaveTasks",
    "Worker",
    "encode_frame",
    "fetch_peers",
    "fetch_stats",
    "hello_peer",
    "parse_address",
    "parse_shards",
    "read_frame",
    "registered_fingerprint",
    "registered_system_name",
    "render_prometheus",
    "ring_key",
    "serve_cached_record",
    "solve_grid",
    "solve_service_request",
    "steal_from_peer",
    "stop_server",
    "write_frame",
]
