"""Prometheus text exposition of a server's ``StatsReply`` snapshot.

:func:`render_prometheus` turns the dict :meth:`SolveServer.stats_snapshot`
returns (and :class:`~repro.service.protocol.StatsReply` carries) into
the Prometheus text exposition format (version 0.0.4): ``# HELP`` /
``# TYPE`` headers followed by ``name{labels} value`` samples.  The
``repro stats --prometheus`` CLI mode prints it for scrape-by-cron or
textfile-collector setups -- no HTTP endpoint, no client library, just
the counters the service already keeps:

- broker and service request totals,
- per-layer, per-tier cache fabric stats,
- gateway call/retry/fallback/token/cost counters,
- per-stage wall-clock from the process-wide StageClock,
- rollout-scheduler dedup + speculation counters and the
  work-stealing board.

Every section is optional: the renderer skips what a snapshot does not
carry (old servers, plain-worker mode), so it never fails on a sparse
dict.  Metric names are stable API -- dashboards depend on them.
"""

from __future__ import annotations


def _escape(value: str) -> str:
    """Label-value escaping per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(pairs: dict) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape(value)}"' for name, value in pairs.items()
    )
    return "{" + inner + "}"


def _number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Exposition:
    """Accumulates families in first-use order, one block per family."""

    def __init__(self) -> None:
        self._order: list[str] = []
        self._help: dict[str, tuple[str, str]] = {}
        self._samples: dict[str, list[str]] = {}

    def add(
        self,
        name: str,
        value,
        labels: dict | None = None,
        help_text: str = "",
        kind: str = "counter",
    ) -> None:
        if value is None:
            return
        if name not in self._help:
            self._order.append(name)
            self._help[name] = (help_text, kind)
            self._samples[name] = []
        self._samples[name].append(
            f"{name}{_labels(labels or {})} {_number(value)}"
        )

    def render(self) -> str:
        blocks = []
        for name in self._order:
            help_text, kind = self._help[name]
            lines = []
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(self._samples[name])
            blocks.append("\n".join(lines))
        return "\n".join(blocks) + "\n"


def _add_flat(
    exp: _Exposition,
    prefix: str,
    section: dict,
    help_prefix: str,
    labels: dict | None = None,
) -> None:
    """One metric per numeric key of a flat counter dict."""
    for key, value in section.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        exp.add(
            f"{prefix}_{key}",
            value,
            labels=labels,
            help_text=f"{help_prefix}: {key}.",
        )


def render_prometheus(stats: dict) -> str:
    """Render one stats snapshot in Prometheus text exposition format."""
    exp = _Exposition()

    info_labels = {}
    if stats.get("address"):
        info_labels["address"] = stats["address"]
    if stats.get("gateway_mode"):
        info_labels["gateway_mode"] = stats["gateway_mode"]
    exp.add(
        "repro_info",
        1,
        labels=info_labels,
        help_text="Server identity (labels carry the details).",
        kind="gauge",
    )
    exp.add(
        "repro_workers",
        stats.get("workers"),
        help_text="Worker threads in the pool.",
        kind="gauge",
    )
    exp.add(
        "repro_rollout_batch",
        stats.get("rollout_batch"),
        help_text="Configured rollout wave width (0 = plain workers).",
        kind="gauge",
    )
    exp.add(
        "repro_pending_jobs",
        stats.get("pending"),
        help_text="Jobs queued or running in the broker.",
        kind="gauge",
    )

    if isinstance(stats.get("broker"), dict):
        _add_flat(exp, "repro_broker", stats["broker"], "Broker counter")
    if isinstance(stats.get("service"), dict):
        _add_flat(exp, "repro_service", stats["service"], "Service counter")
    if isinstance(stats.get("gateway"), dict):
        _add_flat(exp, "repro_gateway", stats["gateway"], "LLM gateway counter")

    for name, row in (stats.get("stages") or {}).items():
        if not isinstance(row, dict):
            continue
        labels = {"stage": name}
        exp.add(
            "repro_stage_runs_total",
            row.get("runs"),
            labels=labels,
            help_text="Stage executions recorded by the StageClock.",
        )
        exp.add(
            "repro_stage_seconds_total",
            row.get("seconds"),
            labels=labels,
            help_text="Cumulative stage wall-clock seconds.",
        )

    scheduler = stats.get("scheduler")
    if isinstance(scheduler, dict):
        if isinstance(scheduler.get("dedup"), dict):
            _add_flat(
                exp,
                "repro_scheduler_dedup",
                scheduler["dedup"],
                "Rollout score-wave dedup counter",
            )
        if isinstance(scheduler.get("speculation"), dict):
            _add_flat(
                exp,
                "repro_speculation",
                scheduler["speculation"],
                "Speculative-simulation counter",
            )
    if isinstance(stats.get("steal"), dict):
        _add_flat(
            exp,
            "repro_steal",
            stats["steal"],
            "Work-stealing board counter",
        )

    ring = stats.get("ring")
    if isinstance(ring, dict):
        exp.add(
            "repro_ring_members",
            len(ring.get("members") or ()),
            help_text="Servers in the elastic peer ring (including self).",
            kind="gauge",
        )
        for member in ring.get("members") or ():
            exp.add(
                "repro_ring_member",
                1,
                labels={
                    "address": str(member),
                    "self": (
                        "true" if member == ring.get("self") else "false"
                    ),
                },
                help_text="Ring membership (one sample per member).",
                kind="gauge",
            )

    for layer, cache in (stats.get("caches") or {}).items():
        if not isinstance(cache, dict):
            continue
        layer_labels = {"layer": layer}
        for key in (
            "entries",
            "lookups",
            "hits",
            "misses",
            "stores",
            "disk_hits",
            "remote_hits",
            "corrupt",
        ):
            exp.add(
                f"repro_cache_{key}",
                cache.get(key),
                labels=layer_labels,
                help_text=f"Cache fabric counter: {key}.",
                kind="gauge" if key == "entries" else "counter",
            )
        gossip = cache.get("gossip")
        if isinstance(gossip, dict):
            _add_flat(
                exp,
                "repro_cache_gossip",
                gossip,
                "Write-behind gossip queue counter",
                labels=layer_labels,
            )
        for tier in cache.get("tiers") or []:
            if not isinstance(tier, dict):
                continue
            tier_labels = {
                "layer": layer,
                "tier": str(tier.get("kind", "?")),
                "detail": str(tier.get("detail", "")),
            }
            for key, value in tier.items():
                if key in ("kind", "detail"):
                    continue
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    continue
                exp.add(
                    f"repro_cache_tier_{key}",
                    value,
                    labels=tier_labels,
                    help_text=f"Per-tier cache counter: {key}.",
                )

    return exp.render()
