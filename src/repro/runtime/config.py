"""Runtime configuration: how much parallelism, which backend, caching.

Everything is selectable three ways, in priority order: explicit
arguments (CLI flags), environment variables, and defaults.

Environment variables:

- ``REPRO_JOBS``             worker count (default 1 = serial)
- ``REPRO_EXECUTOR``         ``auto`` | ``serial`` | ``thread`` | ``process``
- ``REPRO_SIM_CACHE``        ``1``/``0`` to enable/disable the simulation cache
- ``REPRO_SIM_CACHE_DIR``    directory for the optional on-disk cache tier
- ``REPRO_SOLVE_CACHE``      ``1``/``0`` to enable the solve-cell cache
                             (whole-run memoization; default off)
- ``REPRO_SOLVE_CACHE_DIR``  directory for the on-disk solve-cell tier
- ``REPRO_CACHE_PEERS``      comma-separated ``host:port`` peer solve
                             servers whose caches join both fabrics as
                             remote tiers (default none)
- ``REPRO_CACHE_MAX_ENTRIES``  LRU cap of each in-memory cache tier
                             (default 8192)
- ``REPRO_CACHE_DISK_MAX_BYTES``  size bound of each on-disk cache tier;
                             puts evict least-recently-used entries
                             (by mtime) past it (default 0 = unbounded)
- ``REPRO_CACHE_DISK_TTL``   max age in seconds of on-disk entries;
                             expired entries read as misses and are
                             removed (default 0 = no expiry)

The LLM gateway adds its own ``REPRO_GATEWAY*`` family, documented in
:mod:`repro.llm.gateway.settings`.  Those stay live: an env-derived
config leaves ``gateway`` as None so gateway settings re-resolve from
the environment at each LLM construction (a long-lived process can
flip record -> replay without rebuilding its runtime context); only
explicitly passed :class:`GatewaySettings` are pinned.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover -- annotation-only import
    from repro.llm.gateway.settings import GatewaySettings

_EXECUTOR_KINDS = ("auto", "serial", "thread", "process")


def _env_int(name: str, fallback: int) -> int:
    value = os.environ.get(name)
    if not value:
        return fallback
    try:
        return int(value)
    except ValueError:
        return fallback


def default_jobs() -> int:
    """Worker count when nobody asked: ``REPRO_JOBS``, else every core.

    The explicit-config default stays 1 (serial unless asked), but
    surfaces that *size* a machine -- the ``--jobs`` CLI default and
    the service worker's wave fan-out -- saturate the hardware instead
    of pretending it has one core.
    """
    return _env_int("REPRO_JOBS", os.cpu_count() or 1)


def _env_flag(name: str, fallback: bool) -> bool:
    value = os.environ.get(name)
    if value is None or value == "":
        return fallback
    return value.strip().lower() not in ("0", "false", "no", "off")


def _env_addresses(name: str) -> tuple[str, ...]:
    value = os.environ.get(name) or ""
    return tuple(part.strip() for part in value.split(",") if part.strip())


@dataclass(frozen=True)
class RuntimeConfig:
    """Resolved runtime settings (see module docstring for env vars)."""

    jobs: int = 1
    executor: str = "auto"  # auto | serial | thread | process
    cache: bool = True
    cache_dir: str | None = None
    solve_cache: bool = False
    solve_cache_dir: str | None = None
    cache_peers: tuple[str, ...] = ()
    cache_max_entries: int = 8192
    # None = resolve lazily from the environment at each use, so
    # long-lived processes see env flips (record -> replay) without a
    # context rebuild.  Only an explicit argument pins settings here.
    gateway: "GatewaySettings | None" = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.executor not in _EXECUTOR_KINDS:
            raise ValueError(
                f"bad executor kind {self.executor!r}; "
                f"choose from {', '.join(_EXECUTOR_KINDS)}"
            )
        if self.cache_max_entries < 1:
            raise ValueError("cache_max_entries must be >= 1")

    @staticmethod
    def from_env(
        jobs: int | None = None,
        executor: str | None = None,
        cache: bool | None = None,
        cache_dir: str | None = None,
        solve_cache: bool | None = None,
        solve_cache_dir: str | None = None,
        cache_peers: tuple[str, ...] | list[str] | None = None,
        cache_max_entries: int | None = None,
        gateway: "GatewaySettings | None" = None,
    ) -> "RuntimeConfig":
        """Resolve settings: explicit args beat env vars beat defaults.

        ``gateway`` is deliberately *not* snapshotted from the
        environment here: an env-derived config leaves it None so
        :func:`repro.llm.gateway.settings.resolve_gateway_settings`
        reads the live environment on every LLM construction.  Pass
        explicit settings to pin them.
        """
        return RuntimeConfig(
            jobs=jobs if jobs is not None else _env_int("REPRO_JOBS", 1),
            executor=(
                executor
                if executor is not None
                else os.environ.get("REPRO_EXECUTOR", "auto")
            ),
            cache=(
                cache if cache is not None else _env_flag("REPRO_SIM_CACHE", True)
            ),
            cache_dir=(
                cache_dir
                if cache_dir is not None
                else os.environ.get("REPRO_SIM_CACHE_DIR") or None
            ),
            solve_cache=(
                solve_cache
                if solve_cache is not None
                else _env_flag("REPRO_SOLVE_CACHE", False)
            ),
            solve_cache_dir=(
                solve_cache_dir
                if solve_cache_dir is not None
                else os.environ.get("REPRO_SOLVE_CACHE_DIR") or None
            ),
            cache_peers=(
                tuple(cache_peers)
                if cache_peers is not None
                else _env_addresses("REPRO_CACHE_PEERS")
            ),
            cache_max_entries=(
                cache_max_entries
                if cache_max_entries is not None
                else _env_int("REPRO_CACHE_MAX_ENTRIES", 8192)
            ),
            gateway=gateway,
        )
