"""Runtime configuration: how much parallelism, which backend, caching.

Everything is selectable three ways, in priority order: explicit
arguments (CLI flags), environment variables, and defaults.

Environment variables:

- ``REPRO_JOBS``             worker count (default 1 = serial)
- ``REPRO_EXECUTOR``         ``auto`` | ``serial`` | ``thread`` | ``process``
- ``REPRO_SIM_CACHE``        ``1``/``0`` to enable/disable the simulation cache
- ``REPRO_SIM_CACHE_DIR``    directory for the optional on-disk cache tier
- ``REPRO_SOLVE_CACHE``      ``1``/``0`` to enable the solve-cell cache
                             (whole-run memoization; default off)
- ``REPRO_SOLVE_CACHE_DIR``  directory for the on-disk solve-cell tier
- ``REPRO_CACHE_PEERS``      comma-separated ``host:port`` peer solve
                             servers whose caches join both fabrics as
                             remote tiers (default none)
- ``REPRO_CACHE_MAX_ENTRIES``  LRU cap of each in-memory cache tier
                             (default 8192)
"""

from __future__ import annotations

import os
from dataclasses import dataclass

_EXECUTOR_KINDS = ("auto", "serial", "thread", "process")


def _env_int(name: str, fallback: int) -> int:
    value = os.environ.get(name)
    if not value:
        return fallback
    try:
        return int(value)
    except ValueError:
        return fallback


def _env_flag(name: str, fallback: bool) -> bool:
    value = os.environ.get(name)
    if value is None or value == "":
        return fallback
    return value.strip().lower() not in ("0", "false", "no", "off")


def _env_addresses(name: str) -> tuple[str, ...]:
    value = os.environ.get(name) or ""
    return tuple(part.strip() for part in value.split(",") if part.strip())


@dataclass(frozen=True)
class RuntimeConfig:
    """Resolved runtime settings (see module docstring for env vars)."""

    jobs: int = 1
    executor: str = "auto"  # auto | serial | thread | process
    cache: bool = True
    cache_dir: str | None = None
    solve_cache: bool = False
    solve_cache_dir: str | None = None
    cache_peers: tuple[str, ...] = ()
    cache_max_entries: int = 8192

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.executor not in _EXECUTOR_KINDS:
            raise ValueError(
                f"bad executor kind {self.executor!r}; "
                f"choose from {', '.join(_EXECUTOR_KINDS)}"
            )
        if self.cache_max_entries < 1:
            raise ValueError("cache_max_entries must be >= 1")

    @staticmethod
    def from_env(
        jobs: int | None = None,
        executor: str | None = None,
        cache: bool | None = None,
        cache_dir: str | None = None,
        solve_cache: bool | None = None,
        solve_cache_dir: str | None = None,
        cache_peers: tuple[str, ...] | list[str] | None = None,
        cache_max_entries: int | None = None,
    ) -> "RuntimeConfig":
        """Resolve settings: explicit args beat env vars beat defaults."""
        return RuntimeConfig(
            jobs=jobs if jobs is not None else _env_int("REPRO_JOBS", 1),
            executor=(
                executor
                if executor is not None
                else os.environ.get("REPRO_EXECUTOR", "auto")
            ),
            cache=(
                cache if cache is not None else _env_flag("REPRO_SIM_CACHE", True)
            ),
            cache_dir=(
                cache_dir
                if cache_dir is not None
                else os.environ.get("REPRO_SIM_CACHE_DIR") or None
            ),
            solve_cache=(
                solve_cache
                if solve_cache is not None
                else _env_flag("REPRO_SOLVE_CACHE", False)
            ),
            solve_cache_dir=(
                solve_cache_dir
                if solve_cache_dir is not None
                else os.environ.get("REPRO_SOLVE_CACHE_DIR") or None
            ),
            cache_peers=(
                tuple(cache_peers)
                if cache_peers is not None
                else _env_addresses("REPRO_CACHE_PEERS")
            ),
            cache_max_entries=(
                cache_max_entries
                if cache_max_entries is not None
                else _env_int("REPRO_CACHE_MAX_ENTRIES", 8192)
            ),
        )
