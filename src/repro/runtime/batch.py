"""Batch evaluation: fan the Eq. 7 ``problems x runs`` grid out.

This is the runtime's top-level API: :func:`evaluate_many` takes the
same inputs as the classic serial harness, cuts the grid into
:class:`~repro.runtime.workers.EvalCell` units, runs them on the ambient
(or given) executor, and reassembles a deterministic
:class:`~repro.evaluation.harness.EvalResult` -- cells are keyed by
(problem, run) index, and per-run seeds are fixed as ``seed0 + run``
before dispatch, so worker count and completion order cannot change the
outcome.

Alongside the result it returns a :class:`BatchReport` with wall-clock,
per-cell timings, simulation throughput, and cache hit accounting --
the numbers the ``bench`` CLI subcommand prints.

Two streaming channels observe a batch while it runs:

- ``progress`` receives one line per *problem*, in suite order
  (buffered until every earlier problem completes, so output is
  deterministic);
- ``events`` receives a typed
  :class:`~repro.core.events.CellFinished` per cell in **completion
  order** (live, not buffered) plus a terminal
  :class:`~repro.core.events.BatchFinished` -- the CLI's
  ``--progress`` stream and the hook a service mode would subscribe to.

With ``solve_cache`` enabled, whole cells are memoized by
``hash(config, problem, seed)`` so repeated sweeps re-run near-free.
"""

from __future__ import annotations

import concurrent.futures as cf
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.events import BatchFinished, CellFinished, Event, EventSink, as_sink
from repro.evalsets.problem import Problem, golden_testbench
from repro.evalsets.suites import get_suite
from repro.runtime.cache import (
    CacheStats,
    SimulationCache,
    SolveCellCache,
    simulation_count,
    system_fingerprint,
)
from repro.runtime.context import get_runtime
from repro.runtime.executor import Executor, _picklable
from repro.runtime.workers import CellResult, EvalCell, run_cell


@dataclass
class BatchReport:
    """Execution statistics for one batch evaluation."""

    executor: str
    wall_seconds: float = 0.0
    cells: int = 0
    simulations: int = 0
    cell_seconds: list[float] = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)
    solve_cache: CacheStats = field(default_factory=CacheStats)
    # Resolved executor fan-out (0 = not recorded), and -- when the
    # rollout scheduler speculated -- its accounting snapshot.
    jobs: int = 0
    speculation: dict = field(default_factory=dict)

    @property
    def total_cell_seconds(self) -> float:
        return sum(self.cell_seconds)

    @property
    def sims_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.simulations / self.wall_seconds

    @property
    def cells_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.cells / self.wall_seconds

    def render(self) -> str:
        lines = [
            f"executor        {self.executor}",
        ]
        if self.jobs:
            lines.append(f"jobs            {self.jobs:8d}")
        lines += [
            f"wall clock      {self.wall_seconds:8.2f} s",
            f"grid cells      {self.cells:8d}  "
            f"({self.cells_per_second:.2f} cells/s)",
            f"simulations     {self.simulations:8d}  "
            f"({self.sims_per_second:.1f} sims/s)",
            f"cache lookups   {self.cache.lookups:8d}  "
            f"(hits {self.cache.hits}, misses {self.cache.misses}, "
            f"hit-rate {100.0 * self.cache.hit_rate:.1f}%)",
        ]
        if self.solve_cache.lookups:
            lines.append(
                f"solve cells     {self.solve_cache.lookups:8d}  "
                f"(hits {self.solve_cache.hits}, "
                f"misses {self.solve_cache.misses}, "
                f"hit-rate {100.0 * self.solve_cache.hit_rate:.1f}%)"
            )
        if self.speculation:
            lines.append(
                f"speculation     {self.speculation.get('launched', 0):8d}  "
                f"(used {self.speculation.get('used', 0)}, "
                f"mispredicted {self.speculation.get('mispredicted', 0)}, "
                f"already cached {self.speculation.get('already_cached', 0)})"
            )
        peer_hits = self.cache.remote_hits + self.solve_cache.remote_hits
        if peer_hits:
            lines.append(
                f"peer hits       {peer_hits:8d}  "
                f"(sim {self.cache.remote_hits}, "
                f"solve {self.solve_cache.remote_hits})"
            )
        return "\n".join(lines)


def _assemble_result(
    suite: str,
    resolved_name: str,
    chosen: list[Problem],
    by_problem: dict[int, list],
    report: BatchReport,
):
    """Fold per-(problem, run) rows into the deterministic result.

    Rows need ``.passed``/``.score``/``.seconds``; callers hand them in
    per problem, already in run order.  Shared by the plain grid and the
    rollout path so the two can never diverge on assembly.
    """
    from repro.evaluation.harness import EvalResult, ProblemOutcome

    result = EvalResult(system=resolved_name, suite=suite)
    for problem_index, problem in enumerate(chosen):
        outcome = ProblemOutcome(problem.id, problem.difficulty)
        for row in by_problem.get(problem_index, []):
            outcome.runs += 1
            outcome.passes += int(row.passed)
            outcome.scores.append(row.score)
            report.cell_seconds.append(row.seconds)
        result.outcomes.append(outcome)
    return result


def _fill_report_counters(
    report: BatchReport,
    crossing: bool,
    rows: list,
    live_cache: SimulationCache | None,
    cache_before: CacheStats,
    live_solve: SolveCellCache | None,
    solve_before: CacheStats,
    sims_before: int,
    solve_rows: list[tuple[int, int]] | None = None,
) -> None:
    """Batch cache/simulation totals for one evaluation.

    When the work crossed process boundaries the child-process counters
    never reach this process, so the exact per-row deltas the workers
    reported are summed instead of reading the live caches.
    ``solve_rows`` supplies (hits, misses) pairs for paths whose
    solve-cell lookups also ran in children; None means the solve cache
    was driven entirely from this process and its live delta is exact
    either way.
    """
    if crossing:
        report.cache = CacheStats(
            hits=sum(r.cache_hits for r in rows),
            misses=sum(r.cache_misses for r in rows),
        )
        report.simulations = sum(r.simulations for r in rows)
    else:
        report.cache = (
            live_cache.stats.delta(cache_before)
            if live_cache is not None
            else CacheStats()
        )
        report.simulations = simulation_count() - sims_before
    if crossing and solve_rows is not None:
        report.solve_cache = CacheStats(
            hits=sum(hits for hits, _ in solve_rows),
            misses=sum(misses for _, misses in solve_rows),
        )
    else:
        report.solve_cache = (
            live_solve.stats.delta(solve_before)
            if live_solve is not None
            else CacheStats()
        )


def _progress_flusher(
    chosen: list[Problem],
    runs: int,
    resolved_name: str,
    progress: Callable[[str], None] | None,
    by_problem: dict[int, list],
):
    """Per-problem progress lines in suite order, buffered until every
    earlier problem completes -- the shared deterministic-output rule of
    both grid paths."""
    state = {"next": 0}

    def flush() -> None:
        flushed = state["next"]
        while flushed < len(chosen) and len(by_problem.get(flushed, [])) == runs:
            if progress is not None:
                done = by_problem[flushed]
                passes = sum(1 for r in done if r.passed)
                progress(
                    f"{resolved_name} {chosen[flushed].id}: "
                    f"{passes}/{runs} passed"
                )
            flushed += 1
        state["next"] = flushed

    return flush


def _resolve_cache(
    cache: SimulationCache | bool | None,
) -> SimulationCache | None:
    if isinstance(cache, SimulationCache):
        return cache
    if cache is False:
        return None
    ambient = get_runtime().cache
    if cache is True and ambient is None:
        return SimulationCache()
    return ambient


def _resolve_solve_cache(
    solve_cache: SolveCellCache | bool | None,
) -> SolveCellCache | None:
    if isinstance(solve_cache, SolveCellCache):
        return solve_cache
    if solve_cache is False:
        return None
    ambient = get_runtime().solve_cache
    if solve_cache is True and ambient is None:
        return SolveCellCache()
    return ambient


def evaluate_many(
    system_factory: Callable[[], object],
    suite: str,
    runs: int = 1,
    seed0: int = 0,
    problems: list[Problem] | None = None,
    name: str | None = None,
    executor: Executor | None = None,
    cache: SimulationCache | bool | None = None,
    solve_cache: SolveCellCache | bool | None = None,
    progress: Callable[[str], None] | None = None,
    events: EventSink | Callable[[Event], None] | None = None,
    rollout_batch: int | str = 0,
):
    """Evaluate one system over a suite, fanned across workers.

    Returns ``(EvalResult, BatchReport)``.  Semantics match the serial
    harness exactly: a fresh ``system_factory()`` instance per run, run
    seeds ``seed0 + run``, and per-problem progress lines emitted in
    suite order (buffered until every earlier problem completes, so
    output is deterministic too).

    ``name`` labels the result without constructing a throwaway system
    instance; when omitted, one instance is built just to read ``.name``.
    ``solve_cache`` memoizes whole cells by ``hash(config, problem,
    seed)`` (an instance, ``True``/``False``, or ``None`` to inherit
    the ambient runtime's); factories without a stable configuration
    fingerprint silently skip it.  ``events`` streams typed per-cell
    completions live (completion order, unlike ``progress``).

    ``rollout_batch`` > 0 switches the grid to the rollout scheduler:
    up to that many cells advance together and share coalesced
    candidate-scoring waves (see :mod:`repro.runtime.rollout`).
    ``"auto"`` hands wave sizing to the scheduler's cost-aware planner
    and enables speculative simulation.  Rows stay bit-identical to
    ``rollout_batch=0`` at any worker count, any width, speculation on
    or off.
    """
    from repro.llm.gateway.settings import resolve_gateway_settings

    chosen = problems if problems is not None else get_suite(suite)
    resolved_name = name if name is not None else system_factory().name
    live_cache = _resolve_cache(cache)
    live_solve = _resolve_solve_cache(solve_cache)
    # Resolve the gateway once, here, and pin it on every cell: worker
    # processes must see the exact settings this process resolved, not
    # whatever their own environment happens to say.
    gateway = resolve_gateway_settings()
    if not gateway.enabled:
        gateway = None
    fingerprint = (
        system_fingerprint(system_factory) if live_solve is not None else None
    )
    if fingerprint is None:
        live_solve = None
    pool = executor if executor is not None else get_runtime().executor
    sink = as_sink(events)

    if rollout_batch:  # positive width or "auto" (the scheduler validates)
        return _evaluate_rollout(
            system_factory,
            suite,
            chosen,
            runs,
            seed0,
            resolved_name,
            pool,
            live_cache,
            live_solve,
            fingerprint,
            progress,
            sink,
            rollout_batch,
            gateway=gateway,
        )

    cells: list[EvalCell] = []
    for problem_index, problem in enumerate(chosen):
        golden_tb = golden_testbench(problem)
        for run in range(runs):
            cells.append(
                EvalCell(
                    problem_index=problem_index,
                    run_index=run,
                    factory=system_factory,
                    problem=problem,
                    golden_tb=golden_tb,
                    seed=seed0 + run,
                    cache_enabled=live_cache is not None,
                    cache_dir=(
                        live_cache.directory if live_cache is not None else None
                    ),
                    solve_enabled=live_solve is not None,
                    solve_dir=(
                        live_solve.directory if live_solve is not None else None
                    ),
                    fingerprint=fingerprint,
                    cache_peers=(
                        live_cache.peers
                        if live_cache is not None
                        else (live_solve.peers if live_solve is not None else ())
                    ),
                    gateway=gateway,
                )
            )

    cache_before = (
        live_cache.stats.snapshot() if live_cache is not None else CacheStats()
    )
    solve_before = (
        live_solve.stats.snapshot() if live_solve is not None else CacheStats()
    )
    sims_before = simulation_count()
    started = time.perf_counter()

    # Cells only cross a process boundary when they actually can; an
    # unpicklable factory on a process pool would silently fall back to
    # threads inside the executor, which must then receive the live
    # caches like any other in-process path (not per-process caches).
    crosses_processes = (
        pool.kind == "process" and bool(cells) and _picklable(cells[0])
    )
    if crosses_processes:
        # Self-contained cells; workers build per-process caches
        # (shared on disk when a directory is set).  Picklability was
        # probed once above, so skip the per-call probe.
        submit = lambda cell: pool.submit_unchecked(run_cell, cell)  # noqa: E731
    else:
        submit = lambda cell: pool.submit(  # noqa: E731
            run_cell, cell, live_cache, live_solve
        )

    futures = [submit(cell) for cell in cells]
    by_problem: dict[int, list[CellResult]] = {}
    flush_progress = _progress_flusher(
        chosen, runs, resolved_name, progress, by_problem
    )

    for future in cf.as_completed(futures):
        cell_result = future.result()
        by_problem.setdefault(cell_result.problem_index, []).append(cell_result)
        sink.emit(
            CellFinished(
                problem_id=cell_result.problem_id,
                run_index=cell_result.run_index,
                passed=cell_result.passed,
                score=cell_result.score,
                seconds=cell_result.seconds,
                solve_cached=cell_result.solve_cached,
            )
        )
        flush_progress()

    wall = time.perf_counter() - started
    sink.emit(BatchFinished(cells=len(cells), seconds=wall))

    report = BatchReport(
        executor=pool.describe(), wall_seconds=wall, jobs=pool.workers
    )
    ordered = {
        problem_index: sorted(rows, key=lambda r: r.run_index)
        for problem_index, rows in by_problem.items()
    }
    result = _assemble_result(suite, resolved_name, chosen, ordered, report)
    report.cells = len(cells)
    collected = [r for rows in by_problem.values() for r in rows]
    _fill_report_counters(
        report,
        crosses_processes,
        collected,
        live_cache,
        cache_before,
        live_solve,
        solve_before,
        sims_before,
        solve_rows=[(r.solve_hits, r.solve_misses) for r in collected],
    )
    return result, report


def _evaluate_rollout(
    system_factory,
    suite: str,
    chosen: list[Problem],
    runs: int,
    seed0: int,
    resolved_name: str,
    pool: Executor,
    live_cache: SimulationCache | None,
    live_solve: SolveCellCache | None,
    fingerprint: str | None,
    progress: Callable[[str], None] | None,
    sink,
    rollout_batch: int | str,
    gateway=None,
):
    """The ``rollout_batch > 0`` grid path: gang-scheduled sampling.

    Cells enter the :class:`~repro.runtime.rollout.RolloutScheduler` in
    grid order and complete wave by wave (index order within a wave):
    ``events``/``progress`` stream per wave through the same buffered
    suite-order rule as the plain path, so the output text is identical
    and deterministic.  Rows are bit-identical to the plain path --
    both bottom out in the same stage functions and the same
    pinned-serial per-run execution.
    """
    from repro.runtime.rollout import RolloutRequest, RolloutScheduler

    if runs < 1:
        raise ValueError("runs must be >= 1")
    requests: list[RolloutRequest] = []
    problem_of: dict[int, int] = {}  # request index -> problem index
    for problem_index, problem in enumerate(chosen):
        golden_tb = golden_testbench(problem)
        for run in range(runs):
            problem_of[len(requests)] = problem_index
            requests.append(
                RolloutRequest(
                    index=len(requests),
                    factory=system_factory,
                    problem=problem,
                    golden_tb=golden_tb,
                    seed=seed0 + run,
                    fingerprint=fingerprint,
                )
            )

    cache_before = (
        live_cache.stats.snapshot() if live_cache is not None else CacheStats()
    )
    solve_before = (
        live_solve.stats.snapshot() if live_solve is not None else CacheStats()
    )
    sims_before = simulation_count()
    started = time.perf_counter()

    by_problem: dict[int, list] = {}
    flush_progress = _progress_flusher(
        chosen, runs, resolved_name, progress, by_problem
    )

    def on_result(rollout_result) -> None:
        if rollout_result.error is not None:
            # Fail fast with the original exception (and type), exactly
            # like the plain path's future.result() would mid-grid.
            if rollout_result.exception is not None:
                raise rollout_result.exception
            raise RuntimeError(
                f"rollout cell {rollout_result.problem_id} seed "
                f"{rollout_result.seed} failed: {rollout_result.error}"
            )
        by_problem.setdefault(problem_of[rollout_result.index], []).append(
            rollout_result
        )
        sink.emit(
            CellFinished(
                problem_id=rollout_result.problem_id,
                run_index=rollout_result.seed - seed0,
                passed=rollout_result.passed,
                score=rollout_result.score,
                seconds=rollout_result.seconds,
                solve_cached=rollout_result.solve_cached,
            )
        )
        flush_progress()

    scheduler = RolloutScheduler(
        executor=pool,
        batch=rollout_batch,
        cache=live_cache,
        solve_cache=live_solve,
        gateway=gateway,
        # Scheduler telemetry (WaveScheduled / SpeculationOutcome) is
        # batch-level, so it shares the batch events channel -- never a
        # per-run stream.
        events=sink,
    )
    outcomes = scheduler.run(requests, on_result=on_result)
    wall = time.perf_counter() - started
    sink.emit(BatchFinished(cells=len(requests), seconds=wall))

    report = BatchReport(
        executor=f"{pool.describe()} rollout[{rollout_batch}]",
        wall_seconds=wall,
        jobs=pool.workers,
        speculation=(
            scheduler.speculation.snapshot() if scheduler.speculate else {}
        ),
    )
    result = _assemble_result(suite, resolved_name, chosen, by_problem, report)
    report.cells = len(requests)
    # solve_rows=None: the solve-cell cache is driven entirely from this
    # process by the scheduler, so its live delta is exact even when the
    # simulation waves crossed into worker processes.
    _fill_report_counters(
        report,
        pool.kind == "process",
        outcomes,
        live_cache,
        cache_before,
        live_solve,
        solve_before,
        sims_before,
        solve_rows=None,
    )
    return result, report
