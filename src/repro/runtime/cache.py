"""Content-addressed caches: simulation reports and whole solve cells.

Two memoization layers with the same two-tier (memory LRU + optional
disk) machinery, :class:`ContentCache`:

- :class:`SimulationCache` -- ``run_testbench`` is deterministic, so the
  same (design source, testbench, top module) triple always produces
  the same :class:`TestReport` and the dominant cost of evaluation
  collapses whenever a triple repeats: re-scored debug candidates,
  duplicate sampled sources, T=0 stages recurring across runs.
- :class:`SolveCellCache` -- one level up, the ROADMAP's solve-cell
  cache: a whole engine run is deterministic in (system configuration,
  problem, seed), so ``hash(config, problem, seed)`` addresses the
  final source *plus the typed event stream* of the run.  Repeated
  temperature/ablation sweeps over the same grid become near-free;
  only genuinely new cells pay for LLM calls and simulation.

Keys are SHA-256 over length-prefixed fields, so no concatenation of
fields can collide with a different split of the same bytes.  The
in-memory layer is a plain dict behind a lock; the optional on-disk
layer (pickled values, atomically written) persists across processes
and sessions and is shared by process-pool workers.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.tb.runner import TestReport, run_testbench
from repro.tb.stimulus import Testbench, render_testbench


def _digest(parts: tuple[str, ...]) -> str:
    """SHA-256 over length-prefixed fields (boundary-collision safe)."""
    digest = hashlib.sha256()
    for part in parts:
        data = part.encode()
        digest.update(len(data).to_bytes(8, "little"))
        digest.update(data)
    return digest.hexdigest()


def simulation_key(
    source: str, testbench: Testbench | str, top: str | None = None
) -> str:
    """Content hash of one simulation request.

    Fields are length-prefixed before hashing so the boundary between
    source and testbench is part of the content: the same concatenated
    bytes split differently hash differently.
    """
    tb_text = (
        testbench if isinstance(testbench, str) else render_testbench(testbench)
    )
    return _digest((source, tb_text, top or ""))


class _SimCounter:
    """Process-wide count of simulations actually executed (not cache hits)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def increment(self) -> None:
        with self._lock:
            self._value += 1

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


_SIMULATIONS = _SimCounter()


def simulation_count() -> int:
    """Simulations executed in this process via :func:`cached_run_testbench`."""
    return _SIMULATIONS.value


@dataclass
class CacheStats:
    """Hit/miss counters (disk hits also count as hits)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.stores, self.disk_hits)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            stores=self.stores - earlier.stores,
            disk_hits=self.disk_hits - earlier.disk_hits,
        )


class ContentCache:
    """Two-layer (memory + optional disk) content-addressed cache.

    The memory layer is LRU-bounded by ``max_entries`` (cached values
    carry per-check records or whole event streams, so an unbounded map
    would grow with every unique entry ever stored); evicted entries
    remain on disk when a directory is configured.  Cached values are
    shared objects; callers treat them as read-only, which every
    consumer in the engine already does.

    ``value_type`` guards the disk layer: a pickle that does not
    deserialise to it is treated as a miss, so corrupt or foreign files
    never reach callers.
    """

    value_type: type = object

    def __init__(self, directory: str | None = None, max_entries: int = 8192):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.directory = directory
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def _remember(self, key: str, value: Any) -> None:
        # Callers hold self._lock.
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def get(self, key: str) -> Any | None:
        with self._lock:
            value = self._memory.get(key)
            if value is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                return value
        if self.directory is not None:
            value = self._read_disk(key)
            if value is not None:
                with self._lock:
                    self._remember(key, value)
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                return value
        with self._lock:
            self.stats.misses += 1
        return None

    def peek(self, key: str) -> Any | None:
        """Like :meth:`get` but without touching the hit/miss counters.

        For callers probing whether a value exists before deciding how
        to serve it (e.g. the solve service's cache fast-path); the
        authoritative, counted lookup still happens on the serving
        path.  A disk read is promoted into the memory layer so that
        counted lookup doesn't unpickle the same file twice.
        """
        with self._lock:
            value = self._memory.get(key)
        if value is not None:
            return value
        if self.directory is not None:
            value = self._read_disk(key)
            if value is not None:
                with self._lock:
                    self._remember(key, value)
            return value
        return None

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._remember(key, value)
            self.stats.stores += 1
        if self.directory is not None:
            self._write_disk(key, value)

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()

    def _read_disk(self, key: str) -> Any | None:
        try:
            with open(self._disk_path(key), "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        return value if isinstance(value, self.value_type) else None

    def _write_disk(self, key: str, value: Any) -> None:
        # Atomic write: concurrent workers may race on the same key, and
        # a reader must never observe a half-written pickle.
        try:
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle)
            os.replace(tmp_path, self._disk_path(key))
        except OSError:
            pass  # disk layer is best-effort; memory layer already has it


class SimulationCache(ContentCache):
    """Memoized simulation reports keyed by :func:`simulation_key`."""

    value_type = TestReport


def cached_run_testbench(
    source: str,
    testbench: Testbench,
    top: str | None = None,
    cache: SimulationCache | None = None,
) -> TestReport:
    """Memoized :func:`run_testbench` (drop-in for the no-hook form).

    Uses the ambient runtime's cache unless one is passed explicitly;
    with caching disabled it degrades to a plain simulation call.
    """
    if cache is None:
        from repro.runtime.context import get_runtime

        cache = get_runtime().cache
    if cache is None:
        _SIMULATIONS.increment()
        return run_testbench(source, testbench, top)
    key = simulation_key(source, testbench, top)
    report = cache.get(key)
    if report is None:
        _SIMULATIONS.increment()
        report = run_testbench(source, testbench, top)
        cache.put(key, report)
    return report


# ----------------------------------------------------------------------
# Solve-cell caching: hash(config, problem, seed) -> source + events.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SolveCellRecord:
    """What one cached solve cell stores: the final source plus the
    typed event stream of the run (from which the legacy transcript
    derives)."""

    source: str
    system: str
    events: tuple = ()


class SolveCellCache(ContentCache):
    """Memoized whole-run results keyed by :func:`solve_cell_key`."""

    value_type = SolveCellRecord


def solve_cell_key(fingerprint: str, problem, seed: int) -> str:
    """Content hash of one evaluation cell.

    ``fingerprint`` identifies the system configuration (see
    :func:`system_fingerprint`); the problem enters by *full content*
    (every dataclass field: spec, top, kind, clock, golden, difficulty,
    stimulus policy, ...) rather than by id alone, so any edit to a
    benchmark problem -- including interface or difficulty changes that
    leave the spec text untouched -- invalidates its cells.
    """
    return _digest((fingerprint, _stable_repr(problem), str(int(seed))))


class _Unfingerprintable(Exception):
    """Raised when a factory has no stable content identity."""


def _stable_repr(obj: Any) -> str:
    """Deterministic, address-free repr for fingerprinting.

    Covers what registry factories are actually made of: literals,
    containers, frozen config dataclasses, classes/functions, and
    ``functools.partial`` over them.  Anything else (closures, live
    instances with hidden state) raises, and the caller disables solve
    caching rather than risking a collision.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return repr(obj)
    if isinstance(obj, (tuple, list)):
        inner = ",".join(_stable_repr(item) for item in obj)
        return f"[{inner}]"
    if isinstance(obj, dict):
        inner = ",".join(
            f"{_stable_repr(key)}:{_stable_repr(value)}"
            for key, value in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        )
        return f"{{{inner}}}"
    if isinstance(obj, functools.partial):
        return (
            f"partial({_stable_repr(obj.func)},"
            f"{_stable_repr(list(obj.args))},{_stable_repr(obj.keywords)})"
        )
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        inner = ",".join(
            f"{f.name}={_stable_repr(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{cls.__module__}.{cls.__qualname__}({inner})"
    if callable(obj):
        module = getattr(obj, "__module__", None)
        qualname = getattr(obj, "__qualname__", None)
        if module and qualname and "<locals>" not in qualname:
            return f"{module}.{qualname}"
    raise _Unfingerprintable(f"no stable fingerprint for {type(obj)!r}")


def system_fingerprint(factory: Callable[[], object]) -> str | None:
    """Stable identity of a system factory's *configuration*.

    Returns None when the factory cannot be fingerprinted (e.g. a
    closure over mutable state) -- solve-cell caching is then skipped
    for that system.  Objects may also provide an explicit
    ``cache_fingerprint`` attribute, which wins.
    """
    explicit = getattr(factory, "cache_fingerprint", None)
    if isinstance(explicit, str):
        return explicit
    try:
        return _stable_repr(factory)
    except _Unfingerprintable:
        return None


@dataclass(frozen=True)
class DiskCacheInfo:
    """Size report for one on-disk cache directory."""

    directory: str
    entries: int
    total_bytes: int

    @property
    def megabytes(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)

    def render(self) -> str:
        return (
            f"{self.directory}: {self.entries} entries, "
            f"{self.megabytes:.2f} MiB"
        )


def disk_cache_info(directory: str) -> DiskCacheInfo:
    """Count entries and bytes in one cache directory (missing -> empty)."""
    entries = 0
    total = 0
    try:
        names = os.listdir(directory)
    except OSError:
        names = []
    for name in names:
        if not name.endswith(".pkl"):
            continue
        entries += 1
        try:
            total += os.path.getsize(os.path.join(directory, name))
        except OSError:
            pass
    return DiskCacheInfo(directory=directory, entries=entries, total_bytes=total)
