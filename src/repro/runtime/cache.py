"""Content-addressed simulation cache.

Simulation is deterministic: the same (design source, testbench, top
module) triple always produces the same :class:`TestReport`.  That makes
``run_testbench`` memoizable under a content hash -- the dominant cost
of evaluation (Eq. 7 runs ``problems x runs`` full workflows, each with
many judge scorings) collapses whenever a triple repeats: re-scored
debug candidates, duplicate sampled sources, T=0 stages recurring
across runs, and whole repeated evaluation passes.

Keys are SHA-256 over length-prefixed fields, so no concatenation of
(source, testbench, top) can collide with a different split of the same
bytes.  The in-memory layer is a plain dict behind a lock; an optional
on-disk layer (pickled reports, atomically written) persists across
processes and sessions and is shared by process-pool workers.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.tb.runner import TestReport, run_testbench
from repro.tb.stimulus import Testbench, render_testbench


def simulation_key(
    source: str, testbench: Testbench | str, top: str | None = None
) -> str:
    """Content hash of one simulation request.

    Fields are length-prefixed before hashing so the boundary between
    source and testbench is part of the content: the same concatenated
    bytes split differently hash differently.
    """
    tb_text = (
        testbench if isinstance(testbench, str) else render_testbench(testbench)
    )
    digest = hashlib.sha256()
    for part in (source, tb_text, top or ""):
        data = part.encode()
        digest.update(len(data).to_bytes(8, "little"))
        digest.update(data)
    return digest.hexdigest()


class _SimCounter:
    """Process-wide count of simulations actually executed (not cache hits)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def increment(self) -> None:
        with self._lock:
            self._value += 1

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


_SIMULATIONS = _SimCounter()


def simulation_count() -> int:
    """Simulations executed in this process via :func:`cached_run_testbench`."""
    return _SIMULATIONS.value


@dataclass
class CacheStats:
    """Hit/miss counters (disk hits also count as hits)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.stores, self.disk_hits)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            stores=self.stores - earlier.stores,
            disk_hits=self.disk_hits - earlier.disk_hits,
        )


class SimulationCache:
    """Two-layer (memory + optional disk) report cache.

    The memory layer is LRU-bounded by ``max_entries`` (reports carry
    per-check records, so an unbounded map would grow with every unique
    candidate ever simulated); evicted entries remain on disk when a
    directory is configured.  Cached reports are shared objects; callers
    treat :class:`TestReport` as read-only, which every consumer in the
    engine already does.
    """

    def __init__(self, directory: str | None = None, max_entries: int = 8192):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.directory = directory
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, TestReport]" = OrderedDict()
        self._lock = threading.Lock()
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def _remember(self, key: str, report: TestReport) -> None:
        # Callers hold self._lock.
        self._memory[key] = report
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def get(self, key: str) -> TestReport | None:
        with self._lock:
            report = self._memory.get(key)
            if report is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                return report
        if self.directory is not None:
            report = self._read_disk(key)
            if report is not None:
                with self._lock:
                    self._remember(key, report)
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                return report
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: str, report: TestReport) -> None:
        with self._lock:
            self._remember(key, report)
            self.stats.stores += 1
        if self.directory is not None:
            self._write_disk(key, report)

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()

    def _read_disk(self, key: str) -> TestReport | None:
        try:
            with open(self._disk_path(key), "rb") as handle:
                report = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        return report if isinstance(report, TestReport) else None

    def _write_disk(self, key: str, report: TestReport) -> None:
        # Atomic write: concurrent workers may race on the same key, and
        # a reader must never observe a half-written pickle.
        try:
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(report, handle)
            os.replace(tmp_path, self._disk_path(key))
        except OSError:
            pass  # disk layer is best-effort; memory layer already has it


def cached_run_testbench(
    source: str,
    testbench: Testbench,
    top: str | None = None,
    cache: SimulationCache | None = None,
) -> TestReport:
    """Memoized :func:`run_testbench` (drop-in for the no-hook form).

    Uses the ambient runtime's cache unless one is passed explicitly;
    with caching disabled it degrades to a plain simulation call.
    """
    if cache is None:
        from repro.runtime.context import get_runtime

        cache = get_runtime().cache
    if cache is None:
        _SIMULATIONS.increment()
        return run_testbench(source, testbench, top)
    key = simulation_key(source, testbench, top)
    report = cache.get(key)
    if report is None:
        _SIMULATIONS.increment()
        report = run_testbench(source, testbench, top)
        cache.put(key, report)
    return report
