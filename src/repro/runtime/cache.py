"""Tiered cache fabric: content-addressed caches behind memory/disk/remote tiers.

Both memoization layers of the runtime -- simulation reports and whole
solve cells -- are instances of one :class:`TieredCache`, a stack of
:class:`CacheTier`s consulted in order:

- :class:`MemoryTier` -- an LRU-bounded in-process map (the cap comes
  from ``RuntimeConfig.cache_max_entries`` / ``REPRO_CACHE_MAX_ENTRIES``
  unless given explicitly);
- :class:`DiskTier` -- pickled values, atomically written, shared
  across processes and sessions; a truncated or garbage file counts as
  a miss (tracked by the ``corrupt`` counter), never an exception;
- :class:`RemoteTier` -- a peer solve server reached through the
  versioned service protocol's ``CacheGet``/``CachePut`` frames, making
  another machine's memory+disk tiers part of this cache's fabric.

Reads are read-through with promotion: a hit at a lower tier is copied
into every tier above it, so a record fetched from a peer lands in the
local memory and disk tiers and the next lookup is local.  Writes are
write-through to every tier whose ``writes`` policy allows it -- by
default memory, disk, *and* remote peers, which is how freshly computed
records gossip across machines.  With ``write_behind=True`` the remote
legs of a put detach onto a :class:`GossipQueue` -- a background sender
with a retry backlog -- so gossip never sits on the solve path and a
partitioned peer's puts are delivered when the partition heals.  Tiers
only ever short-circuit pure replay (simulation reports, recorded solve
cells), so any tier stack produces bit-identical results; peers change
*where* work happens, not *what* comes out.

With two or more peers the remote tiers are consulted in consistent-
hash order (:class:`~repro.service.ring.HashRing` over the peer
addresses): the key's owner is probed first, so a ring of servers
behaves like one sharded cache instead of every node asking every
other node in a fixed order.

The concrete caches:

- :class:`SimulationCache` -- ``run_testbench`` is deterministic, so the
  same (design source, testbench, top module) triple always produces
  the same :class:`TestReport`.
- :class:`SolveCellCache` -- one level up: a whole engine run is
  deterministic in (system configuration, problem, seed), so
  ``hash(config, problem, seed)`` addresses the final source *plus the
  typed event stream* of the run.

Keys are SHA-256 over length-prefixed fields, so no concatenation of
fields can collide with a different split of the same bytes.
"""

from __future__ import annotations

import base64
import dataclasses
import functools
import hashlib
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.runtime.config import _env_int
from repro.tb.runner import TestReport, run_testbench
from repro.tb.stimulus import Testbench, render_testbench


def _digest(parts: tuple[str, ...]) -> str:
    """SHA-256 over length-prefixed fields (boundary-collision safe)."""
    digest = hashlib.sha256()
    for part in parts:
        data = part.encode()
        digest.update(len(data).to_bytes(8, "little"))
        digest.update(data)
    return digest.hexdigest()


def simulation_key(
    source: str, testbench: Testbench | str, top: str | None = None
) -> str:
    """Content hash of one simulation request.

    Fields are length-prefixed before hashing so the boundary between
    source and testbench is part of the content: the same concatenated
    bytes split differently hash differently.
    """
    tb_text = (
        testbench if isinstance(testbench, str) else render_testbench(testbench)
    )
    return _digest((source, tb_text, top or ""))


class _SimCounter:
    """Process-wide count of simulations actually executed (not cache hits)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def increment(self) -> None:
        with self._lock:
            self._value += 1

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


_SIMULATIONS = _SimCounter()


def simulation_count() -> int:
    """Simulations executed in this process via :func:`cached_run_testbench`."""
    return _SIMULATIONS.value


@dataclass
class CacheStats:
    """Aggregate hit/miss counters for one tiered cache.

    ``hits`` counts every served lookup regardless of tier;
    ``disk_hits``/``remote_hits`` attribute them to the tier that
    answered.  ``corrupt`` counts disk entries that failed to
    deserialise (each also counted as a miss, never raised).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0
    remote_hits: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            self.hits,
            self.misses,
            self.stores,
            self.disk_hits,
            self.remote_hits,
            self.corrupt,
        )

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            stores=self.stores - earlier.stores,
            disk_hits=self.disk_hits - earlier.disk_hits,
            remote_hits=self.remote_hits - earlier.remote_hits,
            corrupt=self.corrupt - earlier.corrupt,
        )


@dataclass
class TierStats:
    """Per-tier counters (a tier's own view of its traffic).

    ``evictions`` counts entries dropped to respect a size bound (LRU
    order); ``expired`` counts entries dropped because they outlived a
    TTL (each also a miss for the lookup that found them stale).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    errors: int = 0
    evictions: int = 0
    expired: int = 0


# ----------------------------------------------------------------------
# Value transport: the disk and remote tiers share one serialisation.
# ----------------------------------------------------------------------


def encode_value(value: Any) -> str:
    """Pickle + base64 a cache value for the wire (``CachePut`` blobs)."""
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_value(blob: str, value_type: type = object) -> Any | None:
    """Inverse of :func:`encode_value`; None for garbage or foreign types.

    The type guard mirrors the disk tier's: a blob that does not decode
    to ``value_type`` is treated as absent, so a *corrupt* blob can
    never push a wrong-shaped object into a cache.  The guard runs
    after unpickling, so it is shape protection, not a security
    boundary: peers share the disk tier's trust model (unpickling data
    an adversary controls executes their code), and ``--cache-peer``
    rings must only span machines that already trust each other --
    exactly like pointing them at one shared cache directory.
    """
    try:
        value = pickle.loads(base64.b64decode(blob.encode("ascii")))
    except Exception:  # noqa: BLE001 -- any undecodable blob is a miss
        return None
    return value if isinstance(value, value_type) else None


# ----------------------------------------------------------------------
# The tier interface and its three implementations.
# ----------------------------------------------------------------------


class CacheTier:
    """One storage level of a :class:`TieredCache`.

    ``kind`` labels the tier for stats attribution ("memory" | "disk" |
    "remote"); ``writes`` is the write-through policy (a read-only tier
    is skipped by puts and promotions).  ``get`` counts the tier's own
    hit/miss; ``peek`` is the stats-neutral probe.
    """

    kind: str = "tier"
    writes: bool = True

    def __init__(self) -> None:
        self.stats = TierStats()

    def get(self, key: str) -> Any | None:
        raise NotImplementedError

    def peek(self, key: str) -> Any | None:
        raise NotImplementedError

    def put(self, key: str, value: Any) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        """Drop the tier's contents (no-op where not meaningful)."""

    def entry_count(self) -> int | None:
        """Entries held by this tier, or None when unknowable (remote)."""
        return None

    def describe(self) -> str:
        return self.kind

    def report(self) -> dict:
        """One stats row for the CLI / service ``cache`` surfaces."""
        return {
            "kind": self.kind,
            "detail": self.describe(),
            "entries": self.entry_count(),
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "stores": self.stats.stores,
            "corrupt": self.stats.corrupt,
            "errors": self.stats.errors,
            "evictions": self.stats.evictions,
            "expired": self.stats.expired,
        }


class MemoryTier(CacheTier):
    """LRU-bounded in-process map."""

    kind = "memory"

    def __init__(self, max_entries: int = 8192):
        super().__init__()
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entry_count(self) -> int:
        return len(self)

    def describe(self) -> str:
        return f"memory (LRU, cap {self.max_entries})"

    def _lookup(self, key: str, touch: bool, count: bool) -> Any | None:
        with self._lock:
            value = self._entries.get(key)
            if value is not None and touch:
                self._entries.move_to_end(key)
            if count:
                if value is not None:
                    self.stats.hits += 1
                else:
                    self.stats.misses += 1
            return value

    def get(self, key: str) -> Any | None:
        return self._lookup(key, touch=True, count=True)

    def peek(self, key: str) -> Any | None:
        # No LRU touch: probing must not perturb eviction order.
        return self._lookup(key, touch=False, count=False)

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class DiskTier(CacheTier):
    """Pickled values under a directory, shared across processes.

    Every failure mode of a read -- missing file, truncated pickle,
    garbage bytes, a pickle of the wrong type -- is a miss; the
    non-missing ones additionally count as ``corrupt``.  Writes are
    atomic (temp file + rename) and best-effort.

    The tier can be bounded.  ``max_bytes`` caps the directory's total
    size: each put re-scans the directory and evicts
    least-recently-used entries (by mtime; counted gets touch it) until
    the bound holds again.  ``ttl`` expires entries idle longer than
    that many seconds -- the read that finds one stale removes it and
    reports a miss, so a bounded cassette or cache directory ages out
    on its own.  Both default from ``REPRO_CACHE_DISK_MAX_BYTES`` /
    ``REPRO_CACHE_DISK_TTL``; 0 means unbounded / no expiry.  The
    eviction scan is O(entries) per put, which the write-through access
    pattern (one put per cache miss) keeps cheap at this fabric's
    scale.
    """

    kind = "disk"

    def __init__(
        self,
        directory: str,
        value_type: type = object,
        max_bytes: int | None = None,
        ttl: float | None = None,
    ):
        super().__init__()
        self.directory = directory
        self.value_type = value_type
        self.max_bytes = (
            max_bytes
            if max_bytes is not None
            else _env_int("REPRO_CACHE_DISK_MAX_BYTES", 0)
        )
        self.ttl = (
            ttl if ttl is not None else float(_env_int("REPRO_CACHE_DISK_TTL", 0))
        )
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def entry_count(self) -> int:
        return disk_cache_info(self.directory).entries

    def describe(self) -> str:
        bounds = ""
        if self.max_bytes > 0:
            bounds += f", cap {self.max_bytes} B"
        if self.ttl > 0:
            bounds += f", ttl {self.ttl:g} s"
        return f"disk ({self.directory}{bounds})"

    def _read(self, key: str, count: bool) -> Any | None:
        path = self._path(key)
        try:
            stamp = os.stat(path)
        except OSError:
            if count:
                self.stats.misses += 1
            return None
        if self.ttl > 0 and time.time() - stamp.st_mtime > self.ttl:
            self.stats.expired += 1
            if count:
                self.stats.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except Exception:  # noqa: BLE001 -- any unreadable entry is a miss
            value = None
        if value is None or not isinstance(value, self.value_type):
            # The file exists but does not hold a usable value: corrupt.
            self.stats.corrupt += 1
            if count:
                self.stats.misses += 1
            return None
        if count:
            self.stats.hits += 1
            # Counted hits refresh recency (and TTL idle age); peeks
            # stay neutral, like the memory tier's LRU order.
            try:
                os.utime(path, None)
            except OSError:
                pass
        return value

    def get(self, key: str) -> Any | None:
        return self._read(key, count=True)

    def peek(self, key: str) -> Any | None:
        return self._read(key, count=False)

    def _evict(self, keep: str) -> None:
        """Drop LRU entries until the directory fits ``max_bytes``.

        The freshly written entry (``keep``) is never a victim: a bound
        smaller than one entry must not turn every put into a no-op.
        """
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        entries = []
        total = 0
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.directory, name)
            try:
                stamp = os.stat(path)
            except OSError:
                continue
            entries.append((stamp.st_mtime, stamp.st_size, path))
            total += stamp.st_size
        entries.sort()
        for _mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            self.stats.evictions += 1

    def put(self, key: str, value: Any) -> None:
        # Atomic write: concurrent workers may race on the same key, and
        # a reader must never observe a half-written pickle.
        try:
            fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle)
            os.replace(tmp_path, self._path(key))
            self.stats.stores += 1
        except OSError:
            self.stats.errors += 1  # best-effort; upper tiers still hold it
            return
        if self.max_bytes > 0:
            self._evict(keep=self._path(key))

    def clear(self) -> None:
        clear_disk_cache(self.directory)


class RemoteTier(CacheTier):
    """A peer solve server's caches, reached over the service protocol.

    Lookups become ``CacheGet`` frames and stores ``CachePut`` frames,
    answered by the peer from its *local* tiers only (so mutually
    peered servers can never ping-pong a record between themselves).
    The tier is strictly best-effort: any connection or protocol
    failure counts as a miss, and after ``max_failures`` consecutive
    failures the peer is marked down and skipped -- a dead peer must
    not stall every lookup.  A down peer is probed again once per
    ``down_cooldown`` seconds, so a restarted or re-joined ring member
    resumes serving without anyone rebuilding tier stacks.

    With a :class:`GossipQueue` attached (``attach_queue``), ``put``
    becomes write-behind: the entry is enqueued and delivered by the
    queue's sender thread, retried after transient failures, so gossip
    never blocks the caller's solve path.
    """

    kind = "remote"

    def __init__(
        self,
        address: str,
        layer: str = "generic",
        value_type: type = object,
        timeout: float = 10.0,
        connect_timeout: float = 3.0,
        writes: bool = True,
        max_failures: int = 3,
        down_cooldown: float = 5.0,
    ):
        super().__init__()
        self.address = address
        self.layer = layer
        self.value_type = value_type
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.writes = writes
        self.max_failures = max_failures
        self.down_cooldown = down_cooldown
        self._down_until = 0.0
        self._queue: "GossipQueue | None" = None
        # One connection per calling thread: frames are strict
        # request/reply on a socket, so sharing one connection would
        # serialize every thread's cache traffic behind a single
        # in-flight network round-trip.  The lock guards only the
        # shared counters and the connection registry.
        self._local = threading.local()
        self._clients: list = []
        self._failures = 0
        self._lock = threading.Lock()
        self.closed = False

    def describe(self) -> str:
        state = " [down]" if self._down() else ""
        return f"remote ({self.address}, layer {self.layer}){state}"

    def attach_queue(self, queue: "GossipQueue | None") -> None:
        """Route this tier's puts through a write-behind gossip queue."""
        self._queue = queue

    def _down(self) -> bool:
        with self._lock:
            if self._failures < self.max_failures:
                return False
            # Down, but allow one probe per cooldown window: a peer that
            # rejoined the ring must be rediscovered without a restart.
            return time.monotonic() < self._down_until

    def _connect(self):
        from repro.service.client import ServiceClient

        client = getattr(self._local, "client", None)
        if client is None:
            client = ServiceClient(
                self.address,
                timeout=self.timeout,
                connect_timeout=self.connect_timeout,
            )
            self._local.client = client
            with self._lock:
                self._clients.append(client)
        return client

    def _drop_connection(self) -> None:
        client = getattr(self._local, "client", None)
        if client is None:
            return
        self._local.client = None
        with self._lock:
            if client in self._clients:
                self._clients.remove(client)
        client.close()

    def _call(self, op: Callable[[Any], Any]) -> Any | None:
        """Run one request/reply against the peer (this thread's socket).

        Returns None on any failure (counted); a success resets the
        consecutive-failure count so a recovered peer resumes serving.
        """
        if self._down():
            return None
        try:
            result = op(self._connect())
        except Exception:  # noqa: BLE001 -- peers are best-effort
            with self._lock:
                self.stats.errors += 1
                self._failures += 1
                if self._failures >= self.max_failures:
                    self._down_until = time.monotonic() + self.down_cooldown
            self._drop_connection()
            return None
        with self._lock:
            self._failures = 0
        return result

    def _fetch(self, key: str, count: bool) -> Any | None:
        blob = self._call(lambda client: client.cache_get(self.layer, key))
        value = (
            decode_value(blob, self.value_type) if blob is not None else None
        )
        if count:
            with self._lock:
                if value is not None:
                    self.stats.hits += 1
                else:
                    self.stats.misses += 1
        return value

    def get(self, key: str) -> Any | None:
        return self._fetch(key, count=True)

    def peek(self, key: str) -> Any | None:
        # Unlike the in-process tiers, a remote peek is counted at the
        # tier level: it is a real network round-trip, and the rollout
        # scheduler attributes cross-machine dedup from these counters.
        # The *aggregate* CacheStats stay peek-neutral either way.
        return self._fetch(key, count=True)

    def put(self, key: str, value: Any) -> None:
        if self._queue is not None:
            self._queue.enqueue(self, key, value)
            return
        self._put_now(key, value)

    def _put_now(self, key: str, value: Any) -> bool:
        """One synchronous delivery attempt.

        Returns False only for *transport* failures (peer unreachable,
        connection died) -- the retryable case.  A peer that answered
        and refused the blob, or a value that cannot be shipped at all,
        returns True: retrying those can never succeed.
        """
        from repro.service.protocol import MAX_FRAME_BYTES

        try:
            blob = encode_value(value)
        except Exception:  # noqa: BLE001 -- unpicklable: nothing to ship
            with self._lock:
                self.stats.errors += 1
            return True
        if len(blob) > MAX_FRAME_BYTES - 4096:
            # Past the frame ceiling: skip quietly.  An unsendable value
            # says nothing about the peer's health, so it must never
            # count toward the consecutive-failure down-marking.
            with self._lock:
                self.stats.errors += 1
            return True
        stored = self._call(
            lambda client: client.cache_put(self.layer, key, blob)
        )
        if stored is None:
            return False  # transport failure: the gossip queue retries
        if stored:
            with self._lock:
                self.stats.stores += 1
        return True

    def close(self) -> None:
        self.closed = True
        with self._lock:
            clients, self._clients = self._clients, []
        for client in clients:
            client.close()


class GossipQueue:
    """Write-behind delivery of cache gossip to remote tiers.

    ``enqueue`` is what a :class:`RemoteTier` put becomes when the tier
    has a queue attached: O(1), never blocks on the network, so
    ``CachePut`` never sits on the solve path.  A single daemon sender
    drains the backlog in FIFO order; an entry whose delivery fails at
    the transport level goes back to the *end* of the backlog and is
    retried after ``retry_interval`` seconds -- which is exactly how a
    backlog accumulated during a partition drains once the partition
    heals (the tier's own down-cooldown gates the actual reconnect
    probes).  The backlog is bounded: at ``maxlen`` the oldest entry is
    dropped (counted), because gossip is an optimisation, never a
    correctness dependency -- a dropped put degrades to the peer
    recomputing or fetching on demand.
    """

    def __init__(self, maxlen: int = 4096, retry_interval: float = 0.5):
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.maxlen = maxlen
        self.retry_interval = retry_interval
        self._entries: deque = deque()
        self._state = threading.Condition()
        self._closed = False
        self._inflight = 0
        self._thread: threading.Thread | None = None
        # Counters (under _state): queue lifetime totals.
        self.enqueued = 0
        self.delivered = 0
        self.retried = 0
        self.dropped = 0

    def __len__(self) -> int:
        with self._state:
            return len(self._entries) + self._inflight

    def enqueue(self, tier: "RemoteTier", key: str, value: Any) -> None:
        with self._state:
            if self._closed:
                self.dropped += 1
                return
            while len(self._entries) >= self.maxlen:
                self._entries.popleft()
                self.dropped += 1
            self._entries.append((tier, key, value, 0.0))
            self.enqueued += 1
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._drain, name="repro-gossip", daemon=True
                )
                self._thread.start()
            self._state.notify_all()

    def _next_entry(self):
        """Pop the first due entry, waiting while the backlog is all
        deferred retries; None once closed and empty."""
        with self._state:
            while True:
                if self._entries:
                    tier, key, value, not_before = self._entries[0]
                    delay = not_before - time.monotonic()
                    if delay <= 0:
                        self._entries.popleft()
                        self._inflight += 1
                        return tier, key, value
                    if self._closed:
                        # Closing drops deferred retries: they are
                        # waiting on a dead peer by definition.
                        self.dropped += len(self._entries)
                        self._entries.clear()
                        return None
                    self._state.wait(timeout=delay)
                    continue
                if self._closed:
                    return None
                self._state.wait()

    def _drain(self) -> None:
        while True:
            entry = self._next_entry()
            if entry is None:
                return
            tier, key, value = entry
            try:
                # A closed tier (departed ring member) is terminal: its
                # entries must not cycle through transport retries.
                ok = True if tier.closed else tier._put_now(key, value)
            except Exception:  # noqa: BLE001 -- never kill the sender
                ok = True
            with self._state:
                self._inflight -= 1
                if ok:
                    self.delivered += 1
                elif self._closed:
                    self.dropped += 1
                else:
                    self.retried += 1
                    while len(self._entries) >= self.maxlen:
                        self._entries.popleft()
                        self.dropped += 1
                    self._entries.append(
                        (
                            tier,
                            key,
                            value,
                            time.monotonic() + self.retry_interval,
                        )
                    )
                self._state.notify_all()

    def discard_tier(self, tier: "RemoteTier") -> int:
        """Drop every queued entry bound for ``tier`` (peer departed).

        Without this, gossip for a permanently removed ring member
        would cycle through transport-failure retries until pushed out
        by backlog pressure.  Returns how many entries were dropped.
        """
        with self._state:
            kept = deque(
                entry for entry in self._entries if entry[0] is not tier
            )
            discarded = len(self._entries) - len(kept)
            self._entries = kept
            self.dropped += discarded
            self._state.notify_all()
            return discarded

    def flush(self, timeout: float | None = None) -> bool:
        """Block until the backlog is empty (delivered or dropped).

        Returns False if ``timeout`` elapsed with entries still
        pending -- e.g. retries still waiting on a partitioned peer.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._state:
            while self._entries or self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._state.notify_all()
                self._state.wait(timeout=remaining)
            return True

    def snapshot(self) -> dict:
        with self._state:
            return {
                "backlog": len(self._entries) + self._inflight,
                "enqueued": self.enqueued,
                "delivered": self.delivered,
                "retried": self.retried,
                "dropped": self.dropped,
            }

    def close(self, drain_timeout: float = 2.0) -> None:
        """Stop the sender: brief best-effort drain, then drop the rest."""
        self.flush(timeout=drain_timeout)
        with self._state:
            self._closed = True
            self._state.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=drain_timeout)


# ----------------------------------------------------------------------
# The fabric: tiers composed behind the classic ContentCache surface.
# ----------------------------------------------------------------------


class TieredCache:
    """Content-addressed cache over an ordered stack of tiers.

    The default stack is memory -> disk (when ``directory`` is set) ->
    one remote tier per ``peers`` address; pass ``tiers`` to compose an
    explicit stack instead.  Reads are read-through with promotion
    (a hit is copied into every tier above the one that answered);
    writes go to every tier whose ``writes`` policy allows.  Cached
    values are shared objects; callers treat them as read-only, which
    every consumer in the engine already does.

    ``value_type`` guards the non-memory tiers: a disk pickle or remote
    blob that does not deserialise to it is a miss, so corrupt files or
    foreign peers never reach callers.

    ``write_behind=True`` attaches one :class:`GossipQueue` to every
    remote tier, detaching peer puts from the caller (call
    :meth:`flush_gossip` to wait for the backlog).  The default stays
    synchronous: a put that returns is already visible on the peer,
    which small scripts and tests rely on.
    """

    value_type: type = object
    # Wire routing tag: which server-side cache a RemoteTier's frames
    # address ("sim" | "solve" for the two concrete caches).
    layer: str = "generic"

    def __init__(
        self,
        directory: str | None = None,
        max_entries: int | None = None,
        peers: tuple[str, ...] | list[str] | None = None,
        tiers: list[CacheTier] | None = None,
        write_behind: bool = False,
    ):
        if max_entries is None:
            max_entries = _env_int("REPRO_CACHE_MAX_ENTRIES", 8192)
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._gossip: GossipQueue | None = None
        self._write_behind = write_behind
        if tiers is not None:
            self._tiers = list(tiers)
        else:
            self._tiers = [MemoryTier(max_entries)]
            if directory is not None:
                self._tiers.append(DiskTier(directory, self.value_type))
            for peer in tuple(peers or ()):
                self._tiers.append(self._remote_tier(peer))
        if write_behind:
            for tier in self._tiers:
                if isinstance(tier, RemoteTier):
                    tier.attach_queue(self._gossip_queue())
        self._rebuild_ring()

    def _remote_tier(self, address: str) -> "RemoteTier":
        tier = RemoteTier(
            address, layer=self.layer, value_type=self.value_type
        )
        if self._write_behind:
            tier.attach_queue(self._gossip_queue())
        return tier

    def _gossip_queue(self) -> GossipQueue:
        if self._gossip is None:
            self._gossip = GossipQueue()
        return self._gossip

    def _rebuild_ring(self) -> None:
        """Refresh the consistent-hash view of the remote tiers.

        With fewer than two peers the ring is None and reads walk the
        declared tier order exactly as before; with a real ring, reads
        probe the key's owner first (see :meth:`_walk`).
        """
        remotes = {
            tier.address: tier
            for tier in self._tiers
            if isinstance(tier, RemoteTier)
        }
        if len(remotes) < 2:
            self._ring = None
            self._remote_by_address = remotes
            return
        from repro.service.ring import HashRing

        self._ring = HashRing(remotes)
        self._remote_by_address = remotes

    # -- classic surface ------------------------------------------------

    def __len__(self) -> int:
        return sum(
            tier.entry_count() or 0
            for tier in self._tiers
            if tier.kind == "memory"
        )

    @property
    def tiers(self) -> tuple[CacheTier, ...]:
        return tuple(self._tiers)

    @property
    def directory(self) -> str | None:
        for tier in self._tiers:
            if isinstance(tier, DiskTier):
                return tier.directory
        return None

    @property
    def peers(self) -> tuple[str, ...]:
        return tuple(
            tier.address
            for tier in self._tiers
            if isinstance(tier, RemoteTier)
        )

    def _local_tiers(self) -> list[CacheTier]:
        return [t for t in self._tiers if t.kind != "remote"]

    def _absorb_corruption(self, tier: CacheTier, before: int) -> None:
        corrupt = tier.stats.corrupt - before
        if corrupt:
            with self._lock:
                self.stats.corrupt += corrupt

    def _attribute_hit(self, tier: CacheTier) -> None:
        with self._lock:
            self.stats.hits += 1
            if tier.kind == "disk":
                self.stats.disk_hits += 1
            elif tier.kind == "remote":
                self.stats.remote_hits += 1

    def _promote(self, key: str, value: Any, upto: int) -> None:
        # Copy a lower-tier hit into every writable tier above it, so
        # the next lookup is answered as locally as possible.
        for tier in self._tiers[:upto]:
            if tier.writes:
                tier.put(key, value)

    def _read_order(self, key: str, remote: bool) -> list[tuple[int, CacheTier]]:
        """Tier consultation order for one lookup.

        Local tiers keep their declared order.  Remote tiers follow the
        consistent-hash preference of ``key`` when a ring exists (owner
        first, then its failover successors), so a multi-peer fabric
        reads like a sharded cache; promotion indices always refer to
        the *declared* stack, keeping hits copied into the right local
        tiers regardless of probe order.
        """
        ordered = [
            (index, tier)
            for index, tier in enumerate(self._tiers)
            if tier.kind != "remote"
        ]
        if not remote:
            return ordered
        ring = self._ring
        if ring is None:
            return [(index, tier) for index, tier in enumerate(self._tiers)]
        indices = {
            tier.address: index
            for index, tier in enumerate(self._tiers)
            if isinstance(tier, RemoteTier)
        }
        for address in ring.preference(key):
            tier = self._remote_by_address.get(address)
            if tier is not None:
                ordered.append((indices[address], tier))
        return ordered

    def _walk(self, key: str, counted: bool, remote: bool = True) -> Any | None:
        for index, tier in self._read_order(key, remote):
            corrupt_before = tier.stats.corrupt
            value = tier.get(key) if counted else tier.peek(key)
            self._absorb_corruption(tier, corrupt_before)
            if value is None:
                continue
            if counted:
                self._attribute_hit(tier)
            self._promote(key, value, index)
            return value
        if counted:
            with self._lock:
                self.stats.misses += 1
        return None

    def get(self, key: str) -> Any | None:
        return self._walk(key, counted=True)

    def peek(self, key: str) -> Any | None:
        """Like :meth:`get` but without touching the hit/miss counters.

        For callers probing whether a value exists before deciding how
        to serve it (e.g. the solve service's cache fast-path); the
        authoritative, counted lookup still happens on the serving
        path.  Lower-tier hits are promoted exactly as a counted get
        would, so that lookup doesn't redo the disk or network read.
        """
        return self._walk(key, counted=False)

    def peek_local(self, key: str) -> Any | None:
        """Stats-neutral probe that never leaves this machine.

        What the solve server uses to answer a peer's ``CacheGet``:
        consulting its *own* remote tiers there would let two mutually
        peered servers chase a missing key around the ring forever.
        """
        return self._walk(key, counted=False, remote=False)

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self.stats.stores += 1
        for tier in self._tiers:
            if tier.writes:
                tier.put(key, value)

    def put_local(self, key: str, value: Any) -> None:
        """Store without gossiping to peers (the ``CachePut`` handler)."""
        with self._lock:
            self.stats.stores += 1
        for tier in self._local_tiers():
            if tier.writes:
                tier.put(key, value)

    def set_peers(self, addresses) -> bool:
        """Reconcile the remote tiers against a new peer address set.

        The elastic ring's churn hook: tiers for departed peers are
        closed and dropped, tiers for new peers appended, surviving
        tiers (and their counters and connections) kept.  Returns
        whether anything changed.  Thread-safe with respect to
        concurrent lookups in the usual Python sense: readers iterate a
        snapshot list, and a lookup racing a departed tier degrades to
        one best-effort miss.
        """
        wanted = tuple(dict.fromkeys(addresses))
        current = self.peers
        if tuple(sorted(wanted)) == tuple(sorted(current)):
            return False
        keep: list[CacheTier] = []
        dropped: list[RemoteTier] = []
        for tier in self._tiers:
            if isinstance(tier, RemoteTier) and tier.address not in wanted:
                dropped.append(tier)
            else:
                keep.append(tier)
        existing = {
            tier.address for tier in keep if isinstance(tier, RemoteTier)
        }
        for address in wanted:
            if address not in existing:
                keep.append(self._remote_tier(address))
        self._tiers = keep
        self._rebuild_ring()
        for tier in dropped:
            if self._gossip is not None:
                self._gossip.discard_tier(tier)
            tier.close()
        return True

    def clear(self) -> None:
        """Drop the in-memory tier(s); disk and peers keep their copies."""
        for tier in self._tiers:
            if tier.kind == "memory":
                tier.clear()

    def flush_gossip(self, timeout: float | None = None) -> bool:
        """Wait for the write-behind backlog (True when it drained)."""
        if self._gossip is None:
            return True
        return self._gossip.flush(timeout=timeout)

    def gossip_report(self) -> dict | None:
        """The write-behind queue's counters, or None when synchronous."""
        if self._gossip is None:
            return None
        return self._gossip.snapshot()

    def tier_report(self) -> list[dict]:
        """Per-tier stats rows (the ``cache`` CLI / service surfaces)."""
        return [tier.report() for tier in self._tiers]

    def close(self) -> None:
        if self._gossip is not None:
            self._gossip.close()
        for tier in self._tiers:
            if isinstance(tier, RemoteTier):
                tier.close()


# Back-compat alias: PR 2 named the generic base ContentCache.
ContentCache = TieredCache


class SimulationCache(TieredCache):
    """Memoized simulation reports keyed by :func:`simulation_key`."""

    value_type = TestReport
    layer = "sim"


def cached_run_testbench(
    source: str,
    testbench: Testbench,
    top: str | None = None,
    cache: SimulationCache | None = None,
) -> TestReport:
    """Memoized :func:`run_testbench` (drop-in for the no-hook form).

    Uses the ambient runtime's cache unless one is passed explicitly;
    with caching disabled it degrades to a plain simulation call.
    """
    if cache is None:
        from repro.runtime.context import get_runtime

        cache = get_runtime().cache
    if cache is None:
        _SIMULATIONS.increment()
        return run_testbench(source, testbench, top)
    key = simulation_key(source, testbench, top)
    report = cache.get(key)
    if report is None:
        _SIMULATIONS.increment()
        report = run_testbench(source, testbench, top)
        cache.put(key, report)
    return report


# ----------------------------------------------------------------------
# Solve-cell caching: hash(config, problem, seed) -> source + events.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SolveCellRecord:
    """What one cached solve cell stores: the final source plus the
    typed event stream of the run (from which the legacy transcript
    derives)."""

    source: str
    system: str
    events: tuple = ()


class SolveCellCache(TieredCache):
    """Memoized whole-run results keyed by :func:`solve_cell_key`."""

    value_type = SolveCellRecord
    layer = "solve"


def solve_cell_key(fingerprint: str, problem, seed: int) -> str:
    """Content hash of one evaluation cell.

    ``fingerprint`` identifies the system configuration (see
    :func:`system_fingerprint`); the problem enters by *full content*
    (every dataclass field: spec, top, kind, clock, golden, difficulty,
    stimulus policy, ...) rather than by id alone, so any edit to a
    benchmark problem -- including interface or difficulty changes that
    leave the spec text untouched -- invalidates its cells.
    """
    return _digest((fingerprint, _stable_repr(problem), str(int(seed))))


class _Unfingerprintable(Exception):
    """Raised when a factory has no stable content identity."""


def _stable_repr(obj: Any) -> str:
    """Deterministic, address-free repr for fingerprinting.

    Covers what registry factories are actually made of: literals,
    containers, frozen config dataclasses, classes/functions, and
    ``functools.partial`` over them.  Anything else (closures, live
    instances with hidden state) raises, and the caller disables solve
    caching rather than risking a collision.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return repr(obj)
    if isinstance(obj, (tuple, list)):
        inner = ",".join(_stable_repr(item) for item in obj)
        return f"[{inner}]"
    if isinstance(obj, dict):
        inner = ",".join(
            f"{_stable_repr(key)}:{_stable_repr(value)}"
            for key, value in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        )
        return f"{{{inner}}}"
    if isinstance(obj, functools.partial):
        return (
            f"partial({_stable_repr(obj.func)},"
            f"{_stable_repr(list(obj.args))},{_stable_repr(obj.keywords)})"
        )
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        inner = ",".join(
            f"{f.name}={_stable_repr(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{cls.__module__}.{cls.__qualname__}({inner})"
    if callable(obj):
        module = getattr(obj, "__module__", None)
        qualname = getattr(obj, "__qualname__", None)
        if module and qualname and "<locals>" not in qualname:
            return f"{module}.{qualname}"
    raise _Unfingerprintable(f"no stable fingerprint for {type(obj)!r}")


def system_fingerprint(factory: Callable[[], object]) -> str | None:
    """Stable identity of a system factory's *configuration*.

    Returns None when the factory cannot be fingerprinted (e.g. a
    closure over mutable state) -- solve-cell caching is then skipped
    for that system.  Objects may also provide an explicit
    ``cache_fingerprint`` attribute, which wins.

    When the LLM gateway is active, its fingerprint fragment (backend
    chain, per-role routing -- *not* the cassette mode, so record and
    replay share cells) is folded in: the same system over a different
    routing is a different computation and must address different
    solve cells.  With the gateway off, the base fingerprint is
    returned unchanged, so existing caches stay valid.
    """
    explicit = getattr(factory, "cache_fingerprint", None)
    if isinstance(explicit, str):
        base = explicit
    else:
        try:
            base = _stable_repr(factory)
        except _Unfingerprintable:
            return None
    from repro.llm.gateway.settings import active_gateway_fingerprint

    extra = active_gateway_fingerprint()
    if extra is None:
        return base
    return _digest((base, extra))


@dataclass(frozen=True)
class DiskCacheInfo:
    """Size report for one on-disk cache directory."""

    directory: str
    entries: int
    total_bytes: int

    @property
    def megabytes(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)

    def render(self) -> str:
        return (
            f"{self.directory}: {self.entries} entries, "
            f"{self.megabytes:.2f} MiB"
        )


def disk_cache_info(directory: str) -> DiskCacheInfo:
    """Count entries and bytes in one cache directory (missing -> empty)."""
    entries = 0
    total = 0
    try:
        names = os.listdir(directory)
    except OSError:
        names = []
    for name in names:
        if not name.endswith(".pkl"):
            continue
        entries += 1
        try:
            total += os.path.getsize(os.path.join(directory, name))
        except OSError:
            pass
    return DiskCacheInfo(directory=directory, entries=entries, total_bytes=total)


def clear_disk_cache(directory: str) -> DiskCacheInfo:
    """Delete every cache entry under ``directory``; returns what was
    removed (missing directory -> empty report, never an error)."""
    info = disk_cache_info(directory)
    try:
        names = os.listdir(directory)
    except OSError:
        names = []
    for name in names:
        if not (name.endswith(".pkl") or name.endswith(".tmp")):
            continue
        try:
            os.remove(os.path.join(directory, name))
        except OSError:
            pass
    return info
