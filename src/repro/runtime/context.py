"""Ambient runtime context: which executor and cache the engine uses.

The engine's hot paths (candidate scoring in Step 4, trial scoring in
Step 5, judge scorings everywhere) reach their executor and cache
through :func:`get_runtime` rather than threading them through every
call signature.  Resolution order:

1. a thread-local override (pushed by :func:`runtime_session`, or by a
   batch worker pinning itself to serial execution);
2. the process-global context (set by :func:`configure`, lazily built
   from :class:`RuntimeConfig` env vars on first use).

Thread-local overrides are what keep nested parallelism sane: a batch
worker thread runs its whole evaluation cell under a serial inner
context, so ``--jobs N`` parallelises the problems x runs grid without
worker threads spawning pools of their own.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.runtime.cache import SimulationCache, SolveCellCache
from repro.runtime.config import RuntimeConfig
from repro.runtime.executor import Executor, SerialExecutor, create_executor

if TYPE_CHECKING:  # pragma: no cover -- annotation-only import
    from repro.llm.gateway.settings import GatewaySettings


@dataclass
class RuntimeContext:
    """One resolved runtime: an executor plus caches (None = disabled).

    ``owns_executor`` records whether this context created its executor
    (and is therefore responsible for shutting it down) or was handed a
    caller-managed one.  ``solve_cache`` memoizes whole evaluation
    cells (off by default; see ``REPRO_SOLVE_CACHE``).  ``gateway``
    carries the LLM gateway settings new clients resolve ambiently
    (None = fall back to the environment; see
    :func:`repro.llm.gateway.settings.resolve_gateway_settings`).
    """

    executor: Executor
    cache: SimulationCache | None
    owns_executor: bool = False
    solve_cache: SolveCellCache | None = None
    gateway: "GatewaySettings | None" = None

    def describe(self) -> str:
        cache = "cache=off" if self.cache is None else "cache=on"
        solve = "" if self.solve_cache is None else " solve-cache=on"
        gateway = (
            ""
            if self.gateway is None or not self.gateway.enabled
            else f" gateway={self.gateway.mode}"
        )
        return f"{self.executor.describe()} {cache}{solve}{gateway}"


_GLOBAL: RuntimeContext | None = None
_GLOBAL_LOCK = threading.Lock()
_LOCAL = threading.local()


def _build(config: RuntimeConfig, executor: Executor | None = None) -> RuntimeContext:
    return RuntimeContext(
        executor=(
            executor
            if executor is not None
            else create_executor(config.jobs, config.executor)
        ),
        cache=(
            SimulationCache(
                config.cache_dir,
                max_entries=config.cache_max_entries,
                peers=config.cache_peers,
            )
            if config.cache
            else None
        ),
        owns_executor=executor is None,
        solve_cache=(
            SolveCellCache(
                config.solve_cache_dir,
                max_entries=config.cache_max_entries,
                peers=config.cache_peers,
            )
            if config.solve_cache
            else None
        ),
        gateway=config.gateway,
    )


def get_runtime() -> RuntimeContext:
    """The active context: thread-local override, else the global one."""
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        return stack[-1]
    global _GLOBAL
    if _GLOBAL is None:
        with _GLOBAL_LOCK:
            if _GLOBAL is None:
                _GLOBAL = _build(RuntimeConfig.from_env())
    return _GLOBAL


def configure(
    jobs: int | None = None,
    executor: Executor | str | None = None,
    cache: bool | None = None,
    cache_dir: str | None = None,
    solve_cache: bool | None = None,
    solve_cache_dir: str | None = None,
    cache_peers: tuple[str, ...] | list[str] | None = None,
    cache_max_entries: int | None = None,
    gateway: "GatewaySettings | None" = None,
) -> RuntimeContext:
    """Replace the process-global context (CLI and long-lived services).

    ``executor`` accepts a ready :class:`Executor` or a kind string;
    anything unset falls back to env vars, then defaults.
    """
    global _GLOBAL
    kind = executor if isinstance(executor, str) else None
    ready = executor if isinstance(executor, Executor) else None
    config = RuntimeConfig.from_env(
        jobs=jobs,
        executor=kind,
        cache=cache,
        cache_dir=cache_dir,
        solve_cache=solve_cache,
        solve_cache_dir=solve_cache_dir,
        cache_peers=cache_peers,
        cache_max_entries=cache_max_entries,
        gateway=gateway,
    )
    with _GLOBAL_LOCK:
        previous = _GLOBAL
        _GLOBAL = _build(config, ready)
        if previous is not None and previous.owns_executor:
            previous.executor.shutdown()  # don't leak replaced pools
        return _GLOBAL


@contextmanager
def runtime_session(
    jobs: int | None = None,
    executor: Executor | str | None = None,
    cache: bool | None = None,
    cache_dir: str | None = None,
    solve_cache: bool | None = None,
    solve_cache_dir: str | None = None,
    cache_peers: tuple[str, ...] | list[str] | None = None,
    cache_max_entries: int | None = None,
    gateway: "GatewaySettings | None" = None,
    context: RuntimeContext | None = None,
):
    """Thread-local context override, restored on exit.

    Executors created here (not passed in ready-made) are shut down when
    the session closes.
    """
    owns_executor = not isinstance(executor, Executor) and context is None
    if context is None:
        kind = executor if isinstance(executor, str) else None
        ready = executor if isinstance(executor, Executor) else None
        config = RuntimeConfig.from_env(
            jobs=jobs,
            executor=kind,
            cache=cache,
            cache_dir=cache_dir,
            solve_cache=solve_cache,
            solve_cache_dir=solve_cache_dir,
            cache_peers=cache_peers,
            cache_max_entries=cache_max_entries,
            gateway=gateway,
        )
        context = _build(config, ready)
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    stack.append(context)
    try:
        yield context
    finally:
        stack.pop()
        if owns_executor:
            context.executor.shutdown()
