"""Execution backends with a common ``map``/``submit`` API.

Three interchangeable executors -- serial, thread-pool, and
process-pool -- all guarantee **deterministic result ordering**:
``map(fn, items)`` returns results in input order no matter how many
workers ran them or in what order they finished.  Combined with the
engine's policy of keeping LLM-call ordering serial (only pure
simulation work is fanned out), fixed seeds give bit-identical outcomes
regardless of worker count.

The process backend requires picklable work; when handed a closure it
downgrades to threads instead of failing (``fallbacks`` counts how
often), so callers never need to special-case it.
"""

from __future__ import annotations

import concurrent.futures as cf
import pickle

from repro.runtime.config import RuntimeConfig


class Executor:
    """Common interface: ordered ``map``, future-returning ``submit``."""

    kind = "base"

    def __init__(self, workers: int = 1):
        self.workers = max(1, int(workers))

    def map(self, fn, items) -> list:
        """Apply ``fn`` to each item; results in input order."""
        raise NotImplementedError

    def submit(self, fn, *args) -> "cf.Future":
        """Schedule one call; returns a :class:`concurrent.futures.Future`."""
        raise NotImplementedError

    def submit_unchecked(self, fn, *args) -> "cf.Future":
        """Like ``submit``, skipping any dispatch-safety probing.

        For callers that have already established the payload can cross
        the backend's boundary (e.g. one picklability probe for a whole
        homogeneous batch); identical to ``submit`` except on process
        pools, where it avoids re-pickling every payload twice.
        """
        return self.submit(fn, *args)

    def shutdown(self) -> None:
        """Release worker resources (idempotent)."""

    def describe(self) -> str:
        return f"{self.kind}[{self.workers}]"

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class SerialExecutor(Executor):
    """In-process, in-order execution (the zero-dependency baseline)."""

    kind = "serial"

    def __init__(self):
        super().__init__(workers=1)

    def map(self, fn, items) -> list:
        return [fn(item) for item in items]

    def submit(self, fn, *args) -> "cf.Future":
        future: cf.Future = cf.Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # surfaced via future.result()
            future.set_exception(exc)
        return future


class ThreadExecutor(Executor):
    """Thread-pool backend.

    Pure-python simulation is GIL-bound, so threads mainly help when the
    cache or I/O dominates; they are the safe default for closures.
    """

    kind = "thread"

    def __init__(self, workers: int = 2):
        super().__init__(workers)
        self._pool = cf.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-runtime"
        )

    def map(self, fn, items) -> list:
        futures = [self._pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def submit(self, fn, *args) -> "cf.Future":
        return self._pool.submit(fn, *args)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def _picklable(*objects) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
        return True
    except Exception:
        return False


class ProcessExecutor(Executor):
    """Process-pool backend: true CPU parallelism for picklable work.

    Work that cannot cross a process boundary (closures, bound methods
    of unpicklable objects) silently runs on a thread pool instead;
    ``fallbacks`` counts those downgrades.
    """

    kind = "process"

    def __init__(self, workers: int = 2):
        super().__init__(workers)
        self._pool: cf.ProcessPoolExecutor | None = None
        self._thread_fallback: ThreadExecutor | None = None
        self.fallbacks = 0

    def _process_pool(self) -> cf.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = cf.ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _threads(self) -> ThreadExecutor:
        if self._thread_fallback is None:
            self._thread_fallback = ThreadExecutor(self.workers)
        return self._thread_fallback

    def map(self, fn, items) -> list:
        items = list(items)
        if not items:
            return []
        if not _picklable(fn, items[0]):
            self.fallbacks += 1
            return self._threads().map(fn, items)
        futures = [self._process_pool().submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def submit(self, fn, *args) -> "cf.Future":
        if not _picklable(fn, *args):
            self.fallbacks += 1
            return self._threads().submit(fn, *args)
        return self._process_pool().submit(fn, *args)

    def submit_unchecked(self, fn, *args) -> "cf.Future":
        return self._process_pool().submit(fn, *args)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._thread_fallback is not None:
            self._thread_fallback.shutdown()
            self._thread_fallback = None


def create_executor(
    jobs: int | None = None, kind: str | None = None
) -> Executor:
    """Build an executor from explicit arguments, env vars, or defaults.

    ``kind="auto"`` (the default) picks serial for one job and threads
    for more; processes must be requested explicitly since they require
    picklable work units.
    """
    config = RuntimeConfig.from_env(jobs=jobs, executor=kind)
    resolved = config.executor
    if resolved == "auto":
        resolved = "serial" if config.jobs <= 1 else "thread"
    if resolved == "serial":
        return SerialExecutor()
    if resolved == "thread":
        return ThreadExecutor(config.jobs)
    return ProcessExecutor(config.jobs)
