"""Picklable work units for the batch evaluation grid.

One :class:`EvalCell` is one (problem, run) point of the Eq. 7 grid:
build a fresh system instance, solve the task, score the result against
the hidden golden testbench.  Cells are self-contained frozen dataclasses
so a :class:`~repro.runtime.executor.ProcessExecutor` can ship them to
worker processes; in-process executors pass the live caches alongside.

Each cell runs under a thread-local **serial** runtime so the grid is
parallelised exactly once: worker threads and processes never spawn
nested pools, and a cell's internal LLM-call ordering stays identical
to a plain serial run -- which is what makes ``--jobs N`` bit-identical
to ``--jobs 1`` for fixed seeds.

When the cell carries a solve-cell fingerprint, the whole run is first
looked up in the :class:`~repro.runtime.cache.SolveCellCache` --
``hash(config, problem, seed)`` -> source + typed events -- and a hit
skips the system entirely; only the (also cached) golden-testbench
scoring remains.  Cached results are bit-identical to recomputation
because solves are deterministic in exactly the hashed inputs.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover -- annotation-only import
    from repro.llm.gateway.settings import GatewaySettings

from repro.core.task import DesignTask
from repro.evalsets.problem import Problem
from repro.runtime.cache import (
    CacheStats,
    SimulationCache,
    SolveCellCache,
    SolveCellRecord,
    cached_run_testbench,
    simulation_count,
    solve_cell_key,
)
from repro.runtime.context import RuntimeContext, runtime_session
from repro.runtime.executor import SerialExecutor
from repro.tb.stimulus import Testbench


@dataclass(frozen=True)
class EvalCell:
    """One (problem, run) evaluation: everything a worker needs.

    ``cache_peers`` rides along so cells shipped to pool processes
    rebuild the same tier stack (memory -> disk -> remote peers) the
    parent's cache fabric has.  ``gateway`` carries the LLM gateway
    settings the same way: the cell's inner runtime context pins them,
    so a system built inside a pool process resolves the identical
    gateway (mode, chain, cassette target) the parent configured.
    """

    problem_index: int
    run_index: int
    factory: Callable[[], object]
    problem: Problem
    golden_tb: Testbench
    seed: int
    cache_enabled: bool = True
    cache_dir: str | None = None
    solve_enabled: bool = False
    solve_dir: str | None = None
    fingerprint: str | None = None
    cache_peers: tuple[str, ...] = ()
    gateway: "GatewaySettings | None" = None


@dataclass(frozen=True)
class CellResult:
    """What comes back: the tally entry plus timing and cache accounting.

    Cache counters are exact per-cell in serial and process execution;
    under thread execution concurrent cells share counters, so batch
    totals are taken from the live caches instead.
    """

    problem_index: int
    run_index: int
    problem_id: str
    passed: bool
    score: float
    seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    simulations: int = 0
    solve_hits: int = 0
    solve_misses: int = 0
    # Whether THIS cell's solve was served from the solve-cell cache.
    # Recorded at the lookup itself (not from stats deltas), so it stays
    # correct even when concurrent thread cells share one stats object.
    solve_cached: bool = False


# Per-process cache registries for pool workers: cells landing in the
# same worker process share one cache per tier configuration (keyed by
# disk directory + peer addresses).
_WORKER_CACHES: dict[tuple, SimulationCache] = {}
_WORKER_SOLVE_CACHES: dict[tuple, SolveCellCache] = {}


def process_local_cache(
    enabled: bool,
    directory: str | None,
    peers: tuple[str, ...] = (),
) -> SimulationCache | None:
    """The worker-process simulation cache for one tier configuration.

    Work units landing in the same process share one cache per (disk
    directory, peer list) -- the resolution both grid cells and rollout
    phase functions use when they execute without a live cache in hand
    (i.e. across a process boundary).
    """
    if not enabled:
        return None
    config = (directory, tuple(peers))
    cache = _WORKER_CACHES.get(config)
    if cache is None:
        cache = SimulationCache(directory, peers=peers)
        _WORKER_CACHES[config] = cache
    return cache


def _resolve_cache(cell: EvalCell) -> SimulationCache | None:
    return process_local_cache(
        cell.cache_enabled, cell.cache_dir, cell.cache_peers
    )


def _resolve_solve_cache(cell: EvalCell) -> SolveCellCache | None:
    if not cell.solve_enabled or cell.fingerprint is None:
        return None
    config = (cell.solve_dir, tuple(cell.cache_peers))
    cache = _WORKER_SOLVE_CACHES.get(config)
    if cache is None:
        cache = SolveCellCache(cell.solve_dir, peers=cell.cache_peers)
        _WORKER_SOLVE_CACHES[config] = cache
    return cache


def _accepts_sink(solve: Callable) -> bool:
    """Whether a system's ``solve`` takes the event-sink keyword."""
    try:
        return "sink" in inspect.signature(solve).parameters
    except (TypeError, ValueError):
        return False


def solve_streaming(
    factory: Callable[[], object],
    problem: Problem,
    seed: int,
    sink=None,
    solve_cache: SolveCellCache | None = None,
    fingerprint: str | None = None,
) -> tuple[str, bool]:
    """Solve one cell with live event streaming and solve-cell caching.

    Returns ``(source, served_from_cache)``.  A cache hit *replays* the
    recorded event stream into ``sink``, so subscribers see exactly the
    frames a live solve would have produced -- the property the solve
    service's warm path and the CLI's warm ``run`` both rely on.  A miss
    solves live (events flow to ``sink`` as they happen) and stores the
    record for the next caller.
    """
    from repro.core.events import Broadcast, ListSink, as_sink

    key = None
    if solve_cache is not None and fingerprint is not None:
        try:
            key = solve_cell_key(fingerprint, problem, seed)
        except Exception:
            # A problem payload without a stable repr cannot be cached
            # safely; fall through to a plain solve.
            key = None
    if key is not None:
        record = solve_cache.get(key)
        if record is not None:
            if sink is not None:
                live = as_sink(sink)
                for event in record.events:
                    live.emit(event)
            return record.source, True
    system = factory()
    task = DesignTask.from_problem(problem)
    collector = ListSink() if key is not None else None
    sinks = [s for s in (collector, as_sink(sink) if sink is not None else None) if s]
    target = sinks[0] if len(sinks) == 1 else (Broadcast(*sinks) if sinks else None)
    if target is not None and _accepts_sink(system.solve):
        source = system.solve(task, seed=seed, sink=target)
    else:
        # Systems predating the pipeline refactor take no sink.
        source = system.solve(task, seed=seed)
    if key is not None:
        solve_cache.put(
            key,
            SolveCellRecord(
                source=source,
                system=getattr(system, "name", type(system).__name__),
                events=tuple(collector.events) if collector else (),
            ),
        )
    return source, False


def _solve_cell(cell: EvalCell, solve_cache: SolveCellCache | None) -> tuple[str, bool]:
    """Produce the cell's source; returns (source, served_from_cache)."""
    return solve_streaming(
        cell.factory,
        cell.problem,
        cell.seed,
        solve_cache=solve_cache,
        fingerprint=cell.fingerprint,
    )


def run_cell(
    cell: EvalCell,
    cache: SimulationCache | None = None,
    solve_cache: SolveCellCache | None = None,
) -> CellResult:
    """Execute one cell (module-level, hence process-pool picklable)."""
    if cache is None and cell.cache_enabled:
        cache = _resolve_cache(cell)
    if solve_cache is None:
        solve_cache = _resolve_solve_cache(cell)
    elif cell.fingerprint is None:
        solve_cache = None
    before = cache.stats.snapshot() if cache is not None else CacheStats()
    solve_before = (
        solve_cache.stats.snapshot() if solve_cache is not None else CacheStats()
    )
    sims_before = simulation_count()
    started = time.perf_counter()
    inner = RuntimeContext(
        executor=SerialExecutor(), cache=cache, gateway=cell.gateway
    )
    with runtime_session(context=inner):
        source, solve_cached = _solve_cell(cell, solve_cache)
        report = cached_run_testbench(
            source, cell.golden_tb, cell.problem.top, cache=cache
        )
    elapsed = time.perf_counter() - started
    delta = (
        cache.stats.delta(before) if cache is not None else CacheStats()
    )
    solve_delta = (
        solve_cache.stats.delta(solve_before)
        if solve_cache is not None
        else CacheStats()
    )
    return CellResult(
        problem_index=cell.problem_index,
        run_index=cell.run_index,
        problem_id=cell.problem.id,
        passed=report.passed,
        score=report.score,
        seconds=elapsed,
        cache_hits=delta.hits,
        cache_misses=delta.misses,
        simulations=simulation_count() - sims_before,
        solve_hits=solve_delta.hits,
        solve_misses=solve_delta.misses,
        solve_cached=solve_cached,
    )
