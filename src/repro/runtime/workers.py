"""Picklable work units for the batch evaluation grid.

One :class:`EvalCell` is one (problem, run) point of the Eq. 7 grid:
build a fresh system instance, solve the task, score the result against
the hidden golden testbench.  Cells are self-contained frozen dataclasses
so a :class:`~repro.runtime.executor.ProcessExecutor` can ship them to
worker processes; in-process executors pass the live cache alongside.

Each cell runs under a thread-local **serial** runtime so the grid is
parallelised exactly once: worker threads and processes never spawn
nested pools, and a cell's internal LLM-call ordering stays identical
to a plain serial run -- which is what makes ``--jobs N`` bit-identical
to ``--jobs 1`` for fixed seeds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.core.task import DesignTask
from repro.evalsets.problem import Problem
from repro.runtime.cache import (
    CacheStats,
    SimulationCache,
    cached_run_testbench,
    simulation_count,
)
from repro.runtime.context import RuntimeContext, runtime_session
from repro.runtime.executor import SerialExecutor
from repro.tb.stimulus import Testbench


@dataclass(frozen=True)
class EvalCell:
    """One (problem, run) evaluation: everything a worker needs."""

    problem_index: int
    run_index: int
    factory: Callable[[], object]
    problem: Problem
    golden_tb: Testbench
    seed: int
    cache_enabled: bool = True
    cache_dir: str | None = None


@dataclass(frozen=True)
class CellResult:
    """What comes back: the tally entry plus timing and cache accounting.

    Cache counters are exact per-cell in serial and process execution;
    under thread execution concurrent cells share counters, so batch
    totals are taken from the live cache instead.
    """

    problem_index: int
    run_index: int
    problem_id: str
    passed: bool
    score: float
    seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    simulations: int = 0


# Per-process cache registry for pool workers: cells landing in the same
# worker process share one in-memory cache (keyed by disk directory).
_WORKER_CACHES: dict[str | None, SimulationCache] = {}


def _resolve_cache(cell: EvalCell) -> SimulationCache | None:
    if not cell.cache_enabled:
        return None
    cache = _WORKER_CACHES.get(cell.cache_dir)
    if cache is None:
        cache = SimulationCache(cell.cache_dir)
        _WORKER_CACHES[cell.cache_dir] = cache
    return cache


def run_cell(cell: EvalCell, cache: SimulationCache | None = None) -> CellResult:
    """Execute one cell (module-level, hence process-pool picklable)."""
    if cache is None and cell.cache_enabled:
        cache = _resolve_cache(cell)
    before = cache.stats.snapshot() if cache is not None else CacheStats()
    sims_before = simulation_count()
    started = time.perf_counter()
    inner = RuntimeContext(executor=SerialExecutor(), cache=cache)
    with runtime_session(context=inner):
        system = cell.factory()
        task = DesignTask.from_problem(cell.problem)
        source = system.solve(task, seed=cell.seed)
        report = cached_run_testbench(
            source, cell.golden_tb, cell.problem.top, cache=cache
        )
    elapsed = time.perf_counter() - started
    delta = (
        cache.stats.delta(before) if cache is not None else CacheStats()
    )
    return CellResult(
        problem_index=cell.problem_index,
        run_index=cell.run_index,
        problem_id=cell.problem.id,
        passed=report.passed,
        score=report.score,
        seconds=elapsed,
        cache_hits=delta.hits,
        cache_misses=delta.misses,
        simulations=simulation_count() - sims_before,
    )
