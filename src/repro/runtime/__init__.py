"""``repro.runtime``: parallel execution + content-addressed simulation cache.

The scaling layer under the MAGE engine and the evaluation harness:

- :mod:`repro.runtime.executor` -- serial / thread / process executors
  behind one ``map``/``submit`` API with deterministic result ordering;
- :mod:`repro.runtime.cache` -- the tiered cache fabric: two
  content-addressed memoizers (``run_testbench`` keyed by
  ``hash(design_source, testbench, top_module)``, whole solve cells
  keyed by ``hash(config, problem, seed)`` -- source + typed event
  stream), each a :class:`TieredCache` stacking memory -> disk ->
  remote-peer tiers with read-through promotion, write-through gossip,
  and per-tier hit/miss counters;
- :mod:`repro.runtime.context` -- the ambient (executor, caches) set the
  engine's hot paths pick up without signature threading;
- :mod:`repro.runtime.batch` -- ``evaluate_many``, fanning the Eq. 7
  ``problems x runs`` grid across workers with progress callbacks,
  streaming per-cell events, and timing/throughput stats.

Parallelism is applied only where it is provably bit-deterministic:
whole evaluation cells (fresh system instance each, no shared state) and
pure simulation scoring.  LLM-call ordering inside one engine run stays
serial, so ``--jobs N`` reproduces ``--jobs 1`` exactly for fixed seeds.
"""

from repro.runtime.batch import BatchReport, evaluate_many
from repro.runtime.cache import (
    CacheStats,
    CacheTier,
    ContentCache,
    DiskCacheInfo,
    DiskTier,
    MemoryTier,
    RemoteTier,
    SimulationCache,
    SolveCellCache,
    SolveCellRecord,
    TierStats,
    TieredCache,
    cached_run_testbench,
    clear_disk_cache,
    disk_cache_info,
    simulation_count,
    simulation_key,
    solve_cell_key,
    system_fingerprint,
)
from repro.runtime.config import RuntimeConfig
from repro.runtime.context import (
    RuntimeContext,
    configure,
    get_runtime,
    runtime_session,
)
from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
)
from repro.runtime.rollout import (
    RolloutDedupStats,
    RolloutRequest,
    RolloutResult,
    RolloutScheduler,
)

__all__ = [
    "BatchReport",
    "CacheStats",
    "CacheTier",
    "ContentCache",
    "DiskCacheInfo",
    "DiskTier",
    "Executor",
    "MemoryTier",
    "ProcessExecutor",
    "RemoteTier",
    "RolloutDedupStats",
    "RolloutRequest",
    "RolloutResult",
    "RolloutScheduler",
    "RuntimeConfig",
    "RuntimeContext",
    "SerialExecutor",
    "SimulationCache",
    "SolveCellCache",
    "SolveCellRecord",
    "ThreadExecutor",
    "TierStats",
    "TieredCache",
    "cached_run_testbench",
    "clear_disk_cache",
    "configure",
    "create_executor",
    "disk_cache_info",
    "evaluate_many",
    "get_runtime",
    "runtime_session",
    "simulation_count",
    "simulation_key",
    "solve_cell_key",
    "system_fingerprint",
]
