"""Rollout batching: gang-schedule Step-4 sampling across concurrent runs.

The Eq. 7 ``problems x runs`` grid spends most of its wall-clock in the
``step4`` sampling stage -- c high-temperature candidates, each scored
by pure simulation.  A plain grid fan-out parallelises *cells*; this
module goes one level deeper (the ChipMATE direction): a
:class:`RolloutScheduler` drives many concurrent
:class:`~repro.core.pipeline.RunState`s through their staged pipelines,
suspends each just before its sampling stage (``stop_after=`` plus a
state snapshot), coalesces the pending candidate generations and
simulations of the whole batch into **waves**, fans each wave through
one ``Executor.map``-shaped call (and the content-addressed simulation
cache), then resumes every state with its scored candidates.

Each run advances in three phase functions, all module-level and
picklable so waves can cross process pools:

- :func:`rollout_open` -- stages up to the sampling stage under a
  pinned-serial runtime, then the run's *own* candidate generation
  (LLM calls, in-state order) via the program's ``sample_plan`` hook;
- :func:`rollout_score` -- one pure simulation of one candidate (the
  coalesced wave: every pending candidate of every in-flight run);
- :func:`rollout_close` -- inject the reports, resume to completion
  (Top-K ranking, Step-5 debugging), score against the golden
  testbench.

Determinism contract (extends Eq. 7's): per-run LLM-call ordering stays
pinned-serial *inside each state* -- generation happens in the exact
position an inline Step 4 would issue it, scoring is pure and returned
in source order, and the resumed stage consumes the injected reports
through the same :func:`~repro.core.sampling.rank_candidates` an inline
run uses.  Batched output is therefore bit-identical to
``--jobs 1 --rollout-batch 0`` serial runs -- enforced by the parity
test matrix (``tests/runtime/test_rollout_parity.py``), not by
convention.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from typing import TYPE_CHECKING

from repro.core.events import Event, ListSink, as_sink
from repro.core.pipeline import resume_program, restore_state, stage_before
from repro.core.task import DesignTask

if TYPE_CHECKING:  # the agents stack must not load at runtime-import time
    from repro.core.sampling import SampleWork
    from repro.llm.gateway.settings import GatewaySettings
from repro.evalsets.problem import Problem
from repro.runtime.cache import (
    CacheStats,
    SimulationCache,
    SolveCellCache,
    SolveCellRecord,
    cached_run_testbench,
    simulation_count,
    simulation_key,
    solve_cell_key,
)
from repro.runtime.context import RuntimeContext, runtime_session
from repro.runtime.executor import Executor, SerialExecutor, _picklable
from repro.runtime.workers import _accepts_sink, process_local_cache
from repro.tb.stimulus import Testbench


# ----------------------------------------------------------------------
# Work units (picklable; one per wave item).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RolloutCell:
    """One run entering the scheduler: everything ``rollout_open`` needs.

    ``gateway`` pins the LLM gateway settings on the cell's inner
    runtime context, so the system built inside a pool process resolves
    the same gateway the scheduler's caller configured.
    """

    index: int
    factory: Callable[[], object]
    problem: Problem
    golden_tb: Testbench
    seed: int
    cache_enabled: bool = True
    cache_dir: str | None = None
    cache_peers: tuple[str, ...] = ()
    gateway: "GatewaySettings | None" = None


@dataclass(frozen=True)
class ScoreTask:
    """One candidate simulation of the coalesced scoring wave."""

    source: str
    testbench: Testbench
    top: str
    cache_enabled: bool = True
    cache_dir: str | None = None
    cache_peers: tuple[str, ...] = ()


@dataclass(frozen=True)
class CloseTask:
    """Resume payload: the suspended state plus its scored candidates."""

    blob: bytes
    reports: tuple
    has_sample: bool
    golden_tb: Testbench
    top: str
    cache_enabled: bool = True
    cache_dir: str | None = None
    cache_peers: tuple[str, ...] = ()
    gateway: "GatewaySettings | None" = None


# ----------------------------------------------------------------------
# Phase outcomes.
# ----------------------------------------------------------------------


@dataclass
class PhaseCounters:
    """Per-item cache/simulation accounting (exact when the item ran
    alone in its process; approximate under thread interleaving, where
    batch totals come from the live caches instead)."""

    seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    simulations: int = 0


@dataclass
class OpenOutcome:
    """What ``rollout_open`` hands back for one run."""

    index: int
    system: str
    events: list[Event]
    counters: PhaseCounters
    finished: bool
    # Finished runs carry their final result ...
    source: str = ""
    passed: bool = False
    score: float = 0.0
    # ... suspended runs carry the resume payload instead.
    blob: bytes | None = None
    sample: SampleWork | None = None


@dataclass
class ScoreOutcome:
    report: object
    counters: PhaseCounters


@dataclass
class CloseOutcome:
    source: str
    passed: bool
    score: float
    events: list[Event]
    counters: PhaseCounters


class _Measured:
    """Context manager filling a :class:`PhaseCounters` from the cache
    stats and simulation-counter deltas around a phase body."""

    def __init__(self, cache: SimulationCache | None):
        self.cache = cache
        self.counters = PhaseCounters()

    def __enter__(self) -> PhaseCounters:
        self._before = (
            self.cache.stats.snapshot() if self.cache is not None else CacheStats()
        )
        self._sims = simulation_count()
        self._started = time.perf_counter()
        return self.counters

    def __exit__(self, *exc) -> None:
        self.counters.seconds = time.perf_counter() - self._started
        self.counters.simulations = simulation_count() - self._sims
        if self.cache is not None:
            delta = self.cache.stats.delta(self._before)
            self.counters.cache_hits = delta.hits
            self.counters.cache_misses = delta.misses


# ----------------------------------------------------------------------
# Phase functions (module-level, hence process-pool picklable).
# ----------------------------------------------------------------------


def rollout_open(cell: RolloutCell, cache: SimulationCache | None = None) -> OpenOutcome:
    """Advance one run to its sampling suspension point.

    Runs the stages before the program's ``sample_stage`` under a
    pinned-serial runtime (the same isolation a grid cell gets), then
    the run's own candidate generation via ``sample_plan`` -- so the
    state's LLM-call order is exactly an inline run's.  Runs without a
    sampling stage (or that finish early) complete here, including
    their golden-testbench scoring.
    """
    if cache is None:
        cache = process_local_cache(
            cell.cache_enabled, cell.cache_dir, cell.cache_peers
        )
    sink = ListSink()
    inner = RuntimeContext(
        executor=SerialExecutor(), cache=cache, gateway=cell.gateway
    )
    with _Measured(cache) as counters, runtime_session(context=inner):
        system = cell.factory()
        name = getattr(system, "name", type(system).__name__)
        task = DesignTask.from_problem(cell.problem)
        starter = getattr(system, "start_run", None)
        if starter is None:
            # Pre-program system: no suspension points; solve whole.
            if _accepts_sink(system.solve):
                source = system.solve(task, seed=cell.seed, sink=sink)
            else:
                source = system.solve(task, seed=cell.seed)
            report = cached_run_testbench(
                source, cell.golden_tb, cell.problem.top, cache=cache
            )
            return OpenOutcome(
                index=cell.index,
                system=name,
                events=sink.events,
                counters=counters,
                finished=True,
                source=source,
                passed=report.passed,
                score=report.score,
            )
        program = starter(task, seed=cell.seed)
        spec = program.spec
        stop = (
            stage_before(program.pipeline(), spec.sample_stage)
            if spec.sample_stage is not None
            else None
        )
        if spec.sample_stage is None or stop is not None:
            # stop=None with a sample stage means sampling is the very
            # first stage: nothing to run before the suspension point.
            program.advance(sink=sink, stop_after=stop)
        if program.finished:
            source = program.source()
            report = cached_run_testbench(
                source, cell.golden_tb, cell.problem.top, cache=cache
            )
            return OpenOutcome(
                index=cell.index,
                system=name,
                events=sink.events,
                counters=counters,
                finished=True,
                source=source,
                passed=report.passed,
                score=report.score,
            )
        sample = (
            spec.sample_plan(program.state)
            if spec.sample_plan is not None
            else None
        )
        return OpenOutcome(
            index=cell.index,
            system=name,
            events=sink.events,
            counters=counters,
            finished=False,
            blob=program.state.snapshot(),
            sample=sample,
        )


def rollout_score(task: ScoreTask, cache: SimulationCache | None = None) -> ScoreOutcome:
    """Score one candidate: pure simulation through the shared cache."""
    if cache is None:
        cache = process_local_cache(
            task.cache_enabled, task.cache_dir, task.cache_peers
        )
    with _Measured(cache) as counters:
        report = cached_run_testbench(
            task.source, task.testbench, task.top, cache=cache
        )
    return ScoreOutcome(report=report, counters=counters)


def rollout_close(item: CloseTask, cache: SimulationCache | None = None) -> CloseOutcome:
    """Resume one suspended run with its scored candidates and finish it.

    The injected reports are consumed by the sampling stage itself
    (which ranks and emits exactly as an inline run would), the
    remaining stages run pinned-serial, and the final source is scored
    against the hidden golden testbench -- the same computation a grid
    cell performs.
    """
    if cache is None:
        cache = process_local_cache(
            item.cache_enabled, item.cache_dir, item.cache_peers
        )
    sink = ListSink()
    inner = RuntimeContext(
        executor=SerialExecutor(), cache=cache, gateway=item.gateway
    )
    with _Measured(cache) as counters, runtime_session(context=inner):
        state = restore_state(item.blob)
        if item.has_sample:
            state.data["rollout_reports"] = list(item.reports)
        program = resume_program(state)
        program.advance(sink=sink)
        source = program.source()
        report = cached_run_testbench(
            source, item.golden_tb, item.top, cache=cache
        )
    return CloseOutcome(
        source=source,
        passed=report.passed,
        score=report.score,
        events=sink.events,
        counters=counters,
    )


# ----------------------------------------------------------------------
# The scheduler.
# ----------------------------------------------------------------------


@dataclass
class RolloutRequest:
    """One (system, problem, seed) cell submitted to the scheduler.

    ``sink`` receives the run's typed event stream (replayed in phase
    bursts, per-run order preserved); ``fingerprint`` enables solve-cell
    caching for the request (None skips it, exactly like the grid).
    """

    index: int
    factory: Callable[[], object]
    problem: Problem
    golden_tb: Testbench
    seed: int
    sink: object = None
    fingerprint: str | None = None


@dataclass
class RolloutDedupStats:
    """Score-phase dedup accounting, attributed by mechanism.

    ``wave_duplicates`` counts content-identical candidates collapsed
    *within* one coalesced wave; ``fabric_hits`` counts candidates
    served from the fabric's local tiers before dispatch (the memory
    tier dedups across waves of the same scheduler, the disk tier
    across processes); ``remote_hits`` counts candidates a dispatched
    lookup fetched from a peer instead of simulating -- dedup across
    schedulers and machines (measured on the live fabric, so process-
    pool waves, whose peer probes happen inside the children, report
    0 here).  ``executed`` is what was dispatched to the executor; a
    dispatched candidate served by a peer still runs no simulation.
    """

    wave_duplicates: int = 0
    fabric_hits: int = 0
    remote_hits: int = 0
    executed: int = 0

    @property
    def deduped(self) -> int:
        return self.wave_duplicates + self.fabric_hits


@dataclass
class RolloutResult:
    """One completed cell (or its error).

    ``error`` is the stringified failure (what the service turns into
    an error frame); ``exception`` keeps the original exception object
    so in-process callers can re-raise with the real type and
    traceback.
    """

    index: int
    problem_id: str
    seed: int
    source: str = ""
    passed: bool = False
    score: float = 0.0
    seconds: float = 0.0
    solve_cached: bool = False
    system: str = ""
    events: list[Event] = field(default_factory=list)
    error: str | None = None
    exception: BaseException | None = field(default=None, repr=False)
    cache_hits: int = 0
    cache_misses: int = 0
    simulations: int = 0


class RolloutScheduler:
    """Gang-schedules sampling across a batch of concurrent runs.

    ``executor`` carries every wave (a
    :class:`~repro.runtime.executor.ProcessExecutor` gives the scoring
    wave true multi-core parallelism; phase payloads are picklable by
    construction, and executors transparently downgrade anything that
    is not).  ``batch`` is the wave width: how many runs advance
    together between suspension points.  ``cache`` fronts every
    simulation of every wave; ``solve_cache`` serves whole repeated
    cells without touching a wave at all.
    """

    def __init__(
        self,
        executor: Executor | None = None,
        batch: int = 8,
        cache: SimulationCache | None = None,
        solve_cache: SolveCellCache | None = None,
        gateway: "GatewaySettings | None" = None,
    ):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.executor = executor if executor is not None else SerialExecutor()
        self.batch = batch
        self.cache = cache
        self.solve_cache = solve_cache
        self.gateway = gateway
        self.dedup = RolloutDedupStats()

    # ------------------------------------------------------------------

    def run(
        self,
        requests: list[RolloutRequest],
        on_result: Callable[[RolloutResult], None] | None = None,
    ) -> list[RolloutResult]:
        """Drive every request to completion; results in request order.

        ``on_result`` streams each completed cell as its wave finishes
        (request order within a wave), so long grids report progress
        wave by wave instead of all at the end.
        """
        results: dict[int, RolloutResult] = {}
        items = list(requests)
        for start in range(0, len(items), self.batch):
            chunk = items[start : start + self.batch]
            self._run_wave(chunk, results)
            if on_result is not None:
                for request in chunk:
                    on_result(results[request.index])
        return [results[request.index] for request in requests]

    # ------------------------------------------------------------------

    def _cached_record(self, request: RolloutRequest):
        if self.solve_cache is None or request.fingerprint is None:
            return None
        try:
            key = solve_cell_key(
                request.fingerprint, request.problem, request.seed
            )
        except Exception:
            return None  # unhashable problem payload: solve live
        return self.solve_cache.get(key)

    def _store_record(
        self, request: RolloutRequest, result: RolloutResult
    ) -> None:
        if self.solve_cache is None or request.fingerprint is None:
            return
        try:
            key = solve_cell_key(
                request.fingerprint, request.problem, request.seed
            )
        except Exception:
            return
        self.solve_cache.put(
            key,
            SolveCellRecord(
                source=result.source,
                system=result.system,
                events=tuple(result.events),
            ),
        )

    def _submit_wave(self, fn, payloads: list) -> list:
        """One coalesced wave: every payload through one executor pass.

        Payloads are probed once for picklability (they are homogeneous);
        process pools then receive self-contained items that resolve
        per-process caches, in-process backends share the live cache.
        Returns one outcome (or the raised exception) per payload, in
        input order.
        """
        if not payloads:
            return []
        crossing = self.executor.kind == "process" and _picklable(payloads[0])
        if crossing:
            futures = [
                self.executor.submit_unchecked(fn, payload)
                for payload in payloads
            ]
        else:
            futures = [
                self.executor.submit(fn, payload, self.cache)
                for payload in payloads
            ]
        outcomes = []
        for future in futures:
            try:
                outcomes.append(future.result())
            except Exception as exc:  # noqa: BLE001 -- per-run error result
                outcomes.append(exc)
        return outcomes

    def _score_wave(self, tasks: list[ScoreTask]) -> list:
        """Score a coalesced wave, deduplicating through the cache fabric.

        Concurrent runs frequently sample identical candidates (T=0
        stages, easy problems).  Dedup happens through the cache fabric
        at every distance, tracked in :attr:`dedup`: content-identical
        tasks *within* the wave are simulated once and the report fanned
        back (``wave_duplicates``); every task is probed against the
        fabric's *local* tiers before dispatch (``fabric_hits``: the
        memory tier carries dedup across the scheduler's own waves, the
        disk tier across processes); and a dispatched task's own counted
        lookup walks the full fabric including remote peers, so a
        candidate simulated on another scheduler or machine is served
        without re-simulating -- one network round-trip per unique cold
        candidate, never two (``remote_hits``, visible for in-process
        executors; process-pool waves probe peers inside the children).
        On process pools the parent fabric absorbs the wave's results
        locally (the children already gossiped them to peers), staying
        the shared medium between waves and phases.
        """
        if not tasks:
            return []
        crossing = self.executor.kind == "process" and _picklable(tasks[0])
        keyed: list[str | None] = []
        for task in tasks:
            try:
                keyed.append(
                    simulation_key(task.source, task.testbench, task.top)
                )
            except Exception:
                keyed.append(None)  # unrenderable testbench: never dedup
        ready: dict[int, ScoreOutcome] = {}
        primary: dict[str, int] = {}  # key -> index of the executed task
        to_run: list[int] = []

        def remote_tier_hits() -> int:
            if self.cache is None:
                return 0
            return sum(
                tier.stats.hits
                for tier in self.cache.tiers
                if tier.kind == "remote"
            )

        remote_before = remote_tier_hits()
        for index, key in enumerate(keyed):
            if key is None:
                to_run.append(index)
                continue
            if key in primary:
                self.dedup.wave_duplicates += 1
                continue  # duplicate: reuse the primary's report
            if self.cache is not None:
                report = self.cache.peek_local(key)
                if report is not None:
                    ready[index] = ScoreOutcome(
                        report=report,
                        counters=PhaseCounters(cache_hits=1),
                    )
                    self.dedup.fabric_hits += 1
                    continue
            primary[key] = index
            to_run.append(index)
        self.dedup.executed += len(to_run)
        outcomes = self._submit_wave(rollout_score, [tasks[i] for i in to_run])
        self.dedup.remote_hits += remote_tier_hits() - remote_before
        for index, outcome in zip(to_run, outcomes):
            ready[index] = outcome
            key = keyed[index]
            if (
                crossing
                and self.cache is not None
                and key is not None
                and not isinstance(outcome, Exception)
            ):
                # Local absorb only: the worker process's own tiered
                # cache already gossiped the report to every peer.
                self.cache.put_local(key, outcome.report)
        results = []
        for index, key in enumerate(keyed):
            if index in ready:
                results.append(ready[index])
                continue
            outcome = ready[primary[key]]
            if isinstance(outcome, Exception):
                results.append(outcome)
            else:
                results.append(
                    ScoreOutcome(
                        report=outcome.report,
                        counters=PhaseCounters(cache_hits=1),
                    )
                )
        return results

    def _run_wave(
        self,
        wave: list[RolloutRequest],
        results: dict[int, RolloutResult],
    ) -> None:
        # 1. Serve repeats straight from the solve-cell cache (replayed
        #    events, golden re-score through the simulation cache).
        pending: list[RolloutRequest] = []
        for request in wave:
            record = self._cached_record(request)
            if record is None:
                pending.append(request)
                continue
            started = time.perf_counter()
            if request.sink is not None:
                live = as_sink(request.sink)
                for event in record.events:
                    live.emit(event)
            report = cached_run_testbench(
                record.source,
                request.golden_tb,
                request.problem.top,
                cache=self.cache,
            )
            results[request.index] = RolloutResult(
                index=request.index,
                problem_id=request.problem.id,
                seed=request.seed,
                source=record.source,
                passed=report.passed,
                score=report.score,
                seconds=time.perf_counter() - started,
                solve_cached=True,
                system=record.system,
                events=list(record.events),
            )
        if not pending:
            return

        # 2. Open wave: advance every run to its suspension point (or
        #    completion), generation included.
        cells = [
            RolloutCell(
                index=request.index,
                factory=request.factory,
                problem=request.problem,
                golden_tb=request.golden_tb,
                seed=request.seed,
                cache_enabled=self.cache is not None,
                cache_dir=(
                    self.cache.directory if self.cache is not None else None
                ),
                cache_peers=(
                    self.cache.peers if self.cache is not None else ()
                ),
                gateway=self.gateway,
            )
            for request in pending
        ]
        opens = self._submit_wave(rollout_open, cells)

        alive: list[tuple[RolloutRequest, OpenOutcome]] = []
        for request, opened in zip(pending, opens):
            if isinstance(opened, Exception):
                results[request.index] = RolloutResult(
                    index=request.index,
                    problem_id=request.problem.id,
                    seed=request.seed,
                    error=f"{type(opened).__name__}: {opened}",
                    exception=opened,
                )
                continue
            if request.sink is not None:
                live = as_sink(request.sink)
                for event in opened.events:
                    live.emit(event)
            if opened.finished:
                result = RolloutResult(
                    index=request.index,
                    problem_id=request.problem.id,
                    seed=request.seed,
                    source=opened.source,
                    passed=opened.passed,
                    score=opened.score,
                    seconds=opened.counters.seconds,
                    system=opened.system,
                    events=list(opened.events),
                    cache_hits=opened.counters.cache_hits,
                    cache_misses=opened.counters.cache_misses,
                    simulations=opened.counters.simulations,
                )
                results[request.index] = result
                self._store_record(request, result)
            else:
                alive.append((request, opened))
        if not alive:
            return

        # 3. THE coalesced wave: every pending candidate of every
        #    in-flight run, scored through one executor pass.
        tasks: list[ScoreTask] = []
        spans: list[tuple[int, int]] = []
        for _, opened in alive:
            sources = opened.sample.sources if opened.sample is not None else ()
            begin = len(tasks)
            for source in sources:
                tasks.append(
                    ScoreTask(
                        source=source,
                        testbench=opened.sample.testbench,
                        top=opened.sample.top,
                        cache_enabled=self.cache is not None,
                        cache_dir=(
                            self.cache.directory
                            if self.cache is not None
                            else None
                        ),
                        cache_peers=(
                            self.cache.peers if self.cache is not None else ()
                        ),
                    )
                )
            spans.append((begin, len(tasks)))
        scored = self._score_wave(tasks)

        # 4. Close wave: inject the reports, resume to completion,
        #    golden-score.
        closers: list[tuple[RolloutRequest, OpenOutcome, float]] = []
        close_tasks: list[CloseTask] = []
        for (request, opened), (begin, end) in zip(alive, spans):
            slice_outcomes = scored[begin:end]
            failed = next(
                (o for o in slice_outcomes if isinstance(o, Exception)), None
            )
            if failed is not None:
                results[request.index] = RolloutResult(
                    index=request.index,
                    problem_id=request.problem.id,
                    seed=request.seed,
                    error=f"{type(failed).__name__}: {failed}",
                    exception=failed,
                )
                continue
            score_seconds = sum(o.counters.seconds for o in slice_outcomes)
            closers.append((request, opened, score_seconds))
            close_tasks.append(
                CloseTask(
                    blob=opened.blob,
                    reports=tuple(o.report for o in slice_outcomes),
                    has_sample=opened.sample is not None,
                    golden_tb=request.golden_tb,
                    top=request.problem.top,
                    cache_enabled=self.cache is not None,
                    cache_dir=(
                        self.cache.directory if self.cache is not None else None
                    ),
                    cache_peers=(
                        self.cache.peers if self.cache is not None else ()
                    ),
                    gateway=self.gateway,
                )
            )
            for outcome in slice_outcomes:
                opened.counters.cache_hits += outcome.counters.cache_hits
                opened.counters.cache_misses += outcome.counters.cache_misses
                opened.counters.simulations += outcome.counters.simulations
        closes = self._submit_wave(rollout_close, close_tasks)

        for (request, opened, score_seconds), closed in zip(closers, closes):
            if isinstance(closed, Exception):
                results[request.index] = RolloutResult(
                    index=request.index,
                    problem_id=request.problem.id,
                    seed=request.seed,
                    error=f"{type(closed).__name__}: {closed}",
                    exception=closed,
                )
                continue
            if request.sink is not None:
                live = as_sink(request.sink)
                for event in closed.events:
                    live.emit(event)
            result = RolloutResult(
                index=request.index,
                problem_id=request.problem.id,
                seed=request.seed,
                source=closed.source,
                passed=closed.passed,
                score=closed.score,
                seconds=(
                    opened.counters.seconds
                    + score_seconds
                    + closed.counters.seconds
                ),
                system=opened.system,
                events=list(opened.events) + list(closed.events),
                cache_hits=(
                    opened.counters.cache_hits + closed.counters.cache_hits
                ),
                cache_misses=(
                    opened.counters.cache_misses + closed.counters.cache_misses
                ),
                simulations=(
                    opened.counters.simulations + closed.counters.simulations
                ),
            )
            results[request.index] = result
            self._store_record(request, result)
