"""Rollout batching: gang-schedule sampling *and* debugging across runs.

The Eq. 7 ``problems x runs`` grid spends most of its wall-clock in the
``step4`` sampling stage and the ``step5`` debug loop -- LLM calls
interleaved with pure simulations.  A plain grid fan-out parallelises
*cells*; this module goes one level deeper (the ChipMATE direction): a
:class:`RolloutScheduler` drives many concurrent
:class:`~repro.core.pipeline.RunState`s through their staged pipelines,
suspends each at its simulation points (``stop_after=`` plus a state
snapshot), coalesces the pending simulations of the whole batch into
**waves**, fans each wave through one ``Executor.map``-shaped call (and
the content-addressed simulation cache), then resumes every state with
its scored candidates.

Each run advances through module-level, picklable phase functions so
waves can cross process pools:

- :func:`rollout_open` -- stages up to the sampling stage under a
  pinned-serial runtime, then the run's *own* candidate generation
  (LLM calls, in-state order) via the program's ``sample_plan`` hook;
- :func:`rollout_score` -- one pure simulation of one candidate (the
  coalesced wave: every pending candidate of every in-flight run);
- :func:`rollout_resume` -- inject the sampling reports, advance to the
  debug suspension point, draw the first debug round's trials via the
  program's ``debug_plan`` hook;
- :func:`rollout_debug_step` -- feed one debug round's trial reports
  back through ``debug_step`` and draw the next round -- so Step-5
  debug rounds across concurrent runs coalesce into shared score waves
  exactly like sampling does;
- :func:`rollout_close` -- resume to completion and score against the
  golden testbench.

Three scheduler-level mechanisms ride on the phase split:

- **Cost-aware wave sizing** (``batch="auto"``): a :class:`WavePlanner`
  sizes each wave from measured open/score wall-clock (seeded from the
  process-wide :class:`~repro.core.pipeline.StageClock` priors), so
  wave width tracks the measured LLM/simulation cost ratio instead of
  a fixed ``--rollout-batch N``.
- **Speculative simulation**: while a round's LLM calls are in flight,
  the scheduler speculatively golden-simulates the *likely* final
  winner of each run (best-scoring candidate so far).  Simulations are
  pure and cached, so mispredictions only cost discarded work --
  speculation may only warm the simulation cache, never alter event
  streams (:class:`SpeculationOutcome` tallies land on the batch-level
  sink only).
- **Work stealing**: a scheduler given a :class:`StealBoard` publishes
  each score wave's unique pending tasks; an idle peer scheduler (see
  ``repro.service.worker.steal_from_peer``) claims tasks over
  ``WaveSteal`` frames, simulates them, and returns reports through
  the cache fabric (``CachePut``), so the victim's own lookups hit.
  Too-slow thieves cost nothing: the victim simulates locally and the
  pure results are identical either way.

Determinism contract (extends Eq. 7's): per-run LLM-call ordering stays
pinned-serial *inside each state* -- generation and trial drawing
happen in the exact position an inline run would issue them, scoring is
pure and returned in source order, and the resumed stages consume the
injected reports through the same code paths an inline run uses.
Batched output is therefore bit-identical to ``--jobs 1
--rollout-batch 0`` serial runs -- across fixed widths, ``auto``
widths, speculation on or off, and work stealing -- enforced by the
parity test matrix (``tests/runtime/test_rollout_parity.py``), not by
convention.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from typing import TYPE_CHECKING

from repro.core.events import (
    Event,
    ListSink,
    SpeculationOutcome,
    WaveScheduled,
    as_sink,
)
from repro.core.pipeline import (
    STAGE_CLOCK,
    resume_program,
    restore_state,
    stage_before,
)
from repro.core.task import DesignTask

if TYPE_CHECKING:  # the agents stack must not load at runtime-import time
    from repro.core.sampling import SampleWork
    from repro.llm.gateway.settings import GatewaySettings
from repro.evalsets.problem import Problem
from repro.runtime.cache import (
    CacheStats,
    SimulationCache,
    SolveCellCache,
    SolveCellRecord,
    cached_run_testbench,
    simulation_count,
    simulation_key,
    solve_cell_key,
)
from repro.runtime.context import RuntimeContext, runtime_session
from repro.runtime.executor import Executor, SerialExecutor, _picklable
from repro.runtime.workers import _accepts_sink, process_local_cache
from repro.tb.stimulus import Testbench, render_testbench


# ----------------------------------------------------------------------
# Work units (picklable; one per wave item).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RolloutCell:
    """One run entering the scheduler: everything ``rollout_open`` needs.

    ``gateway`` pins the LLM gateway settings on the cell's inner
    runtime context, so the system built inside a pool process resolves
    the same gateway the scheduler's caller configured.

    ``inline`` (set by the scheduler for in-process executors) makes
    the suspension handoff a live :class:`RunState` object instead of a
    pickled snapshot: phases of one run execute strictly in sequence,
    so same-process waves skip the serialise/restore round-trip that
    only a process boundary actually needs.
    """

    index: int
    factory: Callable[[], object]
    problem: Problem
    golden_tb: Testbench
    seed: int
    cache_enabled: bool = True
    cache_dir: str | None = None
    cache_peers: tuple[str, ...] = ()
    gateway: "GatewaySettings | None" = None
    inline: bool = False


@dataclass(frozen=True)
class ScoreTask:
    """One candidate simulation of a coalesced scoring wave."""

    source: str
    testbench: Testbench
    top: str
    cache_enabled: bool = True
    cache_dir: str | None = None
    cache_peers: tuple[str, ...] = ()


@dataclass(frozen=True)
class ResumeTask:
    """Resume payload up to the debug suspension point.

    Injects the sampling reports, advances through the sampling stage,
    and -- for programs with debug hooks -- draws the first debug
    round's trials.
    """

    blob: bytes
    reports: tuple
    has_sample: bool
    golden_tb: Testbench
    top: str
    cache_enabled: bool = True
    cache_dir: str | None = None
    cache_peers: tuple[str, ...] = ()
    gateway: "GatewaySettings | None" = None
    inline: bool = False


@dataclass(frozen=True)
class DebugStepTask:
    """One debug round's feedback: trial reports in, next round out."""

    blob: bytes
    reports: tuple
    cache_enabled: bool = True
    cache_dir: str | None = None
    cache_peers: tuple[str, ...] = ()
    gateway: "GatewaySettings | None" = None
    inline: bool = False


@dataclass(frozen=True)
class CloseTask:
    """Final resume payload: drive the suspended state to completion."""

    blob: bytes
    reports: tuple
    has_sample: bool
    golden_tb: Testbench
    top: str
    cache_enabled: bool = True
    cache_dir: str | None = None
    cache_peers: tuple[str, ...] = ()
    gateway: "GatewaySettings | None" = None
    inline: bool = False


# ----------------------------------------------------------------------
# Phase outcomes.
# ----------------------------------------------------------------------


@dataclass
class PhaseCounters:
    """Per-item cache/simulation accounting (exact when the item ran
    alone in its process; approximate under thread interleaving, where
    batch totals come from the live caches instead)."""

    seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    simulations: int = 0

    def absorb(self, other: "PhaseCounters") -> None:
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.simulations += other.simulations


@dataclass
class OpenOutcome:
    """What ``rollout_open`` hands back for one run."""

    index: int
    system: str
    events: list[Event]
    counters: PhaseCounters
    finished: bool
    # Finished runs carry their final result ...
    source: str = ""
    passed: bool = False
    score: float = 0.0
    # ... suspended runs carry the resume payload instead.
    blob: bytes | None = None
    sample: SampleWork | None = None
    # True when the program exposes the debug suspension protocol
    # (``debug_stage``/``debug_plan``/``debug_step``), i.e. its Step-5
    # rounds can be gang-scheduled instead of running inline at close.
    has_debug: bool = False


@dataclass
class ScoreOutcome:
    report: object
    counters: PhaseCounters


@dataclass
class ResumeOutcome:
    """What ``rollout_resume`` / ``rollout_debug_step`` hand back.

    ``work`` is the next round's simulation work (DebugWork-shaped:
    ``sources``/``testbench``/``top``), or None when the debug loop has
    terminated and the state is ready to close.
    """

    events: list[Event]
    counters: PhaseCounters
    finished: bool
    source: str = ""
    passed: bool = False
    score: float = 0.0
    blob: bytes | None = None
    work: object | None = None


@dataclass
class CloseOutcome:
    source: str
    passed: bool
    score: float
    events: list[Event]
    counters: PhaseCounters


class _Measured:
    """Context manager filling a :class:`PhaseCounters` from the cache
    stats and simulation-counter deltas around a phase body."""

    def __init__(self, cache: SimulationCache | None):
        self.cache = cache
        self.counters = PhaseCounters()

    def __enter__(self) -> PhaseCounters:
        self._before = (
            self.cache.stats.snapshot() if self.cache is not None else CacheStats()
        )
        self._sims = simulation_count()
        self._started = time.perf_counter()
        return self.counters

    def __exit__(self, *exc) -> None:
        self.counters.seconds = time.perf_counter() - self._started
        self.counters.simulations = simulation_count() - self._sims
        if self.cache is not None:
            delta = self.cache.stats.delta(self._before)
            self.counters.cache_hits = delta.hits
            self.counters.cache_misses = delta.misses


# ----------------------------------------------------------------------
# Phase functions (module-level, hence process-pool picklable).
# ----------------------------------------------------------------------


def rollout_open(cell: RolloutCell, cache: SimulationCache | None = None) -> OpenOutcome:
    """Advance one run to its sampling suspension point.

    Runs the stages before the program's ``sample_stage`` under a
    pinned-serial runtime (the same isolation a grid cell gets), then
    the run's own candidate generation via ``sample_plan`` -- so the
    state's LLM-call order is exactly an inline run's.  Runs without a
    sampling stage (or that finish early) complete here, including
    their golden-testbench scoring.
    """
    if cache is None:
        cache = process_local_cache(
            cell.cache_enabled, cell.cache_dir, cell.cache_peers
        )
    sink = ListSink()
    inner = RuntimeContext(
        executor=SerialExecutor(), cache=cache, gateway=cell.gateway
    )
    with _Measured(cache) as counters, runtime_session(context=inner):
        system = cell.factory()
        name = getattr(system, "name", type(system).__name__)
        task = DesignTask.from_problem(cell.problem)
        starter = getattr(system, "start_run", None)
        if starter is None:
            # Pre-program system: no suspension points; solve whole.
            if _accepts_sink(system.solve):
                source = system.solve(task, seed=cell.seed, sink=sink)
            else:
                source = system.solve(task, seed=cell.seed)
            report = cached_run_testbench(
                source, cell.golden_tb, cell.problem.top, cache=cache
            )
            return OpenOutcome(
                index=cell.index,
                system=name,
                events=sink.events,
                counters=counters,
                finished=True,
                source=source,
                passed=report.passed,
                score=report.score,
            )
        program = starter(task, seed=cell.seed)
        spec = program.spec
        stop = (
            stage_before(program.pipeline(), spec.sample_stage)
            if spec.sample_stage is not None
            else None
        )
        if spec.sample_stage is None or stop is not None:
            # stop=None with a sample stage means sampling is the very
            # first stage: nothing to run before the suspension point.
            program.advance(sink=sink, stop_after=stop)
        if program.finished:
            source = program.source()
            report = cached_run_testbench(
                source, cell.golden_tb, cell.problem.top, cache=cache
            )
            return OpenOutcome(
                index=cell.index,
                system=name,
                events=sink.events,
                counters=counters,
                finished=True,
                source=source,
                passed=report.passed,
                score=report.score,
            )
        sample = (
            spec.sample_plan(program.state)
            if spec.sample_plan is not None
            else None
        )
        return OpenOutcome(
            index=cell.index,
            system=name,
            events=sink.events,
            counters=counters,
            finished=False,
            blob=program.state if cell.inline else program.state.snapshot(),
            sample=sample,
            has_debug=(
                spec.debug_stage is not None
                and spec.debug_plan is not None
                and spec.debug_step is not None
            ),
        )


def rollout_score(task: ScoreTask, cache: SimulationCache | None = None) -> ScoreOutcome:
    """Score one candidate: pure simulation through the shared cache."""
    if cache is None:
        cache = process_local_cache(
            task.cache_enabled, task.cache_dir, task.cache_peers
        )
    with _Measured(cache) as counters:
        report = cached_run_testbench(
            task.source, task.testbench, task.top, cache=cache
        )
    return ScoreOutcome(report=report, counters=counters)


def rollout_resume(item: ResumeTask, cache: SimulationCache | None = None) -> ResumeOutcome:
    """Advance one run from the sampling point to the debug point.

    Injects the wave-scored sampling reports (consumed by the sampling
    stage itself, which ranks and emits exactly as an inline run
    would), advances through the stages before ``debug_stage``, and --
    unless the run finished on the way (sampled-pass early finish) --
    draws the first debug round's trials via ``debug_plan``, parking
    their events on the state for the eventual replay.
    """
    if cache is None:
        cache = process_local_cache(
            item.cache_enabled, item.cache_dir, item.cache_peers
        )
    sink = ListSink()
    inner = RuntimeContext(
        executor=SerialExecutor(), cache=cache, gateway=item.gateway
    )
    with _Measured(cache) as counters, runtime_session(context=inner):
        state = item.blob if item.inline else restore_state(item.blob)
        if item.has_sample:
            state.data["rollout_reports"] = list(item.reports)
        program = resume_program(state)
        spec = program.spec
        stop = stage_before(program.pipeline(), spec.debug_stage)
        if stop is not None:
            program.advance(sink=sink, stop_after=stop)
        if program.finished:
            source = program.source()
            report = cached_run_testbench(
                source, item.golden_tb, item.top, cache=cache
            )
            return ResumeOutcome(
                events=sink.events,
                counters=counters,
                finished=True,
                source=source,
                passed=report.passed,
                score=report.score,
            )
        work = spec.debug_plan(program.state)
        return ResumeOutcome(
            events=sink.events,
            counters=counters,
            finished=False,
            blob=program.state if item.inline else program.state.snapshot(),
            work=work,
        )


def rollout_debug_step(
    item: DebugStepTask, cache: SimulationCache | None = None
) -> ResumeOutcome:
    """Apply one debug round's wave-scored reports; draw the next round.

    Pure state evolution plus the next round's trial drawing (LLM
    calls, in-state order, events parked by the program's hook) -- no
    events are emitted here, so the outcome carries none.
    """
    if cache is None:
        cache = process_local_cache(
            item.cache_enabled, item.cache_dir, item.cache_peers
        )
    inner = RuntimeContext(
        executor=SerialExecutor(), cache=cache, gateway=item.gateway
    )
    with _Measured(cache) as counters, runtime_session(context=inner):
        state = item.blob if item.inline else restore_state(item.blob)
        program = resume_program(state)
        work = program.spec.debug_step(program.state, list(item.reports))
        return ResumeOutcome(
            events=[],
            counters=counters,
            finished=False,
            blob=program.state if item.inline else program.state.snapshot(),
            work=work,
        )


def rollout_close(item: CloseTask, cache: SimulationCache | None = None) -> CloseOutcome:
    """Resume one suspended run to completion and golden-score it.

    For sampling-only programs the injected reports are consumed by the
    sampling stage; for debug-staged programs the state already carries
    its completed round record and the debug stage replays it.  Either
    way the remaining stages run pinned-serial and the final source is
    scored against the hidden golden testbench -- the same computation
    a grid cell performs.
    """
    if cache is None:
        cache = process_local_cache(
            item.cache_enabled, item.cache_dir, item.cache_peers
        )
    sink = ListSink()
    inner = RuntimeContext(
        executor=SerialExecutor(), cache=cache, gateway=item.gateway
    )
    with _Measured(cache) as counters, runtime_session(context=inner):
        state = item.blob if item.inline else restore_state(item.blob)
        if item.has_sample:
            state.data["rollout_reports"] = list(item.reports)
        program = resume_program(state)
        program.advance(sink=sink)
        source = program.source()
        report = cached_run_testbench(
            source, item.golden_tb, item.top, cache=cache
        )
    return CloseOutcome(
        source=source,
        passed=report.passed,
        score=report.score,
        events=sink.events,
        counters=counters,
    )


# ----------------------------------------------------------------------
# Work stealing: the published-wave board.
# ----------------------------------------------------------------------


class StealBoard:
    """Score tasks a busy scheduler has published for idle peers.

    Thread-safe and deliberately racy in the benign direction: the
    victim publishes a wave's unique tasks just before dispatching them
    locally, a thief claims some subset over ``WaveSteal`` frames,
    simulates them, and returns the reports via ``CachePut`` into the
    victim's cache fabric.  If the thief is fast, the victim's own
    lookup hits; if it is slow, the victim simulates locally -- the
    simulations are pure, so the results are identical either way and
    the event streams never change.  ``retract`` clears a wave's
    leftovers once the victim has its results, bounding staleness.
    """

    def __init__(self, limit: int = 512):
        self._lock = threading.Lock()
        self._tasks: dict[str, ScoreTask] = {}
        self.limit = limit
        self.published = 0
        self.claimed = 0
        self.retracted = 0

    def publish(self, pairs: list[tuple[str, ScoreTask]]) -> int:
        """Offer (simulation key, task) pairs; returns how many stuck."""
        added = 0
        with self._lock:
            for key, task in pairs:
                if len(self._tasks) >= self.limit or key in self._tasks:
                    continue
                self._tasks[key] = task
                added += 1
            self.published += added
        return added

    def claim(self, max_items: int) -> list[tuple[str, ScoreTask]]:
        """Pop up to ``max_items`` published tasks for a thief."""
        taken: list[tuple[str, ScoreTask]] = []
        with self._lock:
            for key in list(self._tasks):
                if len(taken) >= max(0, max_items):
                    break
                taken.append((key, self._tasks.pop(key)))
            self.claimed += len(taken)
        return taken

    def retract(self, keys: list[str]) -> None:
        with self._lock:
            for key in keys:
                if self._tasks.pop(key, None) is not None:
                    self.retracted += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._tasks)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "pending": len(self._tasks),
                "published": self.published,
                "claimed": self.claimed,
                "retracted": self.retracted,
            }


# ----------------------------------------------------------------------
# Adaptive wave sizing.
# ----------------------------------------------------------------------


class WavePlanner:
    """Sizes waves from measured phase costs (``--rollout-batch auto``).

    The scheduler alternates LLM-bound phases (open, resume, debug
    steps -- parallel across *runs*) with simulation-bound score waves
    (parallel across *candidates*).  Wider waves amortise per-wave
    overhead and widen the dedup window, but delay result streaming;
    the sweet spot depends on the measured cost ratio.  The first wave
    is sized from the process-wide :class:`StageClock` prior (stages
    recorded by earlier runs of the same pipelines); later waves refine
    from what this scheduler actually measured.

    Any width is *correct* -- batched output is width-invariant by the
    determinism contract -- so the planner is free to be a heuristic.
    """

    def __init__(self, workers: int, floor: int = 2, ceiling: int = 64):
        self.workers = max(1, workers)
        self.floor = floor
        self.ceiling = ceiling
        self.open_seconds = 0.0
        self.open_runs = 0
        self.score_seconds = 0.0
        self.score_items = 0
        self.score_runs = 0
        self.widths: list[int] = []
        self.prior_run_seconds = self.stage_prior()

    @staticmethod
    def stage_prior() -> float:
        """Estimated per-run stage cost from the StageClock (0 = none)."""
        total = 0.0
        for row in STAGE_CLOCK.snapshot().values():
            runs = row.get("runs") or 0
            if runs:
                total += row["seconds"] / runs
        return total

    def observe_open(self, runs: int, seconds: float) -> None:
        self.open_runs += runs
        self.open_seconds += seconds

    def observe_score(self, runs: int, items: int, seconds: float) -> None:
        self.score_runs += runs
        self.score_items += items
        self.score_seconds += seconds

    def next_width(self, pending: int) -> int:
        if self.open_runs:
            open_cost = self.open_seconds / self.open_runs
            score_cost = (
                self.score_seconds / self.score_items if self.score_items else 0.0
            )
            items_per_run = (
                self.score_items / self.score_runs if self.score_runs else 1.0
            )
            per_run_sim = score_cost * max(1.0, items_per_run)
            # The more a run's cost is LLM-bound relative to its
            # simulations, the more runs we advance together: their LLM
            # halves overlap across workers while the (cheap) score
            # wave stays short.
            ratio = open_cost / per_run_sim if per_run_sim > 0 else 4.0
            scale = min(6.0, max(1.0, 1.0 + ratio))
            base = int(round(self.workers * scale))
        elif 0.0 < self.prior_run_seconds < 0.05:
            # Prior says runs are cheap: amortise wave overhead harder.
            base = 4 * self.workers
        else:
            base = 2 * self.workers
        width = max(self.floor, base)
        width = min(width, self.ceiling, pending) if pending else 0
        self.widths.append(width)
        return width


@dataclass
class SpeculationStats:
    """Speculative-simulation accounting for one scheduler."""

    launched: int = 0
    used: int = 0
    already_cached: int = 0

    @property
    def mispredicted(self) -> int:
        return max(0, self.launched - self.used)

    def snapshot(self) -> dict:
        return {
            "launched": self.launched,
            "used": self.used,
            "mispredicted": self.mispredicted,
            "already_cached": self.already_cached,
        }


# ----------------------------------------------------------------------
# The scheduler.
# ----------------------------------------------------------------------


@dataclass
class RolloutRequest:
    """One (system, problem, seed) cell submitted to the scheduler.

    ``sink`` receives the run's typed event stream (replayed in phase
    bursts, per-run order preserved); ``fingerprint`` enables solve-cell
    caching for the request (None skips it, exactly like the grid).
    """

    index: int
    factory: Callable[[], object]
    problem: Problem
    golden_tb: Testbench
    seed: int
    sink: object = None
    fingerprint: str | None = None


@dataclass
class RolloutDedupStats:
    """Score-phase dedup accounting, attributed by mechanism.

    ``submitted`` is every task entering a score wave.  Of those,
    ``wave_duplicates`` counts content-identical candidates collapsed
    *within* one coalesced wave; ``fabric_hits`` counts candidates
    served from the fabric's local tiers before dispatch (the memory
    tier dedups across waves of the same scheduler, the disk tier
    across processes); ``remote_hits`` counts candidates a dispatched
    lookup fetched from a peer instead of simulating -- dedup across
    schedulers and machines (measured on the live fabric, so process-
    pool waves, whose peer probes happen inside the children, report
    0 here).  ``executed`` is what was dispatched to the executor; a
    dispatched candidate served by a peer still runs no simulation.
    Invariant: ``submitted == executed + wave_duplicates + fabric_hits``.
    """

    submitted: int = 0
    wave_duplicates: int = 0
    fabric_hits: int = 0
    remote_hits: int = 0
    executed: int = 0

    @property
    def deduped(self) -> int:
        return self.wave_duplicates + self.fabric_hits

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "wave_duplicates": self.wave_duplicates,
            "fabric_hits": self.fabric_hits,
            "remote_hits": self.remote_hits,
            "executed": self.executed,
        }


@dataclass
class RolloutResult:
    """One completed cell (or its error).

    ``error`` is the stringified failure (what the service turns into
    an error frame); ``exception`` keeps the original exception object
    so in-process callers can re-raise with the real type and
    traceback.
    """

    index: int
    problem_id: str
    seed: int
    source: str = ""
    passed: bool = False
    score: float = 0.0
    seconds: float = 0.0
    solve_cached: bool = False
    system: str = ""
    events: list[Event] = field(default_factory=list)
    error: str | None = None
    exception: BaseException | None = field(default=None, repr=False)
    cache_hits: int = 0
    cache_misses: int = 0
    simulations: int = 0


class _StagedRun:
    """Book-keeping for one run riding the debug suspension protocol."""

    __slots__ = (
        "request", "opened", "blob", "work", "seconds", "events", "reports"
    )

    def __init__(self, request: RolloutRequest, opened: OpenOutcome):
        self.request = request
        self.opened = opened
        self.blob: bytes | None = None
        self.work: object | None = None
        self.seconds = 0.0
        self.events: list[Event] = []
        self.reports: tuple = ()


class RolloutScheduler:
    """Gang-schedules sampling and debugging across concurrent runs.

    ``executor`` carries every wave (a
    :class:`~repro.runtime.executor.ProcessExecutor` gives the scoring
    wave true multi-core parallelism; phase payloads are picklable by
    construction, and executors transparently downgrade anything that
    is not).  ``batch`` is the wave width: how many runs advance
    together between suspension points -- an int pins it, ``"auto"``
    hands sizing to a cost-aware :class:`WavePlanner` and enables
    speculation.  ``cache`` fronts every simulation of every wave;
    ``solve_cache`` serves whole repeated cells without touching a wave
    at all.  ``speculate`` forces speculative golden simulation on/off
    (None = on exactly for ``batch="auto"``); ``events`` is the
    batch-level telemetry sink (:class:`WaveScheduled` /
    :class:`SpeculationOutcome` -- never per-run events);
    ``steal_board`` publishes score waves for idle peers.
    """

    def __init__(
        self,
        executor: Executor | None = None,
        batch: int | str = 8,
        cache: SimulationCache | None = None,
        solve_cache: SolveCellCache | None = None,
        gateway: "GatewaySettings | None" = None,
        speculate: bool | None = None,
        events: object = None,
        steal_board: StealBoard | None = None,
    ):
        if isinstance(batch, str):
            if batch != "auto":
                raise ValueError(
                    f"batch must be a positive int or 'auto', not {batch!r}"
                )
            self.adaptive = True
        else:
            if batch < 1:
                raise ValueError("batch must be >= 1")
            self.adaptive = False
        self.executor = executor if executor is not None else SerialExecutor()
        self.batch = batch
        self.cache = cache
        self.solve_cache = solve_cache
        self.gateway = gateway
        self.dedup = RolloutDedupStats()
        self.speculate = self.adaptive if speculate is None else bool(speculate)
        self.events = as_sink(events)
        self.steal_board = steal_board
        self.planner = (
            WavePlanner(self.executor.workers) if self.adaptive else None
        )
        self.speculation = SpeculationStats()
        self._spec_seen: set[str] = set()
        self._spec_launched: set[str] = set()
        self._spec_futures: list[tuple[str, object, bool]] = []
        # In-process executors hand live RunState objects between
        # phases; only a process pool needs pickled snapshots.
        self._inline = self.executor.kind != "process"

    # ------------------------------------------------------------------

    def run(
        self,
        requests: list[RolloutRequest],
        on_result: Callable[[RolloutResult], None] | None = None,
    ) -> list[RolloutResult]:
        """Drive every request to completion; results in request order.

        ``on_result`` streams each completed cell as its wave finishes
        (request order within a wave), so long grids report progress
        wave by wave instead of all at the end.
        """
        results: dict[int, RolloutResult] = {}
        items = list(requests)
        start = 0
        while start < len(items):
            width = (
                self.planner.next_width(len(items) - start)
                if self.planner is not None
                else self.batch
            )
            chunk = items[start : start + max(1, width)]
            start += len(chunk)
            self._run_wave(chunk, results)
            if on_result is not None:
                for request in chunk:
                    on_result(results[request.index])
        if self.speculate:
            self._harvest_speculation()
            self.events.emit(
                SpeculationOutcome(
                    launched=self.speculation.launched,
                    used=self.speculation.used,
                    mispredicted=self.speculation.mispredicted,
                    already_cached=self.speculation.already_cached,
                )
            )
        return [results[request.index] for request in requests]

    # ------------------------------------------------------------------

    def _cached_record(self, request: RolloutRequest):
        if self.solve_cache is None or request.fingerprint is None:
            return None
        try:
            key = solve_cell_key(
                request.fingerprint, request.problem, request.seed
            )
        except Exception:
            return None  # unhashable problem payload: solve live
        return self.solve_cache.get(key)

    def _store_record(
        self, request: RolloutRequest, result: RolloutResult
    ) -> None:
        if self.solve_cache is None or request.fingerprint is None:
            return
        try:
            key = solve_cell_key(
                request.fingerprint, request.problem, request.seed
            )
        except Exception:
            return
        self.solve_cache.put(
            key,
            SolveCellRecord(
                source=result.source,
                system=result.system,
                events=tuple(result.events),
            ),
        )

    # -- speculation ---------------------------------------------------

    def _launch_speculation(
        self, predictions: list[tuple[str, Testbench, str]]
    ) -> None:
        """Fire-and-forget golden simulations of predicted winners.

        Runs on the same executor as the waves, so launched work fills
        idle workers while the next LLM-bound phase is in flight.  Only
        the simulation cache is touched; nothing here can reach an
        event stream.  Serial executors would run the work inline (no
        overlap to win), so speculation needs >= 2 workers.
        """
        if not self.speculate or self.executor.workers < 2:
            return
        for source, testbench, top in predictions:
            try:
                key = simulation_key(source, testbench, top)
            except Exception:
                continue
            if key in self._spec_seen:
                continue
            self._spec_seen.add(key)
            if self.cache is not None and self.cache.peek_local(key) is not None:
                self.speculation.already_cached += 1
                continue
            task = ScoreTask(
                source=source,
                testbench=testbench,
                top=top,
                cache_enabled=self.cache is not None,
                cache_dir=(
                    self.cache.directory if self.cache is not None else None
                ),
                cache_peers=(
                    self.cache.peers if self.cache is not None else ()
                ),
            )
            crossing = self.executor.kind == "process" and _picklable(task)
            if crossing:
                future = self.executor.submit_unchecked(rollout_score, task)
            else:
                future = self.executor.submit(rollout_score, task, self.cache)
            self._spec_futures.append((key, future, crossing))
            self._spec_launched.add(key)
            self.speculation.launched += 1

    def _harvest_speculation(self) -> None:
        """Wait out in-flight speculation; absorb crossing results.

        Called just before a close wave: the futures overlapped the
        LLM-bound phases, so the residual wait is at most one
        simulation.  Process-pool results are absorbed into the local
        fabric so the close phase's lookups hit without re-simulating.
        """
        for key, future, crossing in self._spec_futures:
            try:
                outcome = future.result()
            except Exception:
                continue  # a misprediction that also failed: discard
            if crossing and self.cache is not None:
                self.cache.put_local(key, outcome.report)
        self._spec_futures.clear()

    def _note_golden(self, source: str, request: RolloutRequest) -> None:
        """Credit a speculation whose predicted winner actually won."""
        if not self.speculate:
            return
        try:
            key = simulation_key(
                source, request.golden_tb, request.problem.top
            )
        except Exception:
            return
        if key in self._spec_launched:
            self._spec_launched.discard(key)
            self.speculation.used += 1

    @staticmethod
    def _best_source(sources, outcomes) -> str | None:
        """The highest-scoring source of a scored slice (ties: first)."""
        best, best_score = None, -1.0
        for source, outcome in zip(sources, outcomes):
            if isinstance(outcome, Exception):
                continue
            score = getattr(outcome.report, "score", 0.0)
            if score > best_score:
                best, best_score = source, score
        return best

    # -- waves ---------------------------------------------------------

    def _emit_wave(self, phase: str, width: int, items: int) -> None:
        self.events.emit(
            WaveScheduled(
                phase=phase, width=width, items=items, adaptive=self.adaptive
            )
        )

    def _submit_wave(self, fn, payloads: list) -> list:
        """One coalesced wave: every payload through one executor pass.

        Payloads are probed once for picklability (they are homogeneous);
        process pools then receive self-contained items that resolve
        per-process caches, in-process backends share the live cache.
        Returns one outcome (or the raised exception) per payload, in
        input order.
        """
        if not payloads:
            return []
        crossing = self.executor.kind == "process" and _picklable(payloads[0])
        if crossing:
            futures = [
                self.executor.submit_unchecked(fn, payload)
                for payload in payloads
            ]
        else:
            futures = [
                self.executor.submit(fn, payload, self.cache)
                for payload in payloads
            ]
        outcomes = []
        for future in futures:
            try:
                outcomes.append(future.result())
            except Exception as exc:  # noqa: BLE001 -- per-run error result
                outcomes.append(exc)
        return outcomes

    def _score_wave(self, tasks: list[ScoreTask]) -> list:
        """Score a coalesced wave, deduplicating through the cache fabric.

        Concurrent runs frequently sample identical candidates (T=0
        stages, easy problems).  Dedup happens through the cache fabric
        at every distance, tracked in :attr:`dedup`: content-identical
        tasks *within* the wave are simulated once and the report fanned
        back (``wave_duplicates``); every task is probed against the
        fabric's *local* tiers before dispatch (``fabric_hits``: the
        memory tier carries dedup across the scheduler's own waves, the
        disk tier across processes); and a dispatched task's own counted
        lookup walks the full fabric including remote peers, so a
        candidate simulated on another scheduler or machine is served
        without re-simulating -- one network round-trip per unique cold
        candidate, never two (``remote_hits``, visible for in-process
        executors; process-pool waves probe peers inside the children).
        On process pools the parent fabric absorbs the wave's results
        locally (the children already gossiped them to peers), staying
        the shared medium between waves and phases.

        With a :class:`StealBoard` attached, the unique to-run tasks are
        published just before local dispatch and retracted right after:
        an idle peer that claims some returns their reports through the
        fabric, turning this scheduler's own simulations into lookups.
        """
        if not tasks:
            return []
        self.dedup.submitted += len(tasks)
        crossing = self.executor.kind == "process" and _picklable(tasks[0])
        keyed: list[str | None] = []
        rendered: dict[int, str] = {}  # id(testbench) -> rendered text
        for task in tasks:
            try:
                tb = task.testbench
                if isinstance(tb, str):
                    text = tb
                else:
                    # A wave's tasks overwhelmingly share testbench
                    # objects (all candidates of one run score against
                    # one bench); render each object once per wave, not
                    # once per candidate.
                    text = rendered.get(id(tb))
                    if text is None:
                        text = render_testbench(tb)
                        rendered[id(tb)] = text
                keyed.append(simulation_key(task.source, text, task.top))
            except Exception:
                keyed.append(None)  # unrenderable testbench: never dedup
        ready: dict[int, ScoreOutcome] = {}
        primary: dict[str, int] = {}  # key -> index of the executed task
        to_run: list[int] = []

        def remote_tier_hits() -> int:
            if self.cache is None:
                return 0
            return sum(
                tier.stats.hits
                for tier in self.cache.tiers
                if tier.kind == "remote"
            )

        remote_before = remote_tier_hits()
        for index, key in enumerate(keyed):
            if key is None:
                to_run.append(index)
                continue
            if key in primary:
                self.dedup.wave_duplicates += 1
                continue  # duplicate: reuse the primary's report
            if self.cache is not None:
                report = self.cache.peek_local(key)
                if report is not None:
                    ready[index] = ScoreOutcome(
                        report=report,
                        counters=PhaseCounters(cache_hits=1),
                    )
                    self.dedup.fabric_hits += 1
                    continue
            primary[key] = index
            to_run.append(index)
        self.dedup.executed += len(to_run)
        published: list[str] = []
        if (
            self.steal_board is not None
            and not crossing
            and self.cache is not None
        ):
            # In-process waves simulate through the live fabric, so a
            # thief's CachePut lands where these lookups will find it.
            pairs = [
                (keyed[i], tasks[i]) for i in to_run if keyed[i] is not None
            ]
            if pairs:
                self.steal_board.publish(pairs)
                published = [key for key, _ in pairs]
        outcomes = self._submit_wave(rollout_score, [tasks[i] for i in to_run])
        if published:
            self.steal_board.retract(published)
        self.dedup.remote_hits += remote_tier_hits() - remote_before
        for index, outcome in zip(to_run, outcomes):
            ready[index] = outcome
            key = keyed[index]
            if (
                crossing
                and self.cache is not None
                and key is not None
                and not isinstance(outcome, Exception)
            ):
                # Local absorb only: the worker process's own tiered
                # cache already gossiped the report to every peer.
                self.cache.put_local(key, outcome.report)
        results = []
        for index, key in enumerate(keyed):
            if index in ready:
                results.append(ready[index])
                continue
            outcome = ready[primary[key]]
            if isinstance(outcome, Exception):
                results.append(outcome)
            else:
                results.append(
                    ScoreOutcome(
                        report=outcome.report,
                        counters=PhaseCounters(cache_hits=1),
                    )
                )
        return results

    def _error_result(
        self, request: RolloutRequest, exc: Exception
    ) -> RolloutResult:
        return RolloutResult(
            index=request.index,
            problem_id=request.problem.id,
            seed=request.seed,
            error=f"{type(exc).__name__}: {exc}",
            exception=exc,
        )

    def _cache_fields(self) -> dict:
        return {
            "cache_enabled": self.cache is not None,
            "cache_dir": (
                self.cache.directory if self.cache is not None else None
            ),
            "cache_peers": (
                self.cache.peers if self.cache is not None else ()
            ),
        }

    def _run_wave(
        self,
        wave: list[RolloutRequest],
        results: dict[int, RolloutResult],
    ) -> None:
        # 1. Serve repeats straight from the solve-cell cache (replayed
        #    events, golden re-score through the simulation cache).
        pending: list[RolloutRequest] = []
        for request in wave:
            record = self._cached_record(request)
            if record is None:
                pending.append(request)
                continue
            started = time.perf_counter()
            if request.sink is not None:
                live = as_sink(request.sink)
                for event in record.events:
                    live.emit(event)
            report = cached_run_testbench(
                record.source,
                request.golden_tb,
                request.problem.top,
                cache=self.cache,
            )
            results[request.index] = RolloutResult(
                index=request.index,
                problem_id=request.problem.id,
                seed=request.seed,
                source=record.source,
                passed=report.passed,
                score=report.score,
                seconds=time.perf_counter() - started,
                solve_cached=True,
                system=record.system,
                events=list(record.events),
            )
        if not pending:
            return

        # 2. Open wave: advance every run to its suspension point (or
        #    completion), generation included.
        cache_fields = self._cache_fields()
        state_fields = {**cache_fields, "inline": self._inline}
        cells = [
            RolloutCell(
                index=request.index,
                factory=request.factory,
                problem=request.problem,
                golden_tb=request.golden_tb,
                seed=request.seed,
                gateway=self.gateway,
                **state_fields,
            )
            for request in pending
        ]
        self._emit_wave("open", width=len(pending), items=len(cells))
        open_started = time.perf_counter()
        opens = self._submit_wave(rollout_open, cells)
        if self.planner is not None:
            self.planner.observe_open(
                len(cells), time.perf_counter() - open_started
            )

        alive: list[tuple[RolloutRequest, OpenOutcome]] = []
        for request, opened in zip(pending, opens):
            if isinstance(opened, Exception):
                results[request.index] = self._error_result(request, opened)
                continue
            if request.sink is not None:
                live = as_sink(request.sink)
                for event in opened.events:
                    live.emit(event)
            if opened.finished:
                result = RolloutResult(
                    index=request.index,
                    problem_id=request.problem.id,
                    seed=request.seed,
                    source=opened.source,
                    passed=opened.passed,
                    score=opened.score,
                    seconds=opened.counters.seconds,
                    system=opened.system,
                    events=list(opened.events),
                    cache_hits=opened.counters.cache_hits,
                    cache_misses=opened.counters.cache_misses,
                    simulations=opened.counters.simulations,
                )
                results[request.index] = result
                self._store_record(request, result)
            else:
                alive.append((request, opened))
        if not alive:
            return

        # 3. THE coalesced wave: every pending candidate of every
        #    in-flight run, scored through one executor pass.
        tasks: list[ScoreTask] = []
        spans: list[tuple[int, int]] = []
        for _, opened in alive:
            sources = opened.sample.sources if opened.sample is not None else ()
            begin = len(tasks)
            for source in sources:
                tasks.append(
                    ScoreTask(
                        source=source,
                        testbench=opened.sample.testbench,
                        top=opened.sample.top,
                        **cache_fields,
                    )
                )
            spans.append((begin, len(tasks)))
        self._emit_wave("score", width=len(alive), items=len(tasks))
        score_started = time.perf_counter()
        scored = self._score_wave(tasks)
        if self.planner is not None:
            self.planner.observe_score(
                len(alive), len(tasks), time.perf_counter() - score_started
            )

        # 4. Partition the survivors.  Programs exposing the debug
        #    suspension protocol take the staged road (resume to the
        #    debug point, gang-scheduled rounds); the rest close
        #    directly with their sampling reports injected.
        #    ``closers`` collects (request, opened, pre-close seconds,
        #    pre-close events, close task) for the single final wave.
        closers: list = []
        staged: list[_StagedRun] = []
        for (request, opened), (begin, end) in zip(alive, spans):
            slice_outcomes = scored[begin:end]
            failed = next(
                (o for o in slice_outcomes if isinstance(o, Exception)), None
            )
            if failed is not None:
                results[request.index] = self._error_result(request, failed)
                continue
            score_seconds = sum(o.counters.seconds for o in slice_outcomes)
            for outcome in slice_outcomes:
                opened.counters.absorb(outcome.counters)
            # Speculation point one: the sampled candidates are scored
            # but ranking/debugging (LLM-bound) has not run yet -- warm
            # the golden sim of the best-scoring candidate, the likely
            # final winner (certain on a sampled-pass early finish).
            sources = opened.sample.sources if opened.sample is not None else ()
            best = self._best_source(sources, slice_outcomes)
            if best is not None:
                self._launch_speculation(
                    [(best, request.golden_tb, request.problem.top)]
                )
            if opened.has_debug:
                run = _StagedRun(request, opened)
                run.seconds = score_seconds
                run.reports = tuple(o.report for o in slice_outcomes)
                staged.append(run)
            else:
                closers.append(
                    (
                        request,
                        opened,
                        score_seconds,
                        [],
                        CloseTask(
                            blob=opened.blob,
                            reports=tuple(o.report for o in slice_outcomes),
                            has_sample=opened.sample is not None,
                            golden_tb=request.golden_tb,
                            top=request.problem.top,
                            gateway=self.gateway,
                            **state_fields,
                        ),
                    )
                )

        # 5. Resume wave: staged runs advance to the debug suspension
        #    point (sampling stage consumes its reports; first debug
        #    round's trials drawn in-state).
        if staged:
            resume_tasks = [
                ResumeTask(
                    blob=run.opened.blob,
                    reports=run.reports,
                    has_sample=run.opened.sample is not None,
                    golden_tb=run.request.golden_tb,
                    top=run.request.problem.top,
                    gateway=self.gateway,
                    **state_fields,
                )
                for run in staged
            ]
            self._emit_wave("resume", width=len(staged), items=len(resume_tasks))
            resumes = self._submit_wave(rollout_resume, resume_tasks)
            active: list[_StagedRun] = []
            for run, outcome in zip(staged, resumes):
                if isinstance(outcome, Exception):
                    results[run.request.index] = self._error_result(
                        run.request, outcome
                    )
                    continue
                if run.request.sink is not None:
                    live = as_sink(run.request.sink)
                    for event in outcome.events:
                        live.emit(event)
                run.events.extend(outcome.events)
                run.seconds += outcome.counters.seconds
                run.opened.counters.absorb(outcome.counters)
                if outcome.finished:
                    result = RolloutResult(
                        index=run.request.index,
                        problem_id=run.request.problem.id,
                        seed=run.request.seed,
                        source=outcome.source,
                        passed=outcome.passed,
                        score=outcome.score,
                        seconds=run.opened.counters.seconds + run.seconds,
                        system=run.opened.system,
                        events=list(run.opened.events) + run.events,
                        cache_hits=run.opened.counters.cache_hits,
                        cache_misses=run.opened.counters.cache_misses,
                        simulations=run.opened.counters.simulations,
                    )
                    results[run.request.index] = result
                    self._store_record(run.request, result)
                    self._note_golden(outcome.source, run.request)
                    continue
                run.blob = outcome.blob
                run.work = outcome.work
                active.append(run)

            # 6. Gang-scheduled debug rounds: every active run's pending
            #    trials coalesce into one shared deduplicated score wave
            #    per round, then one step wave draws the next round.
            while True:
                working = [run for run in active if run.work is not None]
                if not working:
                    break
                dtasks: list[ScoreTask] = []
                dspans: list[tuple[int, int]] = []
                for run in working:
                    begin = len(dtasks)
                    for source in run.work.sources:
                        dtasks.append(
                            ScoreTask(
                                source=source,
                                testbench=run.work.testbench,
                                top=run.work.top,
                                **cache_fields,
                            )
                        )
                    dspans.append((begin, len(dtasks)))
                self._emit_wave(
                    "debug-score", width=len(working), items=len(dtasks)
                )
                dscored = self._score_wave(dtasks)
                step_runs: list[_StagedRun] = []
                step_tasks: list[DebugStepTask] = []
                for run, (begin, end) in zip(working, dspans):
                    slice_outcomes = dscored[begin:end]
                    failed = next(
                        (o for o in slice_outcomes if isinstance(o, Exception)),
                        None,
                    )
                    if failed is not None:
                        results[run.request.index] = self._error_result(
                            run.request, failed
                        )
                        active.remove(run)
                        continue
                    run.seconds += sum(
                        o.counters.seconds for o in slice_outcomes
                    )
                    for outcome in slice_outcomes:
                        run.opened.counters.absorb(outcome.counters)
                    # Speculation point two: while the next round's
                    # trial drawing (LLM) runs, warm the golden sim of
                    # this round's best trial -- the winner if the loop
                    # terminates here.
                    best = self._best_source(
                        run.work.sources, slice_outcomes
                    )
                    if best is not None:
                        self._launch_speculation(
                            [
                                (
                                    best,
                                    run.request.golden_tb,
                                    run.request.problem.top,
                                )
                            ]
                        )
                    step_runs.append(run)
                    step_tasks.append(
                        DebugStepTask(
                            blob=run.blob,
                            reports=tuple(o.report for o in slice_outcomes),
                            gateway=self.gateway,
                            **state_fields,
                        )
                    )
                self._emit_wave(
                    "debug-step", width=len(step_runs), items=len(step_tasks)
                )
                steps = self._submit_wave(rollout_debug_step, step_tasks)
                for run, outcome in zip(step_runs, steps):
                    if isinstance(outcome, Exception):
                        results[run.request.index] = self._error_result(
                            run.request, outcome
                        )
                        active.remove(run)
                        continue
                    run.seconds += outcome.counters.seconds
                    run.opened.counters.absorb(outcome.counters)
                    run.blob = outcome.blob
                    run.work = outcome.work

            for run in active:
                closers.append(
                    (
                        run.request,
                        run.opened,
                        run.seconds,
                        run.events,
                        CloseTask(
                            blob=run.blob,
                            reports=(),
                            has_sample=False,
                            golden_tb=run.request.golden_tb,
                            top=run.request.problem.top,
                            gateway=self.gateway,
                            **state_fields,
                        ),
                    )
                )

        # 7. Close wave: resume to completion, golden-score.  In-flight
        #    speculation is harvested first, so predicted winners close
        #    as cache hits.
        if not closers:
            return
        self._harvest_speculation()
        close_tasks = [entry[4] for entry in closers]
        self._emit_wave("close", width=len(closers), items=len(close_tasks))
        closes = self._submit_wave(rollout_close, close_tasks)

        for (request, opened, pre_seconds, pre_events, _), closed in zip(
            closers, closes
        ):
            if isinstance(closed, Exception):
                results[request.index] = self._error_result(request, closed)
                continue
            if request.sink is not None:
                live = as_sink(request.sink)
                for event in closed.events:
                    live.emit(event)
            result = RolloutResult(
                index=request.index,
                problem_id=request.problem.id,
                seed=request.seed,
                source=closed.source,
                passed=closed.passed,
                score=closed.score,
                seconds=(
                    opened.counters.seconds
                    + pre_seconds
                    + closed.counters.seconds
                ),
                system=opened.system,
                events=(
                    list(opened.events) + list(pre_events) + list(closed.events)
                ),
                cache_hits=(
                    opened.counters.cache_hits + closed.counters.cache_hits
                ),
                cache_misses=(
                    opened.counters.cache_misses + closed.counters.cache_misses
                ),
                simulations=(
                    opened.counters.simulations + closed.counters.simulations
                ),
            )
            results[request.index] = result
            self._store_record(request, result)
            self._note_golden(closed.source, request)
