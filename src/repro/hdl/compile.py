"""One-call helpers: source text to Design / Simulation."""

from __future__ import annotations

from repro.hdl.design import Design
from repro.hdl.elaborator import Elaborator
from repro.hdl.parser import parse_source
from repro.hdl.simulator import Simulation


def compile_design(
    source: str,
    top: str | None = None,
    overrides: dict[str, int] | None = None,
) -> Design:
    """Parse and elaborate Verilog source into a flat design.

    ``top`` defaults to the last module in the file (matching the common
    convention of placing the top module last).
    """
    tree = parse_source(source)
    top_name = tree.module(top).name
    return Elaborator.from_source(tree).elaborate(top_name, overrides)


def simulate(
    source: str,
    top: str | None = None,
    overrides: dict[str, int] | None = None,
) -> Simulation:
    """Compile and return a ready-to-drive :class:`Simulation`."""
    return Simulation(compile_design(source, top, overrides))
