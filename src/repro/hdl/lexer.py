"""Tokenizer for the synthesizable Verilog subset.

Produces a flat list of :class:`Token` with precise source locations.
Based number literals (``8'hFF``, ``4'b10x0``) are converted to
:class:`~repro.hdl.values.LogicVec` here; unsized decimals follow the
Verilog convention of a 32-bit self-determined size.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.hdl.errors import LexError, SourceLoc
from repro.hdl.values import LogicVec

KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "reg",
        "integer",
        "parameter",
        "localparam",
        "assign",
        "always",
        "initial",
        "begin",
        "end",
        "if",
        "else",
        "case",
        "casez",
        "casex",
        "endcase",
        "default",
        "for",
        "posedge",
        "negedge",
        "or",
        "signed",
        "function",
        "endfunction",
        "generate",
        "endgenerate",
        "genvar",
    }
)

# Longest-match first.
_OPERATORS = [
    "<<<",
    ">>>",
    "===",
    "!==",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "**",
    "~&",
    "~|",
    "~^",
    "^~",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "?",
    ":",
    ",",
    ";",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ".",
    "@",
    "#",
]


class TokKind(Enum):
    """Lexical categories."""

    IDENT = auto()
    KEYWORD = auto()
    NUMBER = auto()
    OP = auto()
    STRING = auto()
    SYSNAME = auto()  # $display, $signed, ...
    EOF = auto()


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``value`` holds a :class:`LogicVec` for NUMBER tokens and the raw
    text otherwise.
    """

    kind: TokKind
    text: str
    loc: SourceLoc
    value: LogicVec | None = None

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.loc})"


_BASE_BITS = {"b": 1, "o": 3, "h": 4}
_HEX_DIGITS = "0123456789abcdef"


def _parse_based_digits(
    digits: str, base: str, width: int, signed: bool, loc: SourceLoc
) -> LogicVec:
    """Parse the digit body of a based literal into a LogicVec."""
    digits = digits.replace("_", "")
    if not digits:
        raise LexError("empty number literal", loc)
    if base == "d":
        if any(c in "xXzZ?" for c in digits):
            if len(digits) != 1:
                raise LexError(f"bad decimal literal digits {digits!r}", loc)
            return LogicVec.all_x(width, signed)
        try:
            value = int(digits, 10)
        except ValueError:
            raise LexError(f"bad decimal literal digits {digits!r}", loc) from None
        return LogicVec.from_int(value, width, signed)
    bits_per = _BASE_BITS[base]
    val = 0
    xmask = 0
    for ch in digits.lower():
        val <<= bits_per
        xmask <<= bits_per
        if ch in "xz?":
            xmask |= (1 << bits_per) - 1
        else:
            d = _HEX_DIGITS.find(ch)
            if d < 0 or d >= (1 << bits_per):
                raise LexError(f"digit {ch!r} invalid for base '{base}'", loc)
            val |= d
    return LogicVec(width, val, xmask, signed)


class Lexer:
    """Single-pass tokenizer with // and /* */ comment handling."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _loc(self) -> SourceLoc:
        return SourceLoc(self.line, self.col)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        # Returns "\0" past end-of-input so character-class membership
        # tests ("" in "_$" is vacuously True!) stay safe.
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else "\0"

    def tokenize(self) -> list[Token]:
        """Tokenize the whole source; always ends with an EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(Token(TokKind.EOF, "", self._loc()))
                return tokens
            tokens.append(self._next_token())

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            elif ch == "`":
                # Compiler directives (`timescale, `default_nettype ...):
                # skip to end of line; our subset does not interpret them.
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        loc = self._loc()
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._lex_ident(loc)
        if ch.isdigit() or (ch == "'" and self._peek(1).lower() in "sbodh"):
            return self._lex_number(loc)
        if ch == "$":
            return self._lex_sysname(loc)
        if ch == '"':
            return self._lex_string(loc)
        for op in _OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokKind.OP, op, loc)
        raise LexError(f"unexpected character {ch!r}", loc)

    def _lex_ident(self, loc: SourceLoc) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() in "_$":
            self._advance()
        text = self.source[start : self.pos]
        kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
        return Token(kind, text, loc)

    def _lex_sysname(self, loc: SourceLoc) -> Token:
        start = self.pos
        self._advance()  # $
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        return Token(TokKind.SYSNAME, self.source[start : self.pos], loc)

    def _lex_string(self, loc: SourceLoc) -> Token:
        self._advance()  # opening quote
        start = self.pos
        while self._peek() != '"':
            if self.pos >= len(self.source) or self._peek() == "\n":
                raise LexError("unterminated string literal", loc)
            if self._peek() == "\\":
                self._advance()
            self._advance()
        text = self.source[start : self.pos]
        self._advance()  # closing quote
        return Token(TokKind.STRING, text, loc)

    def _lex_number(self, loc: SourceLoc) -> Token:
        start = self.pos
        size_digits = ""
        while self._peek().isdigit() or self._peek() == "_":
            size_digits += self._peek()
            self._advance()
        self._skip_trivia()
        if self._peek() != "'":
            # Unsized decimal: 32-bit signed per Verilog convention.
            text = size_digits.replace("_", "")
            if not text:
                raise LexError("malformed number", loc)
            value = LogicVec.from_int(int(text), 32, signed=True)
            return Token(TokKind.NUMBER, size_digits, loc, value)
        self._advance()  # '
        signed = False
        if self._peek().lower() == "s":
            signed = True
            self._advance()
        base = self._peek().lower()
        if base not in "bodh":
            raise LexError(f"bad number base {self._peek()!r}", loc)
        self._advance()
        self._skip_trivia()
        digit_start = self.pos
        while self._peek().isalnum() or self._peek() in "_?":
            self._advance()
        digits = self.source[digit_start : self.pos]
        width = int(size_digits.replace("_", "")) if size_digits.strip("_") else 32
        if width < 1:
            raise LexError("literal width must be >= 1", loc)
        value = _parse_based_digits(digits, base, width, signed, loc)
        return Token(TokKind.NUMBER, self.source[start : self.pos], loc, value)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: tokenize ``source`` into a token list."""
    return Lexer(source).tokenize()
