"""Signal dependency graphs and cones of influence.

The debug model uses :func:`outputs_in_cone` to decide whether a fault
at some signal can explain an observed output mismatch -- the mechanism
behind the paper's claim that state checkpoints give *targeted* fixes.
"""

from __future__ import annotations

import networkx as nx

from repro.hdl.design import Design


def dependency_graph(design: Design) -> "nx.DiGraph":
    """Directed graph with an edge ``a -> b`` when ``a`` influences ``b``.

    Both combinational and clocked processes contribute edges from every
    read signal to every written signal; clock/reset edge sources also
    influence the registers their process writes.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(design.signals)
    graph.add_nodes_from(design.memories)
    for proc in design.processes:
        sources = set(proc.reads)
        for _, clock in proc.edges:
            sources.add(clock)
        for target in proc.writes:
            for source in sources:
                if source != target:
                    graph.add_edge(source, target)
    return graph


def cone_of_influence(design: Design, signal: str) -> frozenset[str]:
    """All signals transitively affected by ``signal`` (inclusive)."""
    graph = dependency_graph(design)
    if signal not in graph:
        return frozenset()
    return frozenset(nx.descendants(graph, signal) | {signal})


def fan_in_cone(design: Design, signal: str) -> frozenset[str]:
    """All signals that can transitively affect ``signal`` (inclusive)."""
    graph = dependency_graph(design)
    if signal not in graph:
        return frozenset()
    return frozenset(nx.ancestors(graph, signal) | {signal})


def outputs_in_cone(design: Design, signal: str) -> frozenset[str]:
    """Top-level outputs that ``signal`` can influence."""
    cone = cone_of_influence(design, signal)
    return frozenset(name for name in design.outputs if name in cone)
