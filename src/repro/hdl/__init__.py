"""Pure-Python Verilog substrate: frontend, elaboration, and simulation.

This package replaces Icarus Verilog in the MAGE reproduction.  It provides:

- :mod:`repro.hdl.values` -- 4-state logic vectors with Verilog operator
  semantics (X propagation, signed arithmetic, reductions).
- :mod:`repro.hdl.lexer`, :mod:`repro.hdl.parser`,
  :mod:`repro.hdl.ast_nodes` -- a frontend for the synthesizable subset.
- :mod:`repro.hdl.unparse` -- AST back to Verilog source.
- :mod:`repro.hdl.elaborator` -- parameter resolution and hierarchy
  flattening into a simulatable design.
- :mod:`repro.hdl.simulator` -- an event-driven simulation kernel with
  delta cycles and nonblocking-assignment semantics.
- :mod:`repro.hdl.lint` -- diagnostics used by the agents' syntax-fix loop.
- :mod:`repro.hdl.deps` -- signal dependency graphs / cones of influence.
"""

from repro.hdl.errors import (
    ElaborationError,
    HdlError,
    LexError,
    ParseError,
    SimulationError,
)
from repro.hdl.values import LogicVec

__all__ = [
    "ElaborationError",
    "HdlError",
    "LexError",
    "LogicVec",
    "ParseError",
    "SimulationError",
]
