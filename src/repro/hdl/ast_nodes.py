"""AST node definitions for the synthesizable Verilog subset.

Nodes are plain dataclasses so that the mutation engine
(:mod:`repro.llm.mutation`) can transform them structurally and the
unparser (:mod:`repro.hdl.unparse`) can turn them back into source.
Every node carries a :class:`~repro.hdl.errors.SourceLoc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hdl.errors import SourceLoc
from repro.hdl.values import LogicVec

_NOLOC = SourceLoc(0, 0)


@dataclass(frozen=True)
class Node:
    """Base class for all AST nodes."""

    loc: SourceLoc = field(default=_NOLOC, kw_only=True, compare=False)

    def clone(self, **changes):
        """Shallow copy with field overrides (dataclasses.replace)."""
        return replace(self, **changes)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Expr(Node):
    """Base class for expressions."""


@dataclass(frozen=True)
class Number(Expr):
    """A literal value, e.g. ``8'hFF`` or ``42``."""

    value: LogicVec
    text: str | None = None  # original spelling, preserved by unparse


@dataclass(frozen=True)
class Ident(Expr):
    """A reference to a signal, parameter, or genvar."""

    name: str


@dataclass(frozen=True)
class BitSelect(Expr):
    """``base[index]`` -- also used for memory word selects."""

    base: Expr
    index: Expr


@dataclass(frozen=True)
class PartSelect(Expr):
    """``base[msb:lsb]`` with constant bounds."""

    base: Expr
    msb: Expr
    lsb: Expr


@dataclass(frozen=True)
class IndexedPartSelect(Expr):
    """``base[start +: width]`` / ``base[start -: width]``."""

    base: Expr
    start: Expr
    width: Expr
    down: bool = False


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operator: ``~ ! - + & | ^ ~& ~| ~^``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operator, from ``**`` down to ``||``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    """Conditional operator ``cond ? then : els``."""

    cond: Expr
    then: Expr
    els: Expr


@dataclass(frozen=True)
class Concat(Expr):
    """``{a, b, c}`` -- MSB-first concatenation."""

    parts: tuple[Expr, ...]


@dataclass(frozen=True)
class Replicate(Expr):
    """``{count{expr}}`` replication."""

    count: Expr
    inner: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    """User function call or system function (``$signed``, ``$unsigned``)."""

    name: str
    args: tuple[Expr, ...]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt(Node):
    """Base class for procedural statements."""


@dataclass(frozen=True)
class Block(Stmt):
    """``begin ... end``, optionally named."""

    stmts: tuple[Stmt, ...]
    name: str | None = None


@dataclass(frozen=True)
class If(Stmt):
    """``if (cond) then_stmt [else else_stmt]``."""

    cond: Expr
    then_stmt: Stmt
    else_stmt: Stmt | None = None


@dataclass(frozen=True)
class CaseItem(Node):
    """One arm of a case statement; ``exprs`` empty means ``default``."""

    exprs: tuple[Expr, ...]
    body: Stmt


@dataclass(frozen=True)
class Case(Stmt):
    """``case``/``casez``/``casex`` statement."""

    kind: str  # "case" | "casez" | "casex"
    subject: Expr
    items: tuple[CaseItem, ...]


@dataclass(frozen=True)
class For(Stmt):
    """Bounded ``for`` loop with blocking-assignment init/step."""

    init: "BlockingAssign"
    cond: Expr
    step: "BlockingAssign"
    body: Stmt


@dataclass(frozen=True)
class BlockingAssign(Stmt):
    """``lhs = rhs;``"""

    target: Expr
    value: Expr


@dataclass(frozen=True)
class NonblockingAssign(Stmt):
    """``lhs <= rhs;``"""

    target: Expr
    value: Expr


@dataclass(frozen=True)
class SysCall(Stmt):
    """System task call, e.g. ``$display(...)``; simulated as a no-op."""

    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class NullStmt(Stmt):
    """A lone ``;``."""


# ----------------------------------------------------------------------
# Module items
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Range(Node):
    """A ``[msb:lsb]`` range with elaboration-time-constant bounds."""

    msb: Expr
    lsb: Expr


@dataclass(frozen=True)
class ModuleItem(Node):
    """Base class for items in a module body."""


@dataclass(frozen=True)
class PortDecl(ModuleItem):
    """Port declaration (ANSI header or body style)."""

    direction: str  # "input" | "output" | "inout"
    net_kind: str  # "wire" | "reg"
    signed: bool
    range: Range | None
    names: tuple[str, ...]


@dataclass(frozen=True)
class NetDecl(ModuleItem):
    """``wire``/``reg``/``integer`` declaration, optionally a memory array."""

    net_kind: str  # "wire" | "reg" | "integer" | "genvar"
    signed: bool
    range: Range | None
    names: tuple[str, ...]
    array_range: Range | None = None
    init: Expr | None = None  # only for `wire name = expr;`


@dataclass(frozen=True)
class ParamDecl(ModuleItem):
    """``parameter`` / ``localparam`` declaration."""

    local: bool
    name: str
    value: Expr
    range: Range | None = None
    signed: bool = False


@dataclass(frozen=True)
class ContinuousAssign(ModuleItem):
    """``assign lhs = rhs;``"""

    target: Expr
    value: Expr


@dataclass(frozen=True)
class EdgeEvent(Node):
    """One event in a sensitivity list."""

    edge: str  # "pos" | "neg" | "level"
    signal: Expr


@dataclass(frozen=True)
class Sensitivity(Node):
    """``@(*)`` or an explicit event list."""

    star: bool
    events: tuple[EdgeEvent, ...] = ()

    @property
    def is_clocked(self) -> bool:
        """True when any event is edge-triggered."""
        return any(e.edge in ("pos", "neg") for e in self.events)


@dataclass(frozen=True)
class AlwaysBlock(ModuleItem):
    """``always @(...) body``."""

    sensitivity: Sensitivity
    body: Stmt


@dataclass(frozen=True)
class InitialBlock(ModuleItem):
    """``initial body`` -- used for register initialisation only."""

    body: Stmt


@dataclass(frozen=True)
class FunctionDecl(ModuleItem):
    """A simple synthesizable ``function`` (single return assignment style)."""

    name: str
    range: Range | None
    signed: bool
    inputs: tuple[tuple[str, Range | None, bool], ...]  # (name, range, signed)
    locals: tuple[NetDecl, ...]
    body: Stmt


@dataclass(frozen=True)
class PortConnection(Node):
    """One port binding on an instance; ``name`` None for ordered style."""

    name: str | None
    expr: Expr | None


@dataclass(frozen=True)
class Instance(ModuleItem):
    """Submodule instantiation with optional parameter overrides."""

    module_name: str
    inst_name: str
    params: tuple[tuple[str | None, Expr], ...]
    ports: tuple[PortConnection, ...]


@dataclass(frozen=True)
class Module(Node):
    """A Verilog module: header ports plus body items."""

    name: str
    ports: tuple[str, ...]
    items: tuple[ModuleItem, ...]


@dataclass(frozen=True)
class SourceFile(Node):
    """A parsed source file: one or more modules."""

    modules: tuple[Module, ...]

    def module(self, name: str | None = None) -> Module:
        """Look up a module by name, or return the sole/last module."""
        if name is None:
            if not self.modules:
                raise ValueError("source file contains no modules")
            return self.modules[-1]
        for mod in self.modules:
            if mod.name == name:
                return mod
        raise KeyError(f"no module named {name!r}")
