"""4-state logic vectors with Verilog operator semantics.

A :class:`LogicVec` models a Verilog value of a fixed bit width.  Each bit
is one of ``0``, ``1`` or ``x``; the high-impedance state ``z`` is folded
into ``x`` (sufficient for the synthesizable subset, where ``z`` only
arises from undriven nets).

Representation: two Python integers used as bit masks.

- ``val``   -- bits that are known ``1``
- ``xmask`` -- bits that are unknown (``x``)

Invariants (enforced by the constructor):

- ``val & xmask == 0`` (an ``x`` bit carries no value)
- both masks fit in ``width`` bits

Semantics follow IEEE 1364 for the implemented operators:

- bitwise ops use per-bit dominance (``0 & x == 0``, ``1 | x == 1``)
- arithmetic with any ``x`` operand bit yields an all-``x`` result
- ``==``/``!=``/relational with ``x`` participation yield 1-bit ``x``
- ``===``/``!==`` compare the 4-state patterns exactly
- reductions honour dominance the same way bitwise ops do

All operations are pure; ``LogicVec`` instances are immutable.
"""

from __future__ import annotations

from dataclasses import dataclass


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class LogicVec:
    """An immutable fixed-width 4-state logic vector."""

    width: int
    val: int
    xmask: int = 0
    signed: bool = False

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"LogicVec width must be >= 1, got {self.width}")
        m = _mask(self.width)
        object.__setattr__(self, "xmask", self.xmask & m)
        object.__setattr__(self, "val", self.val & m & ~self.xmask)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_int(value: int, width: int, signed: bool = False) -> "LogicVec":
        """Build a fully-known vector from a Python integer (two's complement)."""
        return LogicVec(width, value & _mask(width), 0, signed)

    @staticmethod
    def all_x(width: int, signed: bool = False) -> "LogicVec":
        """Build a vector with every bit unknown."""
        return LogicVec(width, 0, _mask(width), signed)

    @staticmethod
    def from_bits(bits: str, signed: bool = False) -> "LogicVec":
        """Build from a binary string such as ``"10x1"`` (MSB first).

        ``x``/``z`` (either case) are unknown bits; ``_`` separators are
        ignored, matching Verilog literal syntax.
        """
        clean = bits.replace("_", "")
        if not clean:
            raise ValueError("empty bit string")
        val = 0
        xmask = 0
        for ch in clean:
            val <<= 1
            xmask <<= 1
            if ch == "1":
                val |= 1
            elif ch == "0":
                pass
            elif ch in "xXzZ?":
                xmask |= 1
            else:
                raise ValueError(f"bad bit character {ch!r}")
        return LogicVec(len(clean), val, xmask, signed)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def is_fully_known(self) -> bool:
        """True when no bit is ``x``."""
        return self.xmask == 0

    @property
    def has_x(self) -> bool:
        """True when at least one bit is ``x``."""
        return self.xmask != 0

    def to_uint(self) -> int:
        """Unsigned integer value; raises if any bit is unknown."""
        if self.xmask:
            raise ValueError(f"cannot convert {self} with x bits to int")
        return self.val

    def to_int(self) -> int:
        """Integer value honouring the ``signed`` flag; raises on ``x``."""
        u = self.to_uint()
        if self.signed and (u >> (self.width - 1)) & 1:
            return u - (1 << self.width)
        return u

    def bit(self, index: int) -> "LogicVec":
        """Single-bit select.  Out-of-range indices read as ``x``."""
        if index < 0 or index >= self.width:
            return LogicVec.all_x(1)
        return LogicVec(1, (self.val >> index) & 1, (self.xmask >> index) & 1)

    def slice(self, msb: int, lsb: int) -> "LogicVec":
        """Part select ``[msb:lsb]``.  Out-of-range bits read as ``x``."""
        if msb < lsb:
            raise ValueError(f"part select [{msb}:{lsb}] has msb < lsb")
        width = msb - lsb + 1
        if lsb >= self.width or msb < 0:
            return LogicVec.all_x(width)
        val = (self.val >> max(lsb, 0)) if lsb >= 0 else (self.val << -lsb)
        xm = (self.xmask >> max(lsb, 0)) if lsb >= 0 else (self.xmask << -lsb)
        out_of_range = 0
        for i in range(width):
            src = lsb + i
            if src < 0 or src >= self.width:
                out_of_range |= 1 << i
        return LogicVec(width, val, xm | out_of_range)

    def resize(self, width: int, signed: bool | None = None) -> "LogicVec":
        """Zero/sign extend or truncate to ``width``.

        Sign (or ``x``-sign) extension applies when the vector is signed;
        ``signed`` overrides the result's signedness flag.
        """
        out_signed = self.signed if signed is None else signed
        if width == self.width:
            return LogicVec(width, self.val, self.xmask, out_signed)
        if width < self.width:
            m = _mask(width)
            return LogicVec(width, self.val & m, self.xmask & m, out_signed)
        ext = width - self.width
        top = self.width - 1
        val = self.val
        xm = self.xmask
        if self.signed:
            if (xm >> top) & 1:
                xm |= _mask(ext) << self.width
            elif (val >> top) & 1:
                val |= _mask(ext) << self.width
        return LogicVec(width, val, xm, out_signed)

    def as_signed(self) -> "LogicVec":
        return LogicVec(self.width, self.val, self.xmask, True)

    def as_unsigned(self) -> "LogicVec":
        return LogicVec(self.width, self.val, self.xmask, False)

    # ------------------------------------------------------------------
    # Truthiness (for logical ops and conditions)
    # ------------------------------------------------------------------

    def truth(self) -> "LogicVec":
        """Verilog truthiness as a 1-bit value.

        True when any bit is known ``1``; false when every bit is known
        ``0``; ``x`` otherwise.
        """
        if self.val:
            return LogicVec(1, 1)
        if self.xmask:
            return LogicVec.all_x(1)
        return LogicVec(1, 0)

    def is_true(self) -> bool:
        """Python-level: condition taken (known 1 somewhere)."""
        return self.val != 0

    def is_false(self) -> bool:
        """Python-level: condition definitely not taken."""
        return self.val == 0 and self.xmask == 0

    # ------------------------------------------------------------------
    # Bitwise operators
    # ------------------------------------------------------------------

    def _coerce(self, other: "LogicVec") -> tuple["LogicVec", "LogicVec", int, bool]:
        width = max(self.width, other.width)
        signed = self.signed and other.signed
        return (self.resize(width), other.resize(width), width, signed)

    def bit_and(self, other: "LogicVec") -> "LogicVec":
        a, b, width, signed = self._coerce(other)
        known0 = (~a.val & ~a.xmask) | (~b.val & ~b.xmask)
        xm = (a.xmask | b.xmask) & ~known0 & _mask(width)
        return LogicVec(width, a.val & b.val, xm, signed)

    def bit_or(self, other: "LogicVec") -> "LogicVec":
        a, b, width, signed = self._coerce(other)
        known1 = a.val | b.val
        xm = (a.xmask | b.xmask) & ~known1 & _mask(width)
        return LogicVec(width, known1 & ~xm, xm, signed)

    def bit_xor(self, other: "LogicVec") -> "LogicVec":
        a, b, width, signed = self._coerce(other)
        xm = a.xmask | b.xmask
        return LogicVec(width, (a.val ^ b.val) & ~xm, xm, signed)

    def bit_xnor(self, other: "LogicVec") -> "LogicVec":
        return self.bit_xor(other).bit_not()

    def bit_not(self) -> "LogicVec":
        m = _mask(self.width)
        return LogicVec(
            self.width, ~self.val & m & ~self.xmask, self.xmask, self.signed
        )

    # ------------------------------------------------------------------
    # Arithmetic (any x => all x, per IEEE 1364)
    # ------------------------------------------------------------------

    def _arith_ints(self, other: "LogicVec") -> tuple[int, int, int, bool] | None:
        a, b, width, signed = self._coerce(other)
        if a.xmask or b.xmask:
            return None
        if signed:
            return (a.as_signed().to_int(), b.as_signed().to_int(), width, signed)
        return (a.val, b.val, width, signed)

    def add(self, other: "LogicVec") -> "LogicVec":
        ints = self._arith_ints(other)
        if ints is None:
            return LogicVec.all_x(max(self.width, other.width))
        x, y, width, signed = ints
        return LogicVec(width, (x + y) & _mask(width), 0, signed)

    def sub(self, other: "LogicVec") -> "LogicVec":
        ints = self._arith_ints(other)
        if ints is None:
            return LogicVec.all_x(max(self.width, other.width))
        x, y, width, signed = ints
        return LogicVec(width, (x - y) & _mask(width), 0, signed)

    def mul(self, other: "LogicVec") -> "LogicVec":
        ints = self._arith_ints(other)
        if ints is None:
            return LogicVec.all_x(max(self.width, other.width))
        x, y, width, signed = ints
        return LogicVec(width, (x * y) & _mask(width), 0, signed)

    def div(self, other: "LogicVec") -> "LogicVec":
        ints = self._arith_ints(other)
        if ints is None or ints[1] == 0:
            return LogicVec.all_x(max(self.width, other.width))
        x, y, width, signed = ints
        q = abs(x) // abs(y)
        if (x < 0) != (y < 0):
            q = -q
        return LogicVec(width, q & _mask(width), 0, signed)

    def mod(self, other: "LogicVec") -> "LogicVec":
        ints = self._arith_ints(other)
        if ints is None or ints[1] == 0:
            return LogicVec.all_x(max(self.width, other.width))
        x, y, width, signed = ints
        r = abs(x) % abs(y)
        if x < 0:
            r = -r
        return LogicVec(width, r & _mask(width), 0, signed)

    def pow(self, other: "LogicVec") -> "LogicVec":
        ints = self._arith_ints(other)
        if ints is None:
            return LogicVec.all_x(max(self.width, other.width))
        x, y, width, signed = ints
        if y < 0:
            return LogicVec.all_x(width)
        return LogicVec(width, pow(x, y) & _mask(width), 0, signed)

    def neg(self) -> "LogicVec":
        if self.xmask:
            return LogicVec.all_x(self.width, self.signed)
        return LogicVec(self.width, (-self.val) & _mask(self.width), 0, self.signed)

    # ------------------------------------------------------------------
    # Shifts
    # ------------------------------------------------------------------

    def shl(self, amount: "LogicVec") -> "LogicVec":
        if amount.xmask:
            return LogicVec.all_x(self.width, self.signed)
        n = amount.val
        m = _mask(self.width)
        return LogicVec(
            self.width, (self.val << n) & m, (self.xmask << n) & m, self.signed
        )

    def shr(self, amount: "LogicVec") -> "LogicVec":
        if amount.xmask:
            return LogicVec.all_x(self.width, self.signed)
        n = amount.val
        return LogicVec(self.width, self.val >> n, self.xmask >> n, self.signed)

    def ashr(self, amount: "LogicVec") -> "LogicVec":
        """Arithmetic right shift; replicates the sign bit when signed."""
        if amount.xmask:
            return LogicVec.all_x(self.width, self.signed)
        if not self.signed:
            return self.shr(amount)
        n = min(amount.val, self.width)
        top = self.width - 1
        fill = _mask(n) << (self.width - n) if n else 0
        val = self.val >> n
        xm = self.xmask >> n
        if (self.xmask >> top) & 1:
            xm |= fill
        elif (self.val >> top) & 1:
            val |= fill
        return LogicVec(self.width, val, xm, True)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------

    def eq(self, other: "LogicVec") -> "LogicVec":
        a, b, width, _ = self._coerce(other)
        if a.xmask or b.xmask:
            # A known-bit conflict decides inequality even with x elsewhere.
            agreed = ~(a.xmask | b.xmask) & _mask(width)
            if (a.val ^ b.val) & agreed:
                return LogicVec(1, 0)
            return LogicVec.all_x(1)
        return LogicVec(1, 1 if a.val == b.val else 0)

    def neq(self, other: "LogicVec") -> "LogicVec":
        return self.eq(other).logical_not()

    def case_eq(self, other: "LogicVec") -> "LogicVec":
        a, b, _, _ = self._coerce(other)
        same = a.val == b.val and a.xmask == b.xmask
        return LogicVec(1, 1 if same else 0)

    def case_neq(self, other: "LogicVec") -> "LogicVec":
        return self.case_eq(other).bit_not()

    def _compare(self, other: "LogicVec") -> int | None:
        """Three-way compare; None when x participates."""
        a, b, _, signed = self._coerce(other)
        if a.xmask or b.xmask:
            return None
        x = a.as_signed().to_int() if signed else a.val
        y = b.as_signed().to_int() if signed else b.val
        return (x > y) - (x < y)

    def lt(self, other: "LogicVec") -> "LogicVec":
        c = self._compare(other)
        return LogicVec.all_x(1) if c is None else LogicVec(1, 1 if c < 0 else 0)

    def le(self, other: "LogicVec") -> "LogicVec":
        c = self._compare(other)
        return LogicVec.all_x(1) if c is None else LogicVec(1, 1 if c <= 0 else 0)

    def gt(self, other: "LogicVec") -> "LogicVec":
        c = self._compare(other)
        return LogicVec.all_x(1) if c is None else LogicVec(1, 1 if c > 0 else 0)

    def ge(self, other: "LogicVec") -> "LogicVec":
        c = self._compare(other)
        return LogicVec.all_x(1) if c is None else LogicVec(1, 1 if c >= 0 else 0)

    # ------------------------------------------------------------------
    # Logical operators
    # ------------------------------------------------------------------

    def logical_and(self, other: "LogicVec") -> "LogicVec":
        a, b = self.truth(), other.truth()
        if a.is_false() or b.is_false():
            return LogicVec(1, 0)
        if a.has_x or b.has_x:
            return LogicVec.all_x(1)
        return LogicVec(1, 1)

    def logical_or(self, other: "LogicVec") -> "LogicVec":
        a, b = self.truth(), other.truth()
        if a.is_true() or b.is_true():
            return LogicVec(1, 1)
        if a.has_x or b.has_x:
            return LogicVec.all_x(1)
        return LogicVec(1, 0)

    def logical_not(self) -> "LogicVec":
        t = self.truth()
        if t.has_x:
            return LogicVec.all_x(1)
        return LogicVec(1, 0 if t.is_true() else 1)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------

    def reduce_and(self) -> "LogicVec":
        m = _mask(self.width)
        if (~self.val & ~self.xmask) & m:
            return LogicVec(1, 0)
        if self.xmask:
            return LogicVec.all_x(1)
        return LogicVec(1, 1)

    def reduce_or(self) -> "LogicVec":
        if self.val:
            return LogicVec(1, 1)
        if self.xmask:
            return LogicVec.all_x(1)
        return LogicVec(1, 0)

    def reduce_xor(self) -> "LogicVec":
        if self.xmask:
            return LogicVec.all_x(1)
        return LogicVec(1, bin(self.val).count("1") & 1)

    def reduce_nand(self) -> "LogicVec":
        return self.reduce_and().bit_not()

    def reduce_nor(self) -> "LogicVec":
        return self.reduce_or().bit_not()

    def reduce_xnor(self) -> "LogicVec":
        return self.reduce_xor().bit_not()

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    @staticmethod
    def concat(parts: list["LogicVec"]) -> "LogicVec":
        """Concatenate MSB-first, as Verilog ``{a, b, c}``."""
        if not parts:
            raise ValueError("cannot concatenate zero parts")
        val = 0
        xm = 0
        width = 0
        for p in parts:
            val = (val << p.width) | p.val
            xm = (xm << p.width) | p.xmask
            width += p.width
        return LogicVec(width, val, xm)

    def replicate(self, count: int) -> "LogicVec":
        if count < 1:
            raise ValueError(f"replication count must be >= 1, got {count}")
        return LogicVec.concat([self] * count)

    def set_slice(self, msb: int, lsb: int, value: "LogicVec") -> "LogicVec":
        """Return a copy with bits ``[msb:lsb]`` replaced by ``value``."""
        if msb < lsb:
            raise ValueError(f"part select [{msb}:{lsb}] has msb < lsb")
        width = msb - lsb + 1
        src = value.resize(width)
        field = _mask(width)
        lo = max(lsb, 0)
        if lsb < 0:
            field >>= -lsb
            src = src.slice(width - 1, -lsb)
        keep = ~(field << lo) & _mask(self.width)
        val = (self.val & keep) | ((src.val << lo) & ~keep & _mask(self.width))
        xm = (self.xmask & keep) | ((src.xmask << lo) & ~keep & _mask(self.width))
        return LogicVec(self.width, val, xm, self.signed)

    # ------------------------------------------------------------------
    # Matching helpers for case statements
    # ------------------------------------------------------------------

    def matches_casez(self, item: "LogicVec") -> bool:
        """casez matching: x/z bits in *either* pattern are don't-care.

        (We fold z into x, so this also serves casex.)
        """
        a, b, width, _ = self._coerce(item)
        care = ~(a.xmask | b.xmask) & _mask(width)
        return (a.val & care) == (b.val & care)

    def matches_case(self, item: "LogicVec") -> bool:
        """Plain case matching: exact 4-state equality."""
        return self.case_eq(item).is_true()

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------

    def to_bits(self) -> str:
        """Binary string, MSB first, with ``x`` for unknown bits."""
        out = []
        for i in range(self.width - 1, -1, -1):
            if (self.xmask >> i) & 1:
                out.append("x")
            else:
                out.append("1" if (self.val >> i) & 1 else "0")
        return "".join(out)

    def format_verilog(self) -> str:
        """Render as a Verilog literal, e.g. ``4'b10x0`` or ``8'd42``."""
        if self.xmask:
            return f"{self.width}'b{self.to_bits()}"
        return f"{self.width}'d{self.val}"

    def format_display(self) -> str:
        """Waveform-log rendering: decimal when known, else binary."""
        if self.xmask == 0:
            return str(self.val)
        return self.to_bits()

    def __str__(self) -> str:
        return f"{self.width}'b{self.to_bits()}"

    def __repr__(self) -> str:
        s = ", signed" if self.signed else ""
        return f"LogicVec({self.width}'b{self.to_bits()}{s})"
