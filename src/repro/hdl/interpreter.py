"""Runtime evaluation of elaborated statements and expressions.

Implements Verilog's context-determined expression sizing: an assignment
right-hand side is evaluated in a context at least as wide as the target,
so carry bits survive idioms like ``{cout, sum} = a + b + cin``.
Self-determined contexts (comparison operands, shift amounts, concat
parts, indices) follow IEEE 1364 as well.

The interpreter is driven by a :class:`StateAccess` implementation --
in practice :class:`repro.hdl.simulator.Simulation` -- which owns signal
storage and decides how nonblocking writes are scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.hdl import ast_nodes as ast
from repro.hdl.design import Design
from repro.hdl.errors import SimulationError
from repro.hdl.ops import apply_binary, apply_unary, clog2
from repro.hdl.values import LogicVec

_MAX_LOOP_ITERATIONS = 65536
_MAX_CALL_DEPTH = 64

_ARITH_OPS = frozenset({"+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~"})
_COMPARE_OPS = frozenset({"==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||"})
_SHIFT_OPS = frozenset({"<<", ">>", "<<<", ">>>", "**"})
_REDUCE_OPS = frozenset({"&", "|", "^", "~&", "~|", "~^", "^~"})


class StateAccess(Protocol):
    """Storage interface the interpreter runs against."""

    design: Design

    def get_signal(self, name: str) -> LogicVec: ...

    def set_signal(self, name: str, value: LogicVec) -> None: ...

    def get_mem_word(self, name: str, index: int) -> LogicVec: ...

    def set_mem_word(self, name: str, index: int, value: LogicVec) -> None: ...

    def schedule_nba(self, piece: "WritePiece", value: LogicVec) -> None: ...

    def sys_call(self, name: str, args: list[LogicVec]) -> None: ...


@dataclass(frozen=True)
class WritePiece:
    """A resolved destination: a bit range of a signal or memory word.

    ``word`` is None for plain signals.  ``msb``/``lsb`` are hardware bit
    positions after offset adjustment (0-based), inclusive.
    """

    name: str
    msb: int
    lsb: int
    word: int | None = None
    skip: bool = False  # x-valued index: write vanishes


class _Frame:
    """A function-call activation record."""

    def __init__(self) -> None:
        self.values: dict[str, LogicVec] = {}
        self.widths: dict[str, tuple[int, bool]] = {}

    def declare(self, name: str, width: int, signed: bool) -> None:
        self.widths[name] = (width, signed)
        self.values[name] = LogicVec.all_x(width, signed)

    def __contains__(self, name: str) -> bool:
        return name in self.values


class Interpreter:
    """Executes process bodies against a :class:`StateAccess`."""

    def __init__(self, state: StateAccess):
        self.state = state
        self.design = state.design
        self._call_depth = 0

    # ------------------------------------------------------------------
    # Width analysis (self-determined widths)
    # ------------------------------------------------------------------

    def width_of(self, expr: ast.Expr, frame: _Frame | None = None) -> int:
        if isinstance(expr, ast.Number):
            return expr.value.width
        if isinstance(expr, ast.Ident):
            if frame is not None and expr.name in frame:
                return frame.widths[expr.name][0]
            sig = self.design.signals.get(expr.name)
            if sig is not None:
                return sig.width
            mem = self.design.memories.get(expr.name)
            if mem is not None:
                raise SimulationError(
                    f"memory {expr.name!r} used without an index", expr.loc
                )
            raise SimulationError(f"unknown identifier {expr.name!r}", expr.loc)
        if isinstance(expr, ast.BitSelect):
            base = expr.base
            if isinstance(base, ast.Ident) and base.name in self.design.memories:
                return self.design.memories[base.name].width
            return 1
        if isinstance(expr, ast.PartSelect):
            msb = self._static_int(expr.msb, frame)
            lsb = self._static_int(expr.lsb, frame)
            return abs(msb - lsb) + 1
        if isinstance(expr, ast.IndexedPartSelect):
            return self._static_int(expr.width, frame)
        if isinstance(expr, ast.Unary):
            if expr.op in ("~", "-", "+"):
                return self.width_of(expr.operand, frame)
            return 1
        if isinstance(expr, ast.Binary):
            if expr.op in _COMPARE_OPS:
                return 1
            if expr.op in _SHIFT_OPS:
                return self.width_of(expr.left, frame)
            return max(self.width_of(expr.left, frame), self.width_of(expr.right, frame))
        if isinstance(expr, ast.Ternary):
            return max(self.width_of(expr.then, frame), self.width_of(expr.els, frame))
        if isinstance(expr, ast.Concat):
            return sum(self.width_of(p, frame) for p in expr.parts)
        if isinstance(expr, ast.Replicate):
            count = self._static_int(expr.count, frame)
            return count * self.width_of(expr.inner, frame)
        if isinstance(expr, ast.FuncCall):
            if expr.name in ("$signed", "$unsigned"):
                return self.width_of(expr.args[0], frame)
            if expr.name == "$clog2":
                return 32
            decl = self.design.functions.get(expr.name)
            if decl is None:
                raise SimulationError(f"unknown function {expr.name!r}", expr.loc)
            return _range_width(decl.range)
        raise SimulationError(f"cannot size expression {type(expr).__name__}", expr.loc)

    def _static_int(self, expr: ast.Expr, frame: _Frame | None) -> int:
        value = self.eval(expr, frame)
        if value.has_x:
            raise SimulationError("select bound evaluated to x", expr.loc)
        return value.to_int() if value.signed else value.to_uint()

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def eval(
        self,
        expr: ast.Expr,
        frame: _Frame | None = None,
        ctx_width: int | None = None,
    ) -> LogicVec:
        """Evaluate; ``ctx_width`` is the context-determined width."""
        value = self._eval_inner(expr, frame, ctx_width)
        if ctx_width is not None and value.width < ctx_width:
            value = value.resize(ctx_width)
        return value

    def _eval_inner(
        self, expr: ast.Expr, frame: _Frame | None, ctx_width: int | None
    ) -> LogicVec:
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.Ident):
            return self._read_ident(expr, frame)
        if isinstance(expr, ast.BitSelect):
            return self._eval_bit_select(expr, frame)
        if isinstance(expr, ast.PartSelect):
            return self._eval_part_select(expr, frame)
        if isinstance(expr, ast.IndexedPartSelect):
            return self._eval_indexed_select(expr, frame)
        if isinstance(expr, ast.Unary):
            if expr.op in ("~", "-", "+"):
                return apply_unary(expr.op, self.eval(expr.operand, frame, ctx_width))
            return apply_unary(expr.op, self.eval(expr.operand, frame))
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, frame, ctx_width)
        if isinstance(expr, ast.Ternary):
            cond = self.eval(expr.cond, frame)
            width = max(
                self.width_of(expr.then, frame),
                self.width_of(expr.els, frame),
                ctx_width or 0,
            )
            if cond.has_x and not cond.is_true():
                # Verilog merges both branches bitwise when the condition
                # is wholly unknown; agreeing bits survive.
                then = self.eval(expr.then, frame, width)
                els = self.eval(expr.els, frame, width)
                agree = ~(then.val ^ els.val) & ~(then.xmask | els.xmask)
                mask = (1 << width) - 1
                return LogicVec(width, then.val & agree, mask & ~agree)
            taken = expr.then if cond.is_true() else expr.els
            return self.eval(taken, frame, width)
        if isinstance(expr, ast.Concat):
            return LogicVec.concat([self.eval(p, frame) for p in expr.parts])
        if isinstance(expr, ast.Replicate):
            count = self._static_int(expr.count, frame)
            if count < 1:
                raise SimulationError("replication count must be >= 1", expr.loc)
            return self.eval(expr.inner, frame).replicate(count)
        if isinstance(expr, ast.FuncCall):
            return self._eval_call(expr, frame, ctx_width)
        raise SimulationError(f"cannot evaluate {type(expr).__name__}", expr.loc)

    def _read_ident(self, expr: ast.Ident, frame: _Frame | None) -> LogicVec:
        if frame is not None and expr.name in frame:
            return frame.values[expr.name]
        if expr.name in self.design.signals:
            return self.state.get_signal(expr.name)
        if expr.name in self.design.memories:
            raise SimulationError(
                f"memory {expr.name!r} used without an index", expr.loc
            )
        raise SimulationError(f"unknown identifier {expr.name!r}", expr.loc)

    def _eval_binary(
        self, expr: ast.Binary, frame: _Frame | None, ctx_width: int | None
    ) -> LogicVec:
        op = expr.op
        if op in _COMPARE_OPS:
            width = max(self.width_of(expr.left, frame), self.width_of(expr.right, frame))
            left = self.eval(expr.left, frame, width)
            right = self.eval(expr.right, frame, width)
            return apply_binary(op, left, right)
        if op in _SHIFT_OPS:
            left_width = max(self.width_of(expr.left, frame), ctx_width or 0)
            left = self.eval(expr.left, frame, left_width)
            right = self.eval(expr.right, frame)
            return apply_binary(op, left, right)
        # Context-determined arithmetic / bitwise.
        width = max(
            self.width_of(expr.left, frame),
            self.width_of(expr.right, frame),
            ctx_width or 0,
        )
        left = self.eval(expr.left, frame, width)
        right = self.eval(expr.right, frame, width)
        return apply_binary(op, left, right)

    def _eval_bit_select(self, expr: ast.BitSelect, frame: _Frame | None) -> LogicVec:
        base = expr.base
        if isinstance(base, ast.Ident) and base.name in self.design.memories:
            mem = self.design.memories[base.name]
            index = self.eval(expr.index, frame)
            if index.has_x:
                return LogicVec.all_x(mem.width, mem.signed)
            word = index.to_int() if index.signed else index.to_uint()
            return self.state.get_mem_word(base.name, word)
        index = self.eval(expr.index, frame)
        if index.has_x:
            return LogicVec.all_x(1)
        idx = index.to_int() if index.signed else index.to_uint()
        if isinstance(base, ast.Ident):
            sig = self.design.signals.get(base.name)
            if sig is not None and (frame is None or base.name not in frame):
                return self.state.get_signal(base.name).bit(idx - sig.lsb)
        return self.eval(base, frame).bit(idx)

    def _eval_part_select(self, expr: ast.PartSelect, frame: _Frame | None) -> LogicVec:
        msb = self._static_int(expr.msb, frame)
        lsb = self._static_int(expr.lsb, frame)
        offset = self._base_lsb(expr.base, frame)
        return self.eval(expr.base, frame).slice(msb - offset, lsb - offset)

    def _eval_indexed_select(
        self, expr: ast.IndexedPartSelect, frame: _Frame | None
    ) -> LogicVec:
        width = self._static_int(expr.width, frame)
        start = self.eval(expr.start, frame)
        if start.has_x:
            return LogicVec.all_x(width)
        s = start.to_int() if start.signed else start.to_uint()
        msb, lsb = (s, s - width + 1) if expr.down else (s + width - 1, s)
        offset = self._base_lsb(expr.base, frame)
        return self.eval(expr.base, frame).slice(msb - offset, lsb - offset)

    def _base_lsb(self, base: ast.Expr, frame: _Frame | None) -> int:
        if isinstance(base, ast.Ident):
            if frame is not None and base.name in frame:
                return 0
            sig = self.design.signals.get(base.name)
            if sig is not None:
                return sig.lsb
        return 0

    def _eval_call(
        self, expr: ast.FuncCall, frame: _Frame | None, ctx_width: int | None
    ) -> LogicVec:
        if expr.name == "$signed":
            return self.eval(expr.args[0], frame).as_signed()
        if expr.name == "$unsigned":
            return self.eval(expr.args[0], frame).as_unsigned()
        if expr.name == "$clog2":
            value = self.eval(expr.args[0], frame)
            if value.has_x:
                return LogicVec.all_x(32)
            return LogicVec.from_int(clog2(value.to_uint()), 32)
        decl = self.design.functions.get(expr.name)
        if decl is None:
            raise SimulationError(f"unknown function {expr.name!r}", expr.loc)
        if self._call_depth >= _MAX_CALL_DEPTH:
            raise SimulationError(
                f"function call depth exceeds {_MAX_CALL_DEPTH}", expr.loc
            )
        if len(expr.args) != len(decl.inputs):
            raise SimulationError(
                f"function {expr.name!r} expects {len(decl.inputs)} args, "
                f"got {len(expr.args)}",
                expr.loc,
            )
        callee = _Frame()
        ret_width = _range_width(decl.range)
        callee.declare(decl.name, ret_width, decl.signed)
        for (name, rng, signed), arg in zip(decl.inputs, expr.args):
            width = _range_width(rng)
            callee.declare(name, width, signed)
            callee.values[name] = self.eval(arg, frame, width).resize(width, signed)
        for net in decl.locals:
            width = _range_width(net.range)
            for name in net.names:
                callee.declare(name, width, net.signed)
        self._call_depth += 1
        try:
            self.exec_stmt(decl.body, callee)
        finally:
            self._call_depth -= 1
        return callee.values[decl.name]

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def exec_stmt(self, stmt: ast.Stmt, frame: _Frame | None = None) -> None:
        if isinstance(stmt, ast.Block):
            for sub in stmt.stmts:
                self.exec_stmt(sub, frame)
            return
        if isinstance(stmt, ast.If):
            if self.eval(stmt.cond, frame).is_true():
                self.exec_stmt(stmt.then_stmt, frame)
            elif stmt.else_stmt is not None:
                self.exec_stmt(stmt.else_stmt, frame)
            return
        if isinstance(stmt, ast.Case):
            self._exec_case(stmt, frame)
            return
        if isinstance(stmt, ast.For):
            self._exec_for(stmt, frame)
            return
        if isinstance(stmt, ast.BlockingAssign):
            self._assign(stmt.target, stmt.value, frame, blocking=True)
            return
        if isinstance(stmt, ast.NonblockingAssign):
            self._assign(stmt.target, stmt.value, frame, blocking=False)
            return
        if isinstance(stmt, ast.SysCall):
            args = []
            for arg in stmt.args:
                try:
                    args.append(self.eval(arg, frame))
                except SimulationError:
                    args.append(LogicVec.all_x(1))
            self.state.sys_call(stmt.name, args)
            return
        if isinstance(stmt, ast.NullStmt):
            return
        raise SimulationError(f"cannot execute {type(stmt).__name__}", stmt.loc)

    def _exec_case(self, stmt: ast.Case, frame: _Frame | None) -> None:
        widths = [self.width_of(stmt.subject, frame)]
        for item in stmt.items:
            widths.extend(self.width_of(e, frame) for e in item.exprs)
        width = max(widths)
        subject = self.eval(stmt.subject, frame, width)
        default: ast.CaseItem | None = None
        for item in stmt.items:
            if not item.exprs:
                default = item
                continue
            for e in item.exprs:
                label = self.eval(e, frame, width)
                if stmt.kind == "case":
                    hit = subject.matches_case(label)
                else:  # casez / casex (z folded into x)
                    hit = subject.matches_casez(label)
                if hit:
                    self.exec_stmt(item.body, frame)
                    return
        if default is not None:
            self.exec_stmt(default.body, frame)

    def _exec_for(self, stmt: ast.For, frame: _Frame | None) -> None:
        self.exec_stmt(stmt.init, frame)
        iterations = 0
        while self.eval(stmt.cond, frame).is_true():
            iterations += 1
            if iterations > _MAX_LOOP_ITERATIONS:
                raise SimulationError(
                    f"for loop exceeded {_MAX_LOOP_ITERATIONS} iterations "
                    "(non-terminating loop?)",
                    stmt.loc,
                )
            self.exec_stmt(stmt.body, frame)
            self.exec_stmt(stmt.step, frame)

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------

    def _assign(
        self,
        target: ast.Expr,
        value_expr: ast.Expr,
        frame: _Frame | None,
        blocking: bool,
    ) -> None:
        target_width = self._lvalue_width(target, frame)
        ctx = max(target_width, self.width_of(value_expr, frame))
        value = self.eval(value_expr, frame, ctx).resize(target_width)
        pieces = self._resolve_lvalue(target, frame)
        # Concat lvalues consume the value MSB-first.
        cursor = target_width
        for piece, piece_width in pieces:
            part = value.slice(cursor - 1, cursor - piece_width)
            cursor -= piece_width
            if piece is None:
                continue  # write into frame already handled
            if isinstance(piece, tuple):
                frame_obj, name, msb, lsb = piece
                old = frame_obj.values[name]
                frame_obj.values[name] = old.set_slice(msb, lsb, part)
                continue
            if piece.skip:
                continue
            if blocking:
                self._commit_piece(piece, part)
            else:
                self.state.schedule_nba(piece, part)

    def _commit_piece(self, piece: WritePiece, value: LogicVec) -> None:
        if piece.word is not None:
            mem = self.design.memories[piece.name]
            if piece.msb == mem.width - 1 and piece.lsb == 0:
                word = value.resize(mem.width, mem.signed)
            else:
                old = self.state.get_mem_word(piece.name, piece.word)
                word = old.set_slice(piece.msb, piece.lsb, value)
            self.state.set_mem_word(piece.name, piece.word, word)
            return
        sig = self.design.signals[piece.name]
        if piece.msb == sig.width - 1 and piece.lsb == 0:
            new = value.resize(sig.width, sig.signed)
        else:
            new = self.state.get_signal(piece.name).set_slice(
                piece.msb, piece.lsb, value
            )
        self.state.set_signal(piece.name, new)

    def commit_nba(self, piece: WritePiece, value: LogicVec) -> None:
        """Called by the simulator when the NBA region commits."""
        self._commit_piece(piece, value)

    def _lvalue_width(self, target: ast.Expr, frame: _Frame | None) -> int:
        if isinstance(target, ast.Concat):
            return sum(self._lvalue_width(p, frame) for p in target.parts)
        return self.width_of(target, frame)

    def _resolve_lvalue(
        self, target: ast.Expr, frame: _Frame | None
    ) -> list[tuple[WritePiece | tuple | None, int]]:
        """Flatten an lvalue into MSB-first (piece, width) entries.

        Frame-local targets are returned as ``(frame, name, msb, lsb)``
        tuples; design targets as :class:`WritePiece`.
        """
        if isinstance(target, ast.Concat):
            out: list[tuple[WritePiece | tuple | None, int]] = []
            for part in target.parts:
                out.extend(self._resolve_lvalue(part, frame))
            return out

        base = target
        selects: list[ast.Expr] = []
        while isinstance(base, (ast.BitSelect, ast.PartSelect, ast.IndexedPartSelect)):
            selects.append(base)
            base = base.base
        if not isinstance(base, ast.Ident):
            raise SimulationError("unsupported assignment target", target.loc)
        name = base.name
        selects.reverse()  # outermost select last

        # Frame-local variable.
        if frame is not None and name in frame:
            width, _ = frame.widths[name]
            msb, lsb, skip = self._select_range(selects, width, 0, frame, memory=None)
            if skip:
                return [(None, msb - lsb + 1)]
            return [((frame, name, msb, lsb), msb - lsb + 1)]

        # Memory word (first select is the word index).
        if name in self.design.memories:
            mem = self.design.memories[name]
            if not selects:
                raise SimulationError(
                    f"memory {name!r} assigned without an index", target.loc
                )
            index = self.eval(_select_index(selects[0]), frame)
            word_selects = selects[1:]
            msb, lsb, skip = self._select_range(
                word_selects, mem.width, 0, frame, memory=None
            )
            width = msb - lsb + 1
            if index.has_x:
                return [(WritePiece(name, msb, lsb, word=0, skip=True), width)]
            word = index.to_int() if index.signed else index.to_uint()
            if not (mem.base <= word < mem.base + mem.size):
                return [(WritePiece(name, msb, lsb, word=0, skip=True), width)]
            return [
                (WritePiece(name, msb, lsb, word=word - mem.base, skip=skip), width)
            ]

        sig = self.design.signals.get(name)
        if sig is None:
            raise SimulationError(f"unknown assignment target {name!r}", target.loc)
        msb, lsb, skip = self._select_range(selects, sig.width, sig.lsb, frame, None)
        return [(WritePiece(name, msb, lsb, skip=skip), msb - lsb + 1)]

    def _select_range(
        self,
        selects: list[ast.Expr],
        width: int,
        offset: int,
        frame: _Frame | None,
        memory: None,
    ) -> tuple[int, int, bool]:
        """Reduce a select chain to a (msb, lsb, skip) hardware bit range."""
        msb, lsb = width - 1, 0
        skip = False
        for sel in selects:
            if isinstance(sel, ast.BitSelect):
                index = self.eval(sel.index, frame)
                if index.has_x:
                    return 0, 0, True
                idx = (index.to_int() if index.signed else index.to_uint()) - offset
                bit = lsb + idx
                if bit < lsb or bit > msb:
                    return 0, 0, True
                msb = lsb = bit
            elif isinstance(sel, ast.PartSelect):
                hi = self._static_int(sel.msb, frame) - offset
                lo = self._static_int(sel.lsb, frame) - offset
                new_lsb = lsb + lo
                new_msb = lsb + hi
                if new_lsb < lsb or new_msb > msb:
                    skip = True
                msb, lsb = new_msb, new_lsb
            else:  # IndexedPartSelect
                w = self._static_int(sel.width, frame)
                start = self.eval(sel.start, frame)
                if start.has_x:
                    return 0, 0, True
                s = (start.to_int() if start.signed else start.to_uint()) - offset
                hi, lo = (s, s - w + 1) if sel.down else (s + w - 1, s)
                new_lsb = lsb + lo
                new_msb = lsb + hi
                if new_lsb < lsb or new_msb > msb:
                    skip = True
                msb, lsb = new_msb, new_lsb
            offset = 0  # offsets apply only to the outer vector
        return msb, lsb, skip


def _select_index(sel: ast.Expr) -> ast.Expr:
    if isinstance(sel, ast.BitSelect):
        return sel.index
    raise SimulationError("memory must be indexed with [word]", sel.loc)


def _range_width(rng: ast.Range | None) -> int:
    if rng is None:
        return 1
    msb = rng.msb
    lsb = rng.lsb
    if not (isinstance(msb, ast.Number) and isinstance(lsb, ast.Number)):
        raise SimulationError("function range must be constant", rng.loc)
    return abs(msb.value.to_uint() - lsb.value.to_uint()) + 1
