"""Elaborated design IR: what the simulator executes.

The elaborator flattens a module hierarchy into a :class:`Design`:
a flat table of signals and memories plus a list of processes whose
statements reference flattened global names and have all parameters
substituted as constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdl import ast_nodes as ast


@dataclass(frozen=True)
class Signal:
    """A flattened scalar/vector signal."""

    name: str
    width: int
    signed: bool = False
    kind: str = "wire"  # "wire" | "reg"
    lsb: int = 0  # declared LSB index, e.g. 4 for ``wire [7:4] x``
    is_input: bool = False
    is_output: bool = False

    @property
    def msb(self) -> int:
        return self.lsb + self.width - 1


@dataclass(frozen=True)
class Memory:
    """A flattened memory array (``reg [w-1:0] mem [base:base+size-1]``)."""

    name: str
    width: int
    size: int
    base: int = 0
    signed: bool = False


@dataclass(frozen=True)
class Process:
    """One executable process.

    kind:
        ``comb``    -- continuous assign or combinational always block;
                       runs whenever a signal in ``reads`` changes.
        ``clocked`` -- edge-triggered always block; runs on ``edges``.
        ``initial`` -- runs once at time zero.
    """

    kind: str
    body: tuple[ast.Stmt, ...]
    edges: tuple[tuple[str, str], ...] = ()  # (edge, signal_name)
    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()
    origin: str = ""  # instance path, for diagnostics
    continuous: bool = False  # assign statement / port binding, not an always block


@dataclass
class Design:
    """A fully elaborated, simulatable design."""

    name: str
    signals: dict[str, Signal] = field(default_factory=dict)
    memories: dict[str, Memory] = field(default_factory=dict)
    processes: list[Process] = field(default_factory=list)
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    functions: dict[str, ast.FunctionDecl] = field(default_factory=dict)

    def port_width(self, name: str) -> int:
        """Width of a top-level port."""
        return self.signals[name].width

    def describe_ports(self) -> str:
        """Human-readable port summary (used in agent prompts)."""
        parts = []
        for name in self.inputs:
            sig = self.signals[name]
            parts.append(f"input [{sig.width - 1}:0] {name}")
        for name in self.outputs:
            sig = self.signals[name]
            parts.append(f"output [{sig.width - 1}:0] {name}")
        return ", ".join(parts)
