"""Error types for the HDL frontend and simulator.

Every error carries an optional source location so that agent-facing
diagnostics (the syntax-fix loop of the RTL agent) can point at the
offending line, the way an ``iverilog`` message would.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLoc:
    """A position in Verilog source text (1-based line and column)."""

    line: int
    col: int

    def __str__(self) -> str:
        return f"line {self.line}, col {self.col}"


class HdlError(Exception):
    """Base class for all HDL substrate errors."""

    def __init__(self, message: str, loc: SourceLoc | None = None):
        self.message = message
        self.loc = loc
        super().__init__(str(self))

    def __str__(self) -> str:
        if self.loc is not None:
            return f"{self.message} ({self.loc})"
        return self.message


class LexError(HdlError):
    """Raised on unrecognized characters or malformed literals."""


class ParseError(HdlError):
    """Raised when the token stream does not form a valid module."""


class ElaborationError(HdlError):
    """Raised for semantic errors found while building the design."""


class SimulationError(HdlError):
    """Raised for runtime failures (oscillation, bad indexing, ...)."""
