"""Render an AST back into Verilog source text.

The mutation engine edits golden ASTs and materialises candidates
through this module, so round-tripping ``parse -> unparse -> parse``
must preserve semantics (checked by property tests).
"""

from __future__ import annotations

from repro.hdl import ast_nodes as ast

_PAREN_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "~^": 4,
    "^~": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "<<<": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
    "**": 11,
}

_UNARY_PRECEDENCE = 12


def unparse_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render one expression, parenthesising as needed."""
    if isinstance(expr, ast.Number):
        if expr.text is not None and not expr.text.startswith('"'):
            return expr.text
        return expr.value.format_verilog()
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.BitSelect):
        return f"{unparse_expr(expr.base, _UNARY_PRECEDENCE)}[{unparse_expr(expr.index)}]"
    if isinstance(expr, ast.PartSelect):
        base = unparse_expr(expr.base, _UNARY_PRECEDENCE)
        return f"{base}[{unparse_expr(expr.msb)}:{unparse_expr(expr.lsb)}]"
    if isinstance(expr, ast.IndexedPartSelect):
        base = unparse_expr(expr.base, _UNARY_PRECEDENCE)
        op = "-:" if expr.down else "+:"
        return f"{base}[{unparse_expr(expr.start)} {op} {unparse_expr(expr.width)}]"
    if isinstance(expr, ast.Unary):
        inner = unparse_expr(expr.operand, _UNARY_PRECEDENCE + 1)
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_prec > _UNARY_PRECEDENCE else text
    if isinstance(expr, ast.Binary):
        prec = _PAREN_PRECEDENCE[expr.op]
        left = unparse_expr(expr.left, prec)
        right = unparse_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, ast.Ternary):
        cond = unparse_expr(expr.cond, 1)
        then = unparse_expr(expr.then)
        els = unparse_expr(expr.els)
        text = f"{cond} ? {then} : {els}"
        return f"({text})" if parent_prec > 0 else text
    if isinstance(expr, ast.Concat):
        return "{" + ", ".join(unparse_expr(p) for p in expr.parts) + "}"
    if isinstance(expr, ast.Replicate):
        return "{" + unparse_expr(expr.count) + "{" + unparse_expr(expr.inner) + "}}"
    if isinstance(expr, ast.FuncCall):
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"cannot unparse expression node {type(expr).__name__}")


def _range_text(rng: ast.Range | None) -> str:
    if rng is None:
        return ""
    return f"[{unparse_expr(rng.msb)}:{unparse_expr(rng.lsb)}] "


def unparse_stmt(stmt: ast.Stmt, indent: int = 1) -> list[str]:
    """Render one statement as a list of indented source lines."""
    pad = "    " * indent
    if isinstance(stmt, ast.Block):
        header = f"{pad}begin" + (f" : {stmt.name}" if stmt.name else "")
        lines = [header]
        for sub in stmt.stmts:
            lines.extend(unparse_stmt(sub, indent + 1))
        lines.append(f"{pad}end")
        return lines
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({unparse_expr(stmt.cond)})"]
        lines.extend(unparse_stmt(stmt.then_stmt, indent + 1))
        if stmt.else_stmt is not None:
            lines.append(f"{pad}else")
            lines.extend(unparse_stmt(stmt.else_stmt, indent + 1))
        return lines
    if isinstance(stmt, ast.Case):
        lines = [f"{pad}{stmt.kind} ({unparse_expr(stmt.subject)})"]
        for item in stmt.items:
            if item.exprs:
                label = ", ".join(unparse_expr(e) for e in item.exprs)
            else:
                label = "default"
            lines.append(f"{pad}    {label}:")
            lines.extend(unparse_stmt(item.body, indent + 2))
        lines.append(f"{pad}endcase")
        return lines
    if isinstance(stmt, ast.For):
        init = _assign_text(stmt.init)
        step = _assign_text(stmt.step)
        lines = [f"{pad}for ({init}; {unparse_expr(stmt.cond)}; {step})"]
        lines.extend(unparse_stmt(stmt.body, indent + 1))
        return lines
    if isinstance(stmt, ast.BlockingAssign):
        return [f"{pad}{_assign_text(stmt)};"]
    if isinstance(stmt, ast.NonblockingAssign):
        return [f"{pad}{unparse_expr(stmt.target)} <= {unparse_expr(stmt.value)};"]
    if isinstance(stmt, ast.SysCall):
        args = ", ".join(unparse_expr(a) for a in stmt.args)
        return [f"{pad}{stmt.name}({args});"]
    if isinstance(stmt, ast.NullStmt):
        return [f"{pad};"]
    raise TypeError(f"cannot unparse statement node {type(stmt).__name__}")


def _assign_text(assign: ast.BlockingAssign) -> str:
    return f"{unparse_expr(assign.target)} = {unparse_expr(assign.value)}"


def _unparse_item(item: ast.ModuleItem) -> list[str]:
    if isinstance(item, ast.PortDecl):
        kind = "" if item.net_kind == "wire" else f" {item.net_kind}"
        signed = " signed" if item.signed else ""
        rng = _range_text(item.range)
        names = ", ".join(item.names)
        return [f"    {item.direction}{kind}{signed} {rng}{names};"]
    if isinstance(item, ast.NetDecl):
        signed = " signed" if item.signed and item.net_kind != "integer" else ""
        rng = _range_text(item.range)
        if item.array_range is not None:
            arr = _range_text(item.array_range).strip()
            return [f"    {item.net_kind}{signed} {rng}{item.names[0]} {arr};"]
        if item.init is not None:
            return [
                f"    {item.net_kind}{signed} {rng}{item.names[0]}"
                f" = {unparse_expr(item.init)};"
            ]
        return [f"    {item.net_kind}{signed} {rng}{', '.join(item.names)};"]
    if isinstance(item, ast.ParamDecl):
        kw = "localparam" if item.local else "parameter"
        rng = _range_text(item.range)
        return [f"    {kw} {rng}{item.name} = {unparse_expr(item.value)};"]
    if isinstance(item, ast.ContinuousAssign):
        return [
            f"    assign {unparse_expr(item.target)} = {unparse_expr(item.value)};"
        ]
    if isinstance(item, ast.AlwaysBlock):
        sens = item.sensitivity
        if sens.star:
            header = "    always @(*)"
        else:
            events = []
            for ev in sens.events:
                prefix = {"pos": "posedge ", "neg": "negedge ", "level": ""}[ev.edge]
                events.append(prefix + unparse_expr(ev.signal))
            header = f"    always @({' or '.join(events)})"
        return [header] + unparse_stmt(item.body, 2)
    if isinstance(item, ast.InitialBlock):
        return ["    initial"] + unparse_stmt(item.body, 2)
    if isinstance(item, ast.FunctionDecl):
        signed = " signed" if item.signed else ""
        rng = _range_text(item.range)
        lines = [f"    function{signed} {rng}{item.name};"]
        for name, in_rng, in_signed in item.inputs:
            s = " signed" if in_signed else ""
            lines.append(f"        input{s} {_range_text(in_rng)}{name};")
        for local in item.locals:
            lines.extend("    " + text for text in _unparse_item(local))
        lines.extend(unparse_stmt(item.body, 2))
        lines.append("    endfunction")
        return lines
    if isinstance(item, ast.Instance):
        text = f"    {item.module_name}"
        if item.params:
            binds = []
            for name, expr in item.params:
                rendered = unparse_expr(expr)
                binds.append(f".{name}({rendered})" if name else rendered)
            text += " #(" + ", ".join(binds) + ")"
        conns = []
        for conn in item.ports:
            expr = "" if conn.expr is None else unparse_expr(conn.expr)
            conns.append(f".{conn.name}({expr})" if conn.name else expr)
        text += f" {item.inst_name} (" + ", ".join(conns) + ");"
        return [text]
    raise TypeError(f"cannot unparse module item {type(item).__name__}")


def unparse_module(module: ast.Module) -> str:
    """Render a whole module as Verilog source."""
    header_port_names = set()
    header_decls: list[str] = []
    body_items: list[ast.ModuleItem] = []
    # Ports declared in the header keep ANSI style on output.
    port_decl_map: dict[str, ast.PortDecl] = {}
    for item in module.items:
        if isinstance(item, ast.PortDecl) and len(item.names) == 1:
            port_decl_map.setdefault(item.names[0], item)
        else:
            body_items.append(item)
    for port in module.ports:
        decl = port_decl_map.get(port)
        if decl is None:
            header_decls.append(port)
            continue
        header_port_names.add(port)
        kind = "" if decl.net_kind == "wire" else f" {decl.net_kind}"
        signed = " signed" if decl.signed else ""
        rng = _range_text(decl.range)
        header_decls.append(f"{decl.direction}{kind}{signed} {rng}{port}".strip())
    lines = [f"module {module.name} ("]
    for i, decl in enumerate(header_decls):
        comma = "," if i < len(header_decls) - 1 else ""
        lines.append(f"    {decl}{comma}")
    lines.append(");")
    for item in body_items:
        lines.extend(_unparse_item(item))
    # Port declarations that never appeared in the header port order
    # (classic style modules) are emitted in the body.
    for name, decl in port_decl_map.items():
        if name not in header_port_names and name not in module.ports:
            lines.extend(_unparse_item(decl))
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def unparse_source(source: ast.SourceFile) -> str:
    """Render all modules of a source file."""
    return "\n".join(unparse_module(m) for m in source.modules)
