"""Recursive-descent parser for the synthesizable Verilog subset.

Covers: modules with ANSI or classic port declarations, parameters and
localparams, wire/reg/integer declarations (including memories),
continuous assigns, always/initial blocks, if/case/casez/casex/for
statements, blocking and nonblocking assignments, full expression
precedence, simple functions, and module instantiation with parameter
overrides.

Anything outside the subset raises :class:`~repro.hdl.errors.ParseError`
with a source location, which is exactly what the agents' syntax-fix
loop consumes.
"""

from __future__ import annotations

from repro.hdl import ast_nodes as ast
from repro.hdl.errors import ParseError
from repro.hdl.lexer import Token, TokKind, tokenize

# Binary operator precedence: higher binds tighter.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "~^": 4,
    "^~": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "<<<": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
    "**": 11,
}

_UNARY_OPS = frozenset({"~", "!", "-", "+", "&", "|", "^", "~&", "~|", "~^", "^~"})


class Parser:
    """Token-stream parser producing :class:`repro.hdl.ast_nodes` trees."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def _check(self, text: str) -> bool:
        tok = self._peek()
        return tok.kind in (TokKind.OP, TokKind.KEYWORD) and tok.text == text

    def _accept(self, text: str) -> Token | None:
        if self._check(text):
            return self._next()
        return None

    def _expect(self, text: str) -> Token:
        tok = self._peek()
        if not self._check(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.loc)
        return self._next()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokKind.IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.loc)
        return self._next()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_source(self) -> ast.SourceFile:
        modules = []
        while self._peek().kind is not TokKind.EOF:
            modules.append(self.parse_module())
        if not modules:
            raise ParseError("no module found in source", self._peek().loc)
        return ast.SourceFile(modules=tuple(modules))

    def parse_module(self) -> ast.Module:
        start = self._expect("module")
        name = self._expect_ident().text
        items: list[ast.ModuleItem] = []
        ports: list[str] = []
        if self._accept("#"):
            items.extend(self._parse_header_params())
        if self._accept("("):
            ports, port_items = self._parse_port_list()
            items.extend(port_items)
        self._expect(";")
        while not self._check("endmodule"):
            if self._peek().kind is TokKind.EOF:
                raise ParseError("unexpected end of file in module body", start.loc)
            items.extend(self._parse_module_item())
        self._expect("endmodule")
        return ast.Module(name=name, ports=tuple(ports), items=tuple(items), loc=start.loc)

    def _parse_header_params(self) -> list[ast.ParamDecl]:
        """``#(parameter N = 4, parameter [3:0] M = 2)``"""
        self._expect("(")
        params: list[ast.ParamDecl] = []
        while True:
            loc = self._peek().loc
            self._accept("parameter")
            signed = bool(self._accept("signed"))
            rng = self._parse_opt_range()
            pname = self._expect_ident().text
            self._expect("=")
            value = self.parse_expr()
            params.append(
                ast.ParamDecl(
                    local=False, name=pname, value=value, range=rng, signed=signed, loc=loc
                )
            )
            if not self._accept(","):
                break
        self._expect(")")
        return params

    def _parse_port_list(self) -> tuple[list[str], list[ast.ModuleItem]]:
        """Parse the header port list (ANSI declarations or bare names)."""
        ports: list[str] = []
        items: list[ast.ModuleItem] = []
        if self._accept(")"):
            return ports, items
        direction = None
        net_kind = "wire"
        signed = False
        rng: ast.Range | None = None
        while True:
            tok = self._peek()
            if tok.text in ("input", "output", "inout"):
                direction = self._next().text
                net_kind = "wire"
                signed = False
                if self._check("reg") or self._check("wire"):
                    net_kind = self._next().text
                signed = bool(self._accept("signed"))
                rng = self._parse_opt_range()
                name_tok = self._expect_ident()
                ports.append(name_tok.text)
                items.append(
                    ast.PortDecl(
                        direction=direction,
                        net_kind=net_kind,
                        signed=signed,
                        range=rng,
                        names=(name_tok.text,),
                        loc=tok.loc,
                    )
                )
            elif tok.kind is TokKind.IDENT:
                name_tok = self._next()
                ports.append(name_tok.text)
                if direction is not None:
                    # Continuation of the previous ANSI declaration:
                    # ``input [3:0] a, b``.
                    items.append(
                        ast.PortDecl(
                            direction=direction,
                            net_kind=net_kind,
                            signed=signed,
                            range=rng,
                            names=(name_tok.text,),
                            loc=name_tok.loc,
                        )
                    )
            else:
                raise ParseError(
                    f"expected port declaration, found {tok.text!r}", tok.loc
                )
            if not self._accept(","):
                break
        self._expect(")")
        return ports, items

    # ------------------------------------------------------------------
    # Module items
    # ------------------------------------------------------------------

    def _parse_module_item(self) -> list[ast.ModuleItem]:
        tok = self._peek()
        if tok.text in ("input", "output", "inout"):
            return [self._parse_body_port_decl()]
        if tok.text in ("wire", "reg", "integer", "genvar"):
            return [self._parse_net_decl()]
        if tok.text in ("parameter", "localparam"):
            return self._parse_param_decls()
        if tok.text == "assign":
            return [self._parse_continuous_assign()]
        if tok.text == "always":
            return [self._parse_always()]
        if tok.text == "initial":
            return [self._parse_initial()]
        if tok.text == "function":
            return [self._parse_function()]
        if tok.kind is TokKind.IDENT:
            return [self._parse_instance()]
        raise ParseError(f"unexpected token {tok.text!r} in module body", tok.loc)

    def _parse_opt_range(self) -> ast.Range | None:
        if not self._check("["):
            return None
        loc = self._next().loc  # [
        msb = self.parse_expr()
        self._expect(":")
        lsb = self.parse_expr()
        self._expect("]")
        return ast.Range(msb=msb, lsb=lsb, loc=loc)

    def _parse_body_port_decl(self) -> ast.PortDecl:
        tok = self._next()
        direction = tok.text
        net_kind = "wire"
        if self._check("reg") or self._check("wire"):
            net_kind = self._next().text
        signed = bool(self._accept("signed"))
        rng = self._parse_opt_range()
        names = [self._expect_ident().text]
        while self._accept(","):
            names.append(self._expect_ident().text)
        self._expect(";")
        return ast.PortDecl(
            direction=direction,
            net_kind=net_kind,
            signed=signed,
            range=rng,
            names=tuple(names),
            loc=tok.loc,
        )

    def _parse_net_decl(self) -> ast.NetDecl:
        tok = self._next()
        kind = tok.text
        signed = bool(self._accept("signed"))
        if kind == "integer":
            signed = True
        rng = self._parse_opt_range() if kind in ("wire", "reg") else None
        first = self._expect_ident().text
        array_range = self._parse_opt_range()
        init: ast.Expr | None = None
        names = [first]
        if array_range is None:
            if self._accept("="):
                if kind != "wire":
                    raise ParseError(
                        "declaration initialisers are only supported on wires",
                        tok.loc,
                    )
                init = self.parse_expr()
            else:
                while self._accept(","):
                    names.append(self._expect_ident().text)
        self._expect(";")
        return ast.NetDecl(
            net_kind=kind,
            signed=signed,
            range=rng,
            names=tuple(names),
            array_range=array_range,
            init=init,
            loc=tok.loc,
        )

    def _parse_param_decls(self) -> list[ast.ParamDecl]:
        tok = self._next()
        local = tok.text == "localparam"
        signed = bool(self._accept("signed"))
        rng = self._parse_opt_range()
        decls = []
        while True:
            name = self._expect_ident().text
            self._expect("=")
            value = self.parse_expr()
            decls.append(
                ast.ParamDecl(
                    local=local, name=name, value=value, range=rng, signed=signed, loc=tok.loc
                )
            )
            if not self._accept(","):
                break
        self._expect(";")
        return decls

    def _parse_continuous_assign(self) -> ast.ContinuousAssign:
        tok = self._expect("assign")
        target = self._parse_lvalue()
        self._expect("=")
        value = self.parse_expr()
        self._expect(";")
        return ast.ContinuousAssign(target=target, value=value, loc=tok.loc)

    def _parse_always(self) -> ast.AlwaysBlock:
        tok = self._expect("always")
        self._expect("@")
        sensitivity = self._parse_sensitivity()
        body = self.parse_statement()
        return ast.AlwaysBlock(sensitivity=sensitivity, body=body, loc=tok.loc)

    def _parse_sensitivity(self) -> ast.Sensitivity:
        loc = self._peek().loc
        if self._accept("*"):
            return ast.Sensitivity(star=True, loc=loc)
        self._expect("(")
        if self._accept("*"):
            self._expect(")")
            return ast.Sensitivity(star=True, loc=loc)
        events = []
        while True:
            ev_loc = self._peek().loc
            edge = "level"
            if self._accept("posedge"):
                edge = "pos"
            elif self._accept("negedge"):
                edge = "neg"
            signal = self.parse_expr()
            events.append(ast.EdgeEvent(edge=edge, signal=signal, loc=ev_loc))
            if not (self._accept("or") or self._accept(",")):
                break
        self._expect(")")
        return ast.Sensitivity(star=False, events=tuple(events), loc=loc)

    def _parse_initial(self) -> ast.InitialBlock:
        tok = self._expect("initial")
        body = self.parse_statement()
        return ast.InitialBlock(body=body, loc=tok.loc)

    def _parse_function(self) -> ast.FunctionDecl:
        tok = self._expect("function")
        signed = bool(self._accept("signed"))
        rng = self._parse_opt_range()
        name = self._expect_ident().text
        inputs: list[tuple[str, ast.Range | None, bool]] = []
        if self._accept("("):
            while not self._check(")"):
                self._expect("input")
                in_signed = bool(self._accept("signed"))
                in_rng = self._parse_opt_range()
                inputs.append((self._expect_ident().text, in_rng, in_signed))
                if not self._accept(","):
                    break
            self._expect(")")
        self._expect(";")
        locals_: list[ast.NetDecl] = []
        while True:
            if self._check("input"):
                self._next()
                in_signed = bool(self._accept("signed"))
                in_rng = self._parse_opt_range()
                inputs.append((self._expect_ident().text, in_rng, in_signed))
                while self._accept(","):
                    inputs.append((self._expect_ident().text, in_rng, in_signed))
                self._expect(";")
            elif self._check("reg") or self._check("integer"):
                locals_.append(self._parse_net_decl())
            else:
                break
        stmts = []
        while not self._check("endfunction"):
            if self._peek().kind is TokKind.EOF:
                raise ParseError("unexpected end of file in function", tok.loc)
            stmts.append(self.parse_statement())
        self._expect("endfunction")
        body = stmts[0] if len(stmts) == 1 else ast.Block(stmts=tuple(stmts), loc=tok.loc)
        return ast.FunctionDecl(
            name=name,
            range=rng,
            signed=signed,
            inputs=tuple(inputs),
            locals=tuple(locals_),
            body=body,
            loc=tok.loc,
        )

    def _parse_instance(self) -> ast.Instance:
        mod_tok = self._expect_ident()
        params: list[tuple[str | None, ast.Expr]] = []
        if self._accept("#"):
            self._expect("(")
            while not self._check(")"):
                if self._accept("."):
                    pname = self._expect_ident().text
                    self._expect("(")
                    params.append((pname, self.parse_expr()))
                    self._expect(")")
                else:
                    params.append((None, self.parse_expr()))
                if not self._accept(","):
                    break
            self._expect(")")
        inst_tok = self._expect_ident()
        self._expect("(")
        ports: list[ast.PortConnection] = []
        if not self._check(")"):
            while True:
                loc = self._peek().loc
                if self._accept("."):
                    pname = self._expect_ident().text
                    self._expect("(")
                    expr = None if self._check(")") else self.parse_expr()
                    self._expect(")")
                    ports.append(ast.PortConnection(name=pname, expr=expr, loc=loc))
                else:
                    expr = None if self._check(",") else self.parse_expr()
                    ports.append(ast.PortConnection(name=None, expr=expr, loc=loc))
                if not self._accept(","):
                    break
        self._expect(")")
        self._expect(";")
        return ast.Instance(
            module_name=mod_tok.text,
            inst_name=inst_tok.text,
            params=tuple(params),
            ports=tuple(ports),
            loc=mod_tok.loc,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if tok.text == "begin":
            return self._parse_block()
        if tok.text == "if":
            return self._parse_if()
        if tok.text in ("case", "casez", "casex"):
            return self._parse_case()
        if tok.text == "for":
            return self._parse_for()
        if tok.kind is TokKind.SYSNAME:
            return self._parse_syscall()
        if self._accept(";"):
            return ast.NullStmt(loc=tok.loc)
        return self._parse_assignment()

    def _parse_block(self) -> ast.Block:
        tok = self._expect("begin")
        name = None
        if self._accept(":"):
            name = self._expect_ident().text
        stmts = []
        while not self._check("end"):
            if self._peek().kind is TokKind.EOF:
                raise ParseError("unexpected end of file in begin/end block", tok.loc)
            stmts.append(self.parse_statement())
        self._expect("end")
        return ast.Block(stmts=tuple(stmts), name=name, loc=tok.loc)

    def _parse_if(self) -> ast.If:
        tok = self._expect("if")
        self._expect("(")
        cond = self.parse_expr()
        self._expect(")")
        then_stmt = self.parse_statement()
        else_stmt = None
        if self._accept("else"):
            else_stmt = self.parse_statement()
        return ast.If(cond=cond, then_stmt=then_stmt, else_stmt=else_stmt, loc=tok.loc)

    def _parse_case(self) -> ast.Case:
        tok = self._next()
        kind = tok.text
        self._expect("(")
        subject = self.parse_expr()
        self._expect(")")
        items = []
        while not self._check("endcase"):
            if self._peek().kind is TokKind.EOF:
                raise ParseError("unexpected end of file in case statement", tok.loc)
            item_loc = self._peek().loc
            if self._accept("default"):
                self._accept(":")
                body = self.parse_statement()
                items.append(ast.CaseItem(exprs=(), body=body, loc=item_loc))
            else:
                exprs = [self.parse_expr()]
                while self._accept(","):
                    exprs.append(self.parse_expr())
                self._expect(":")
                body = self.parse_statement()
                items.append(ast.CaseItem(exprs=tuple(exprs), body=body, loc=item_loc))
        self._expect("endcase")
        return ast.Case(kind=kind, subject=subject, items=tuple(items), loc=tok.loc)

    def _parse_for(self) -> ast.For:
        tok = self._expect("for")
        self._expect("(")
        init = self._parse_plain_assign()
        self._expect(";")
        cond = self.parse_expr()
        self._expect(";")
        step = self._parse_plain_assign()
        self._expect(")")
        body = self.parse_statement()
        return ast.For(init=init, cond=cond, step=step, body=body, loc=tok.loc)

    def _parse_plain_assign(self) -> ast.BlockingAssign:
        loc = self._peek().loc
        target = self._parse_lvalue()
        self._expect("=")
        value = self.parse_expr()
        return ast.BlockingAssign(target=target, value=value, loc=loc)

    def _parse_syscall(self) -> ast.SysCall:
        tok = self._next()
        args: list[ast.Expr] = []
        if self._accept("("):
            while not self._check(")"):
                if self._peek().kind is TokKind.STRING:
                    s = self._next()
                    args.append(ast.Number(value=_string_vec(s.text), text=f'"{s.text}"', loc=s.loc))
                else:
                    args.append(self.parse_expr())
                if not self._accept(","):
                    break
            self._expect(")")
        self._expect(";")
        return ast.SysCall(name=tok.text, args=tuple(args), loc=tok.loc)

    def _parse_assignment(self) -> ast.Stmt:
        loc = self._peek().loc
        target = self._parse_lvalue()
        if self._accept("<="):
            value = self.parse_expr()
            self._expect(";")
            return ast.NonblockingAssign(target=target, value=value, loc=loc)
        if self._accept("="):
            value = self.parse_expr()
            self._expect(";")
            return ast.BlockingAssign(target=target, value=value, loc=loc)
        tok = self._peek()
        raise ParseError(f"expected '=' or '<=', found {tok.text!r}", tok.loc)

    def _parse_lvalue(self) -> ast.Expr:
        tok = self._peek()
        if tok.text == "{":
            self._next()
            parts = [self._parse_lvalue()]
            while self._accept(","):
                parts.append(self._parse_lvalue())
            self._expect("}")
            return ast.Concat(parts=tuple(parts), loc=tok.loc)
        if tok.kind is not TokKind.IDENT:
            raise ParseError(f"bad assignment target {tok.text!r}", tok.loc)
        expr: ast.Expr = ast.Ident(name=self._next().text, loc=tok.loc)
        return self._parse_selects(expr)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._accept("?"):
            then = self._parse_ternary()
            self._expect(":")
            els = self._parse_ternary()
            return ast.Ternary(cond=cond, then=then, els=els, loc=cond.loc)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            prec = _BINARY_PRECEDENCE.get(tok.text) if tok.kind is TokKind.OP else None
            if prec is None or prec < min_prec:
                return left
            if tok.text in ("+", "-") and self._peek(1).text == ":":
                # ``[start +: width]`` indexed part select, not arithmetic.
                return left
            self._next()
            # ** is right-associative; everything else is left-associative.
            next_min = prec if tok.text == "**" else prec + 1
            right = self._parse_binary(next_min)
            left = ast.Binary(op=tok.text, left=left, right=right, loc=tok.loc)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokKind.OP and tok.text in _UNARY_OPS:
            self._next()
            operand = self._parse_unary()
            return ast.Unary(op=tok.text, operand=operand, loc=tok.loc)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokKind.NUMBER:
            self._next()
            assert tok.value is not None
            return ast.Number(value=tok.value, text=tok.text, loc=tok.loc)
        if tok.kind is TokKind.SYSNAME:
            self._next()
            self._expect("(")
            args = [self.parse_expr()]
            while self._accept(","):
                args.append(self.parse_expr())
            self._expect(")")
            return ast.FuncCall(name=tok.text, args=tuple(args), loc=tok.loc)
        if tok.kind is TokKind.IDENT:
            self._next()
            if self._check("("):
                self._next()
                args = []
                if not self._check(")"):
                    args.append(self.parse_expr())
                    while self._accept(","):
                        args.append(self.parse_expr())
                self._expect(")")
                return ast.FuncCall(name=tok.text, args=tuple(args), loc=tok.loc)
            expr: ast.Expr = ast.Ident(name=tok.text, loc=tok.loc)
            return self._parse_selects(expr)
        if tok.text == "(":
            self._next()
            expr = self.parse_expr()
            self._expect(")")
            return self._parse_selects(expr)
        if tok.text == "{":
            return self._parse_concat()
        raise ParseError(f"unexpected token {tok.text!r} in expression", tok.loc)

    def _parse_concat(self) -> ast.Expr:
        tok = self._expect("{")
        first = self.parse_expr()
        if self._check("{"):
            # Replication: {count{expr}} -- the inner braces hold a concat.
            self._next()
            parts = [self.parse_expr()]
            while self._accept(","):
                parts.append(self.parse_expr())
            self._expect("}")
            self._expect("}")
            inner: ast.Expr
            if len(parts) == 1:
                inner = parts[0]
            else:
                inner = ast.Concat(parts=tuple(parts), loc=tok.loc)
            return ast.Replicate(count=first, inner=inner, loc=tok.loc)
        parts = [first]
        while self._accept(","):
            parts.append(self.parse_expr())
        self._expect("}")
        return ast.Concat(parts=tuple(parts), loc=tok.loc)

    def _parse_selects(self, base: ast.Expr) -> ast.Expr:
        """Attach trailing ``[...]`` selects to an identifier/paren expr."""
        while self._check("["):
            loc = self._next().loc
            first = self.parse_expr()
            if self._accept(":"):
                lsb = self.parse_expr()
                self._expect("]")
                base = ast.PartSelect(base=base, msb=first, lsb=lsb, loc=loc)
            elif self._accept("+"):
                self._expect(":")
                width = self.parse_expr()
                self._expect("]")
                base = ast.IndexedPartSelect(
                    base=base, start=first, width=width, down=False, loc=loc
                )
            elif self._accept("-"):
                self._expect(":")
                width = self.parse_expr()
                self._expect("]")
                base = ast.IndexedPartSelect(
                    base=base, start=first, width=width, down=True, loc=loc
                )
            else:
                self._expect("]")
                base = ast.BitSelect(base=base, index=first, loc=loc)
        return base


def _string_vec(text: str):
    """Encode a string literal as a LogicVec (8 bits per character)."""
    from repro.hdl.values import LogicVec

    if not text:
        return LogicVec(8, 0)
    value = 0
    for ch in text:
        value = (value << 8) | (ord(ch) & 0xFF)
    return LogicVec(8 * len(text), value)


def parse_source(source: str) -> ast.SourceFile:
    """Parse Verilog source text into a :class:`SourceFile`."""
    return Parser(tokenize(source)).parse_source()


def parse_expr_text(source: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and tools)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    trailing = parser._peek()
    if trailing.kind is not TokKind.EOF:
        raise ParseError(
            f"unexpected trailing token {trailing.text!r}", trailing.loc
        )
    return expr


def parse_module(source: str, name: str | None = None) -> ast.Module:
    """Parse source and return one module (the last one by default)."""
    return parse_source(source).module(name)
