"""Static checks producing agent-consumable diagnostics.

The RTL agent's syntax-fix loop (at most s=5 iterations in the paper)
feeds generated code through :func:`lint` and hands the rendered
diagnostics back to the LLM.  Checks:

errors
    - lexical/parse failures,
    - elaboration failures (undeclared identifiers, bad ports, ...),
    - procedural assignment to a ``wire``,
    - continuous assignment to a ``reg``,
    - multiple drivers on one signal,
warnings
    - case statements without a default arm (latch risk),
    - undriven non-input signals,
    - driven-but-unread signals.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.hdl import ast_nodes as ast
from repro.hdl.compile import compile_design
from repro.hdl.design import Design
from repro.hdl.errors import HdlError


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    severity: str  # "error" | "warning"
    message: str
    line: int | None = None

    def render(self) -> str:
        where = f" (line {self.line})" if self.line else ""
        return f"{self.severity}: {self.message}{where}"


@dataclass
class LintReport:
    """All findings for one compilation unit."""

    diagnostics: list[Diagnostic]
    design: Design | None = None

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        if not self.diagnostics:
            return "clean: no diagnostics"
        return "\n".join(d.render() for d in self.diagnostics)


def lint(
    source: str,
    top: str | None = None,
    overrides: dict[str, int] | None = None,
) -> LintReport:
    """Compile ``source`` and collect diagnostics.

    A failed parse/elaboration yields a single-error report with
    ``design`` left as None -- the caller can treat ``report.ok`` as the
    syntax gate.

    Linting is a pure function of its arguments, so the common
    no-overrides form is memoized: agents' syntax-fix loops re-lint the
    same candidate text constantly, and repeated evaluation runs re-lint
    identical candidates.
    """
    if overrides is None:
        return _lint_cached(source, top)
    return _lint_uncached(source, top, overrides)


@lru_cache(maxsize=4096)
def _lint_cached(source: str, top: str | None) -> LintReport:
    return _lint_uncached(source, top, None)


def _lint_uncached(
    source: str,
    top: str | None,
    overrides: dict[str, int] | None,
) -> LintReport:
    try:
        design = compile_design(source, top, overrides)
    except HdlError as exc:
        line = exc.loc.line if exc.loc else None
        return LintReport([Diagnostic("error", exc.message, line)])
    except RecursionError:
        return LintReport([Diagnostic("error", "expression nesting too deep")])

    diagnostics: list[Diagnostic] = []
    _check_assignment_kinds(design, diagnostics)
    _check_multiple_drivers(design, diagnostics)
    _check_case_defaults(design, diagnostics)
    _check_connectivity(design, diagnostics)
    return LintReport(diagnostics, design)


def _check_assignment_kinds(design: Design, out: list[Diagnostic]) -> None:
    for proc in design.processes:
        procedural = not proc.continuous
        for name in proc.writes:
            if name in design.memories:
                continue
            sig = design.signals.get(name)
            if sig is None:
                continue
            if procedural and sig.kind == "wire":
                out.append(
                    Diagnostic(
                        "error",
                        f"procedural assignment to wire {name!r}; declare it "
                        "as 'reg'",
                    )
                )
            if not procedural and sig.kind == "reg":
                out.append(
                    Diagnostic(
                        "error",
                        f"continuous assignment to reg {name!r}; use a wire "
                        "or move the assignment into an always block",
                    )
                )


def _check_multiple_drivers(design: Design, out: list[Diagnostic]) -> None:
    drivers: dict[str, int] = {}
    for proc in design.processes:
        if proc.kind == "initial":
            continue
        for name in proc.writes:
            drivers[name] = drivers.get(name, 0) + 1
    for name, count in sorted(drivers.items()):
        if count > 1 and name in design.signals:
            out.append(
                Diagnostic(
                    "error",
                    f"signal {name!r} is driven by {count} processes "
                    "(multiple drivers)",
                )
            )
    for name in design.inputs:
        if drivers.get(name):
            out.append(
                Diagnostic("error", f"input port {name!r} is driven inside the module")
            )


def _walk_stmts(stmt: ast.Stmt):
    yield stmt
    if isinstance(stmt, ast.Block):
        for sub in stmt.stmts:
            yield from _walk_stmts(sub)
    elif isinstance(stmt, ast.If):
        yield from _walk_stmts(stmt.then_stmt)
        if stmt.else_stmt is not None:
            yield from _walk_stmts(stmt.else_stmt)
    elif isinstance(stmt, ast.Case):
        for item in stmt.items:
            yield from _walk_stmts(item.body)
    elif isinstance(stmt, ast.For):
        yield from _walk_stmts(stmt.body)


def _check_case_defaults(design: Design, out: list[Diagnostic]) -> None:
    for proc in design.processes:
        for top_stmt in proc.body:
            for stmt in _walk_stmts(top_stmt):
                if isinstance(stmt, ast.Case):
                    has_default = any(not item.exprs for item in stmt.items)
                    if not has_default and proc.kind == "comb":
                        out.append(
                            Diagnostic(
                                "warning",
                                "combinational case statement has no default "
                                "arm (latch risk)",
                                stmt.loc.line or None,
                            )
                        )


def _check_connectivity(design: Design, out: list[Diagnostic]) -> None:
    driven: set[str] = set()
    read: set[str] = set()
    for proc in design.processes:
        driven.update(proc.writes)
        read.update(proc.reads)
    for name, sig in sorted(design.signals.items()):
        if sig.is_input:
            continue
        if name not in driven:
            out.append(Diagnostic("warning", f"signal {name!r} is never driven"))
        if name not in read and not sig.is_output:
            out.append(Diagnostic("warning", f"signal {name!r} is never read"))
