"""Elaboration: module ASTs to a flat, simulatable :class:`Design`.

Responsibilities:

- resolve parameters/localparams (including instance overrides),
  substituting them as constants into every expression;
- flatten the instance hierarchy, renaming signals to dotted global
  names (``u_alu.result``) and turning port connections into
  continuous assignments;
- merge classic-style port + net declarations;
- compute per-process read/write sets (auto ``@(*)`` sensitivity);
- reject anything outside the synthesizable subset with a located
  :class:`~repro.hdl.errors.ElaborationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdl import ast_nodes as ast
from repro.hdl.design import Design, Memory, Process, Signal
from repro.hdl.errors import ElaborationError, SourceLoc
from repro.hdl.ops import apply_binary, apply_unary, clog2
from repro.hdl.values import LogicVec

_MAX_DEPTH = 32


# ----------------------------------------------------------------------
# Constant evaluation (parameters, ranges, replication counts)
# ----------------------------------------------------------------------


def const_eval(expr: ast.Expr, params: dict[str, LogicVec]) -> LogicVec:
    """Evaluate an elaboration-time-constant expression."""
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.Ident):
        if expr.name in params:
            return params[expr.name]
        raise ElaborationError(
            f"identifier {expr.name!r} is not a constant parameter", expr.loc
        )
    if isinstance(expr, ast.Unary):
        return apply_unary(expr.op, const_eval(expr.operand, params))
    if isinstance(expr, ast.Binary):
        return apply_binary(
            expr.op, const_eval(expr.left, params), const_eval(expr.right, params)
        )
    if isinstance(expr, ast.Ternary):
        cond = const_eval(expr.cond, params)
        return const_eval(expr.then if cond.is_true() else expr.els, params)
    if isinstance(expr, ast.Concat):
        return LogicVec.concat([const_eval(p, params) for p in expr.parts])
    if isinstance(expr, ast.Replicate):
        count = const_eval(expr.count, params).to_uint()
        return const_eval(expr.inner, params).replicate(count)
    if isinstance(expr, ast.FuncCall) and expr.name == "$clog2":
        value = const_eval(expr.args[0], params).to_uint()
        return LogicVec.from_int(clog2(value), 32)
    raise ElaborationError(
        f"expression is not elaboration-time constant: {type(expr).__name__}",
        expr.loc,
    )


def const_int(expr: ast.Expr, params: dict[str, LogicVec]) -> int:
    """Constant-evaluate to a Python int (signed interpretation)."""
    value = const_eval(expr, params)
    if value.has_x:
        raise ElaborationError("constant expression evaluated to x", expr.loc)
    return value.to_int() if value.signed else value.to_uint()


# ----------------------------------------------------------------------
# Identifier renaming
# ----------------------------------------------------------------------


@dataclass
class _Scope:
    """Name-resolution context for one module instance."""

    prefix: str
    params: dict[str, LogicVec] = field(default_factory=dict)
    signal_map: dict[str, str] = field(default_factory=dict)
    func_map: dict[str, str] = field(default_factory=dict)


class _Renamer:
    """Rewrites local identifiers to flattened names / parameter constants."""

    def __init__(self, scope: _Scope, locals_: frozenset[str] = frozenset()):
        self.scope = scope
        self.locals = locals_

    def expr(self, e: ast.Expr) -> ast.Expr:
        if isinstance(e, ast.Number):
            return e
        if isinstance(e, ast.Ident):
            if e.name in self.locals:
                return e
            if e.name in self.scope.params:
                return ast.Number(value=self.scope.params[e.name], loc=e.loc)
            if e.name in self.scope.signal_map:
                return ast.Ident(name=self.scope.signal_map[e.name], loc=e.loc)
            raise ElaborationError(f"undeclared identifier {e.name!r}", e.loc)
        if isinstance(e, ast.BitSelect):
            return e.clone(base=self.expr(e.base), index=self.expr(e.index))
        if isinstance(e, ast.PartSelect):
            return e.clone(
                base=self.expr(e.base), msb=self.expr(e.msb), lsb=self.expr(e.lsb)
            )
        if isinstance(e, ast.IndexedPartSelect):
            return e.clone(
                base=self.expr(e.base),
                start=self.expr(e.start),
                width=self.expr(e.width),
            )
        if isinstance(e, ast.Unary):
            return e.clone(operand=self.expr(e.operand))
        if isinstance(e, ast.Binary):
            return e.clone(left=self.expr(e.left), right=self.expr(e.right))
        if isinstance(e, ast.Ternary):
            return e.clone(
                cond=self.expr(e.cond), then=self.expr(e.then), els=self.expr(e.els)
            )
        if isinstance(e, ast.Concat):
            return e.clone(parts=tuple(self.expr(p) for p in e.parts))
        if isinstance(e, ast.Replicate):
            return e.clone(count=self.expr(e.count), inner=self.expr(e.inner))
        if isinstance(e, ast.FuncCall):
            args = tuple(self.expr(a) for a in e.args)
            if e.name.startswith("$"):
                return e.clone(args=args)
            if e.name in self.scope.func_map:
                return e.clone(name=self.scope.func_map[e.name], args=args)
            raise ElaborationError(f"call to undefined function {e.name!r}", e.loc)
        raise ElaborationError(f"unsupported expression {type(e).__name__}", e.loc)

    def stmt(self, s: ast.Stmt) -> ast.Stmt:
        if isinstance(s, ast.Block):
            return s.clone(stmts=tuple(self.stmt(x) for x in s.stmts))
        if isinstance(s, ast.If):
            return s.clone(
                cond=self.expr(s.cond),
                then_stmt=self.stmt(s.then_stmt),
                else_stmt=None if s.else_stmt is None else self.stmt(s.else_stmt),
            )
        if isinstance(s, ast.Case):
            items = tuple(
                item.clone(
                    exprs=tuple(self.expr(e) for e in item.exprs),
                    body=self.stmt(item.body),
                )
                for item in s.items
            )
            return s.clone(subject=self.expr(s.subject), items=items)
        if isinstance(s, ast.For):
            return s.clone(
                init=self.stmt(s.init),
                cond=self.expr(s.cond),
                step=self.stmt(s.step),
                body=self.stmt(s.body),
            )
        if isinstance(s, (ast.BlockingAssign, ast.NonblockingAssign)):
            return s.clone(target=self.expr(s.target), value=self.expr(s.value))
        if isinstance(s, ast.SysCall):
            return s.clone(args=tuple(self.expr(a) for a in s.args))
        if isinstance(s, ast.NullStmt):
            return s
        raise ElaborationError(f"unsupported statement {type(s).__name__}", s.loc)


# ----------------------------------------------------------------------
# Read / write set analysis
# ----------------------------------------------------------------------


def _collect_reads(expr: ast.Expr, out: set[str], funcs: dict[str, "_FuncInfo"]) -> None:
    if isinstance(expr, ast.Number):
        return
    if isinstance(expr, ast.Ident):
        out.add(expr.name)
        return
    if isinstance(expr, ast.BitSelect):
        _collect_reads(expr.base, out, funcs)
        _collect_reads(expr.index, out, funcs)
        return
    if isinstance(expr, ast.PartSelect):
        for sub in (expr.base, expr.msb, expr.lsb):
            _collect_reads(sub, out, funcs)
        return
    if isinstance(expr, ast.IndexedPartSelect):
        for sub in (expr.base, expr.start, expr.width):
            _collect_reads(sub, out, funcs)
        return
    if isinstance(expr, ast.Unary):
        _collect_reads(expr.operand, out, funcs)
        return
    if isinstance(expr, ast.Binary):
        _collect_reads(expr.left, out, funcs)
        _collect_reads(expr.right, out, funcs)
        return
    if isinstance(expr, ast.Ternary):
        for sub in (expr.cond, expr.then, expr.els):
            _collect_reads(sub, out, funcs)
        return
    if isinstance(expr, ast.Concat):
        for part in expr.parts:
            _collect_reads(part, out, funcs)
        return
    if isinstance(expr, ast.Replicate):
        _collect_reads(expr.count, out, funcs)
        _collect_reads(expr.inner, out, funcs)
        return
    if isinstance(expr, ast.FuncCall):
        for arg in expr.args:
            _collect_reads(arg, out, funcs)
        info = funcs.get(expr.name)
        if info is not None:
            out.update(info.global_reads)
        return
    raise ElaborationError(f"unsupported expression {type(expr).__name__}", expr.loc)


def _lvalue_base(expr: ast.Expr) -> ast.Expr:
    while isinstance(expr, (ast.BitSelect, ast.PartSelect, ast.IndexedPartSelect)):
        expr = expr.base
    return expr


def _collect_stmt_rw(
    stmt: ast.Stmt,
    reads: set[str],
    writes: set[str],
    funcs: dict[str, "_FuncInfo"],
) -> None:
    if isinstance(stmt, ast.Block):
        for sub in stmt.stmts:
            _collect_stmt_rw(sub, reads, writes, funcs)
        return
    if isinstance(stmt, ast.If):
        _collect_reads(stmt.cond, reads, funcs)
        _collect_stmt_rw(stmt.then_stmt, reads, writes, funcs)
        if stmt.else_stmt is not None:
            _collect_stmt_rw(stmt.else_stmt, reads, writes, funcs)
        return
    if isinstance(stmt, ast.Case):
        _collect_reads(stmt.subject, reads, funcs)
        for item in stmt.items:
            for e in item.exprs:
                _collect_reads(e, reads, funcs)
            _collect_stmt_rw(item.body, reads, writes, funcs)
        return
    if isinstance(stmt, ast.For):
        _collect_stmt_rw(stmt.init, reads, writes, funcs)
        _collect_reads(stmt.cond, reads, funcs)
        _collect_stmt_rw(stmt.step, reads, writes, funcs)
        _collect_stmt_rw(stmt.body, reads, writes, funcs)
        return
    if isinstance(stmt, (ast.BlockingAssign, ast.NonblockingAssign)):
        _collect_reads(stmt.value, reads, funcs)
        target = stmt.target
        if isinstance(target, ast.Concat):
            parts = target.parts
        else:
            parts = (target,)
        for part in parts:
            base = _lvalue_base(part)
            if not isinstance(base, ast.Ident):
                raise ElaborationError("bad assignment target", stmt.loc)
            writes.add(base.name)
            # Index expressions inside the lvalue are reads.
            node = part
            while isinstance(
                node, (ast.BitSelect, ast.PartSelect, ast.IndexedPartSelect)
            ):
                if isinstance(node, ast.BitSelect):
                    _collect_reads(node.index, reads, funcs)
                elif isinstance(node, ast.PartSelect):
                    _collect_reads(node.msb, reads, funcs)
                    _collect_reads(node.lsb, reads, funcs)
                else:
                    _collect_reads(node.start, reads, funcs)
                node = node.base
        return
    if isinstance(stmt, ast.SysCall):
        for arg in stmt.args:
            _collect_reads(arg, reads, funcs)
        return
    if isinstance(stmt, ast.NullStmt):
        return
    raise ElaborationError(f"unsupported statement {type(stmt).__name__}", stmt.loc)


@dataclass
class _FuncInfo:
    decl: ast.FunctionDecl
    global_reads: frozenset[str]


# ----------------------------------------------------------------------
# The elaborator
# ----------------------------------------------------------------------


class Elaborator:
    """Flattens a parsed module library into a :class:`Design`."""

    def __init__(self, modules: dict[str, ast.Module]):
        self.modules = modules
        self.design: Design | None = None
        self._funcs: dict[str, _FuncInfo] = {}

    @staticmethod
    def from_source(source: ast.SourceFile) -> "Elaborator":
        return Elaborator({m.name: m for m in source.modules})

    def elaborate(
        self, top: str, overrides: dict[str, int] | None = None
    ) -> Design:
        if top not in self.modules:
            raise ElaborationError(f"top module {top!r} not found")
        self.design = Design(name=top)
        self._funcs = {}
        top_params = {
            name: LogicVec.from_int(value, 32)
            for name, value in (overrides or {}).items()
        }
        self._elaborate_module(self.modules[top], prefix="", overrides=top_params, depth=0)
        self.design.functions = {
            name: info.decl for name, info in self._funcs.items()
        }
        return self.design

    # ------------------------------------------------------------------

    def _elaborate_module(
        self,
        module: ast.Module,
        prefix: str,
        overrides: dict[str, LogicVec],
        depth: int,
        port_bindings: dict[str, tuple[ast.Expr | None, _Scope]] | None = None,
    ) -> None:
        """Elaborate one instance.

        ``port_bindings`` maps port name to (parent expression, parent
        scope); None for the top module, whose ports become design I/O.
        """
        assert self.design is not None
        if depth > _MAX_DEPTH:
            raise ElaborationError(
                f"instance hierarchy deeper than {_MAX_DEPTH} (recursive modules?)",
                module.loc,
            )
        scope = _Scope(prefix=prefix)

        # Pass 1: parameters in declaration order (overrides win).
        for item in module.items:
            if isinstance(item, ast.ParamDecl):
                if not item.local and item.name in overrides:
                    value = overrides[item.name]
                else:
                    value = const_eval(item.value, scope.params)
                if item.range is not None:
                    msb = const_int(item.range.msb, scope.params)
                    lsb = const_int(item.range.lsb, scope.params)
                    value = value.resize(abs(msb - lsb) + 1, item.signed)
                scope.params[item.name] = value
        unknown = set(overrides) - set(scope.params)
        if unknown and port_bindings is not None:
            raise ElaborationError(
                f"parameter override(s) {sorted(unknown)} not declared by "
                f"module {module.name!r}",
                module.loc,
            )

        # Pass 2: merge port and net declarations into signal specs.
        port_spec: dict[str, dict] = {}
        net_items: list[ast.NetDecl] = []
        for item in module.items:
            if isinstance(item, ast.PortDecl):
                for name in item.names:
                    spec = port_spec.setdefault(
                        name,
                        {
                            "direction": item.direction,
                            "kind": "wire",
                            "signed": False,
                            "range": None,
                            "loc": item.loc,
                        },
                    )
                    spec["direction"] = item.direction
                    if item.net_kind == "reg":
                        spec["kind"] = "reg"
                    if item.signed:
                        spec["signed"] = True
                    if item.range is not None:
                        spec["range"] = item.range
            elif isinstance(item, ast.NetDecl):
                net_items.append(item)

        for name in module.ports:
            if name not in port_spec:
                raise ElaborationError(
                    f"port {name!r} has no direction declaration", module.loc
                )

        declared: set[str] = set()

        def add_signal(
            name: str,
            kind: str,
            signed: bool,
            rng: ast.Range | None,
            loc: SourceLoc,
            direction: str | None = None,
        ) -> None:
            global_name = prefix + name
            if name in declared and direction is None:
                raise ElaborationError(f"signal {name!r} declared twice", loc)
            width, lsb = self._range_width(rng, scope.params)
            self.design.signals[global_name] = Signal(
                name=global_name,
                width=width,
                signed=signed,
                kind=kind,
                lsb=lsb,
                is_input=(direction == "input" and port_bindings is None),
                is_output=(direction == "output" and port_bindings is None),
            )
            scope.signal_map[name] = global_name
            declared.add(name)

        # Ports first (in port order), then plain nets.
        for name in module.ports:
            spec = port_spec[name]
            if spec["direction"] == "inout":
                raise ElaborationError("inout ports are not supported", spec["loc"])
            # A body ``reg``/``wire`` declaration may refine a classic-style
            # port; find it before creating the signal.
            for net in net_items:
                if name in net.names and net.array_range is None:
                    if net.net_kind == "reg":
                        spec["kind"] = "reg"
                    if net.signed:
                        spec["signed"] = True
                    if net.range is not None and spec["range"] is None:
                        spec["range"] = net.range
            add_signal(
                name,
                spec["kind"],
                spec["signed"],
                spec["range"],
                spec["loc"],
                direction=spec["direction"],
            )
            if port_bindings is None:
                if spec["direction"] == "input":
                    self.design.inputs.append(name)
                else:
                    self.design.outputs.append(name)

        for net in net_items:
            if net.array_range is not None:
                self._add_memory(net, scope, prefix)
                continue
            for name in net.names:
                if name in declared:
                    if name in port_spec:
                        continue  # port refinement already handled
                    raise ElaborationError(
                        f"signal {name!r} declared twice", net.loc
                    )
                kind = "reg" if net.net_kind in ("reg", "integer") else "wire"
                rng = net.range
                if net.net_kind == "integer":
                    rng = _INT_RANGE
                add_signal(name, kind, net.signed, rng, net.loc)
            if net.init is not None:
                renamer = _Renamer(scope)
                assign = ast.BlockingAssign(
                    target=ast.Ident(name=net.names[0], loc=net.loc),
                    value=net.init,
                    loc=net.loc,
                )
                self._add_comb(renamer.stmt(assign), prefix)

        # Pass 3: functions (must precede uses in processes).
        for item in module.items:
            if isinstance(item, ast.FunctionDecl):
                self._add_function(item, scope, prefix)

        # Pass 4: behaviour.
        renamer = _Renamer(scope)
        for item in module.items:
            if isinstance(item, ast.ContinuousAssign):
                assign = ast.BlockingAssign(
                    target=renamer.expr(item.target),
                    value=renamer.expr(item.value),
                    loc=item.loc,
                )
                self._add_comb(assign, prefix)
            elif isinstance(item, ast.AlwaysBlock):
                self._add_always(item, scope, prefix)
            elif isinstance(item, ast.InitialBlock):
                body = renamer.stmt(item.body)
                reads: set[str] = set()
                writes: set[str] = set()
                _collect_stmt_rw(body, reads, writes, self._funcs)
                self.design.processes.append(
                    Process(
                        kind="initial",
                        body=(body,),
                        reads=frozenset(reads),
                        writes=frozenset(writes),
                        origin=prefix or module.name,
                    )
                )
            elif isinstance(item, ast.Instance):
                self._add_instance(item, scope, prefix, depth)

        # Pass 5: port bindings become continuous assignments.
        if port_bindings is not None:
            for name in module.ports:
                binding, parent_scope = port_bindings.get(name, (None, None))
                if binding is None:
                    continue
                spec = port_spec[name]
                parent_renamer = _Renamer(parent_scope)
                bound = parent_renamer.expr(binding)
                local = ast.Ident(name=scope.signal_map[name], loc=spec["loc"])
                if spec["direction"] == "input":
                    assign = ast.BlockingAssign(
                        target=local, value=bound, loc=spec["loc"]
                    )
                else:
                    assign = ast.BlockingAssign(
                        target=bound, value=local, loc=spec["loc"]
                    )
                self._add_comb(assign, prefix)

    # ------------------------------------------------------------------

    def _range_width(
        self, rng: ast.Range | None, params: dict[str, LogicVec]
    ) -> tuple[int, int]:
        if rng is None:
            return 1, 0
        msb = const_int(rng.msb, params)
        lsb = const_int(rng.lsb, params)
        if msb < lsb:
            raise ElaborationError(
                f"descending ranges [{msb}:{lsb}] are not supported for vectors",
                rng.loc,
            )
        return msb - lsb + 1, lsb

    def _add_memory(self, net: ast.NetDecl, scope: _Scope, prefix: str) -> None:
        assert self.design is not None
        if net.net_kind != "reg":
            raise ElaborationError("memory arrays must be declared 'reg'", net.loc)
        width, _ = self._range_width(net.range, scope.params)
        a_msb = const_int(net.array_range.msb, scope.params)
        a_lsb = const_int(net.array_range.lsb, scope.params)
        base = min(a_msb, a_lsb)
        size = abs(a_msb - a_lsb) + 1
        name = net.names[0]
        global_name = prefix + name
        self.design.memories[global_name] = Memory(
            name=global_name, width=width, size=size, base=base, signed=net.signed
        )
        scope.signal_map[name] = global_name

    def _add_function(
        self, decl: ast.FunctionDecl, scope: _Scope, prefix: str
    ) -> None:
        local_names = {decl.name}
        local_names.update(name for name, _, _ in decl.inputs)
        for net in decl.locals:
            local_names.update(net.names)
        renamer = _Renamer(scope, frozenset(local_names))
        body = renamer.stmt(decl.body)

        # Resolve input/local ranges against parameters now.
        inputs = []
        for name, rng, signed in decl.inputs:
            inputs.append((name, self._const_range(rng, scope.params), signed))
        locals_ = []
        for net in decl.locals:
            rng = _INT_RANGE if net.net_kind == "integer" else net.range
            locals_.append(
                net.clone(range=self._const_range(rng, scope.params))
            )
        global_name = prefix + decl.name
        new_decl = decl.clone(
            name=global_name,
            inputs=tuple(inputs),
            locals=tuple(locals_),
            body=body,
            range=self._const_range(decl.range, scope.params),
        )
        reads: set[str] = set()
        writes: set[str] = set()
        _collect_stmt_rw(body, reads, writes, self._funcs)
        global_reads = frozenset(
            r for r in reads if r not in local_names and r in self.design.signals
        )
        self._funcs[global_name] = _FuncInfo(decl=new_decl, global_reads=global_reads)
        scope.func_map[decl.name] = global_name

    def _const_range(
        self, rng: ast.Range | None, params: dict[str, LogicVec]
    ) -> ast.Range | None:
        if rng is None:
            return None
        msb = const_int(rng.msb, params)
        lsb = const_int(rng.lsb, params)
        return ast.Range(
            msb=ast.Number(value=LogicVec.from_int(msb, 32), loc=rng.loc),
            lsb=ast.Number(value=LogicVec.from_int(lsb, 32), loc=rng.loc),
            loc=rng.loc,
        )

    def _add_comb(self, stmt: ast.Stmt, prefix: str) -> None:
        assert self.design is not None
        reads: set[str] = set()
        writes: set[str] = set()
        _collect_stmt_rw(stmt, reads, writes, self._funcs)
        self.design.processes.append(
            Process(
                kind="comb",
                body=(stmt,),
                reads=frozenset(reads),
                writes=frozenset(writes),
                origin=prefix,
                continuous=True,
            )
        )

    def _add_always(
        self, item: ast.AlwaysBlock, scope: _Scope, prefix: str
    ) -> None:
        assert self.design is not None
        renamer = _Renamer(scope)
        body = renamer.stmt(item.body)
        reads: set[str] = set()
        writes: set[str] = set()
        _collect_stmt_rw(body, reads, writes, self._funcs)
        sens = item.sensitivity
        if sens.is_clocked:
            edges = []
            for event in sens.events:
                if event.edge == "level":
                    raise ElaborationError(
                        "mixing edge and level events in one sensitivity list "
                        "is not supported",
                        event.loc,
                    )
                signal = renamer.expr(event.signal)
                if not isinstance(signal, ast.Ident):
                    raise ElaborationError(
                        "edge events must name a plain signal", event.loc
                    )
                edges.append((event.edge, signal.name))
            self.design.processes.append(
                Process(
                    kind="clocked",
                    body=(body,),
                    edges=tuple(edges),
                    reads=frozenset(reads),
                    writes=frozenset(writes),
                    origin=prefix,
                )
            )
            return
        if sens.star:
            sensitivity = frozenset(reads)
        else:
            names: set[str] = set()
            for event in sens.events:
                signal = renamer.expr(event.signal)
                _collect_reads(signal, names, self._funcs)
            sensitivity = frozenset(names)
        self.design.processes.append(
            Process(
                kind="comb",
                body=(body,),
                reads=sensitivity,
                writes=frozenset(writes),
                origin=prefix,
            )
        )

    def _add_instance(
        self, item: ast.Instance, scope: _Scope, prefix: str, depth: int
    ) -> None:
        child = self.modules.get(item.module_name)
        if child is None:
            raise ElaborationError(
                f"instantiated module {item.module_name!r} is not defined", item.loc
            )
        # Parameter overrides are constants in the parent scope.
        child_param_names = [
            it.name
            for it in child.items
            if isinstance(it, ast.ParamDecl) and not it.local
        ]
        overrides: dict[str, LogicVec] = {}
        ordered_index = 0
        for name, expr in item.params:
            value = const_eval(expr, scope.params)
            if name is None:
                if ordered_index >= len(child_param_names):
                    raise ElaborationError(
                        "too many ordered parameter overrides", item.loc
                    )
                overrides[child_param_names[ordered_index]] = value
                ordered_index += 1
            else:
                overrides[name] = value
        # Port bindings: by name or by position.
        bindings: dict[str, tuple[ast.Expr | None, _Scope]] = {}
        for index, conn in enumerate(item.ports):
            if conn.name is not None:
                port_name = conn.name
            else:
                if index >= len(child.ports):
                    raise ElaborationError("too many port connections", conn.loc)
                port_name = child.ports[index]
            if port_name not in child.ports:
                raise ElaborationError(
                    f"module {child.name!r} has no port {port_name!r}", conn.loc
                )
            if conn.expr is not None:
                bindings[port_name] = (conn.expr, scope)
        self._elaborate_module(
            child,
            prefix=f"{prefix}{item.inst_name}.",
            overrides=overrides,
            depth=depth + 1,
            port_bindings=bindings,
        )


_INT_RANGE = ast.Range(
    msb=ast.Number(value=LogicVec.from_int(31, 32)),
    lsb=ast.Number(value=LogicVec.from_int(0, 32)),
)


def elaborate_source(
    source: ast.SourceFile,
    top: str | None = None,
    overrides: dict[str, int] | None = None,
) -> Design:
    """Parse-tree to design in one call (top defaults to the last module)."""
    top_name = source.module(top).name
    return Elaborator.from_source(source).elaborate(top_name, overrides)
