"""Operator dispatch shared by constant evaluation and simulation.

Maps Verilog operator spellings onto :class:`LogicVec` methods so the
elaborator's constant folder and the runtime interpreter cannot drift
apart semantically.
"""

from __future__ import annotations

from repro.hdl.errors import HdlError
from repro.hdl.values import LogicVec

_BINARY = {
    "+": LogicVec.add,
    "-": LogicVec.sub,
    "*": LogicVec.mul,
    "/": LogicVec.div,
    "%": LogicVec.mod,
    "**": LogicVec.pow,
    "&": LogicVec.bit_and,
    "|": LogicVec.bit_or,
    "^": LogicVec.bit_xor,
    "~^": LogicVec.bit_xnor,
    "^~": LogicVec.bit_xnor,
    "==": LogicVec.eq,
    "!=": LogicVec.neq,
    "===": LogicVec.case_eq,
    "!==": LogicVec.case_neq,
    "<": LogicVec.lt,
    "<=": LogicVec.le,
    ">": LogicVec.gt,
    ">=": LogicVec.ge,
    "&&": LogicVec.logical_and,
    "||": LogicVec.logical_or,
    "<<": LogicVec.shl,
    ">>": LogicVec.shr,
    "<<<": LogicVec.shl,
    ">>>": LogicVec.ashr,
}

_UNARY = {
    "~": LogicVec.bit_not,
    "!": LogicVec.logical_not,
    "-": LogicVec.neg,
    "+": lambda v: v,
    "&": LogicVec.reduce_and,
    "|": LogicVec.reduce_or,
    "^": LogicVec.reduce_xor,
    "~&": LogicVec.reduce_nand,
    "~|": LogicVec.reduce_nor,
    "~^": LogicVec.reduce_xnor,
    "^~": LogicVec.reduce_xnor,
}


def apply_binary(op: str, left: LogicVec, right: LogicVec) -> LogicVec:
    """Apply a binary Verilog operator."""
    fn = _BINARY.get(op)
    if fn is None:
        raise HdlError(f"unsupported binary operator {op!r}")
    return fn(left, right)


def apply_unary(op: str, operand: LogicVec) -> LogicVec:
    """Apply a unary Verilog operator."""
    fn = _UNARY.get(op)
    if fn is None:
        raise HdlError(f"unsupported unary operator {op!r}")
    return fn(operand)


def clog2(value: int) -> int:
    """Verilog-2005 ``$clog2``: ceil(log2(value)), with $clog2(0) == 0."""
    if value <= 1:
        return 0
    return (value - 1).bit_length()
