"""Event-driven simulation kernel.

Scheduling model (a faithful subset of the IEEE 1364 stratified event
queue):

- combinational processes (continuous assigns, ``always @(*)``,
  level-sensitive always blocks) re-run whenever a signal in their
  sensitivity set changes, via a FIFO worklist drained to a fixpoint
  (delta cycles);
- edge-triggered processes fire on ``posedge``/``negedge`` transitions
  detected after the combinational network settles;
- nonblocking assignments are queued while clocked processes run and
  commit together afterwards (the NBA region), then the network settles
  again -- so classic shift registers and cross-coupled registers work;
- an activation budget guards against combinational oscillation
  (``always @(*) x = ~x;``) with a clear diagnostic.

The kernel is driven from Python: testbenches poke input values and call
:meth:`Simulation.settle`, typically via :mod:`repro.tb.runner`.
"""

from __future__ import annotations

from collections import deque

from repro.hdl.design import Design
from repro.hdl.errors import SimulationError
from repro.hdl.interpreter import Interpreter, WritePiece
from repro.hdl.values import LogicVec

_MAX_EDGE_ROUNDS = 64

# (old, new) bit states that constitute an edge; 2 encodes x.
_POSEDGE = {(0, 1), (0, 2), (2, 1)}
_NEGEDGE = {(1, 0), (1, 2), (2, 0)}


def _bit_state(value: LogicVec) -> int:
    bit = value.bit(0)
    if bit.has_x:
        return 2
    return bit.val


class Simulation:
    """Simulates one elaborated :class:`~repro.hdl.design.Design`."""

    def __init__(self, design: Design, max_activations: int | None = None):
        self.design = design
        self.interp = Interpreter(self)
        self.values: dict[str, LogicVec] = {}
        self.memories: dict[str, list[LogicVec]] = {}
        self.display_log: list[str] = []
        self.finished = False
        self.time = 0  # advanced by the testbench runner, for logs only

        for sig in design.signals.values():
            self.values[sig.name] = LogicVec.all_x(sig.width, sig.signed)
        for mem in design.memories.values():
            self.memories[mem.name] = [
                LogicVec.all_x(mem.width, mem.signed) for _ in range(mem.size)
            ]

        self._comb = [p for p in design.processes if p.kind == "comb"]
        self._clocked = [p for p in design.processes if p.kind == "clocked"]
        self._initial = [p for p in design.processes if p.kind == "initial"]
        self._max_activations = max_activations or (200 * len(self._comb) + 1000)

        self._comb_index: dict[str, list[int]] = {}
        for idx, proc in enumerate(self._comb):
            for name in proc.reads:
                self._comb_index.setdefault(name, []).append(idx)

        self._edge_sources: list[str] = []
        seen = set()
        for proc in self._clocked:
            for _, name in proc.edges:
                if name not in seen:
                    seen.add(name)
                    self._edge_sources.append(name)

        self._pending: deque[int] = deque()
        self._in_queue: set[int] = set()
        self._nba: list[tuple[WritePiece, LogicVec]] = []
        # Index of the comb process currently executing.  A Verilog process
        # is not waiting on its event list while it runs, so its own writes
        # must not re-trigger it (otherwise every for-loop livelocks).
        self._running: int | None = None

        for proc in self._initial:
            for stmt in proc.body:
                self.interp.exec_stmt(stmt)
        self._commit_nba()
        for idx in range(len(self._comb)):
            self._enqueue(idx)
        self._drain_comb()
        self._edge_prev = {
            name: _bit_state(self.values[name]) for name in self._edge_sources
        }

    # ------------------------------------------------------------------
    # StateAccess interface (used by the interpreter)
    # ------------------------------------------------------------------

    def get_signal(self, name: str) -> LogicVec:
        return self.values[name]

    def set_signal(self, name: str, value: LogicVec) -> None:
        sig = self.design.signals[name]
        new = value.resize(sig.width, sig.signed)
        if new != self.values[name]:
            self.values[name] = new
            for idx in self._comb_index.get(name, ()):
                if idx != self._running:
                    self._enqueue(idx)

    def get_mem_word(self, name: str, index: int) -> LogicVec:
        mem = self.design.memories[name]
        slot = index - mem.base
        if 0 <= slot < mem.size:
            return self.memories[name][slot]
        return LogicVec.all_x(mem.width, mem.signed)

    def set_mem_word(self, name: str, index: int, value: LogicVec) -> None:
        mem = self.design.memories[name]
        if not (0 <= index < mem.size):
            return
        new = value.resize(mem.width, mem.signed)
        if new != self.memories[name][index]:
            self.memories[name][index] = new
            for idx in self._comb_index.get(name, ()):
                if idx != self._running:
                    self._enqueue(idx)

    def schedule_nba(self, piece: WritePiece, value: LogicVec) -> None:
        self._nba.append((piece, value))

    def sys_call(self, name: str, args: list[LogicVec]) -> None:
        if name in ("$finish", "$stop"):
            self.finished = True
            return
        if name in ("$display", "$write", "$strobe", "$monitor"):
            rendered = " ".join(a.format_display() for a in args)
            self.display_log.append(f"[{self.time}] {rendered}")
        # Every other system task is a no-op in this substrate.

    # ------------------------------------------------------------------
    # Public driving interface
    # ------------------------------------------------------------------

    def poke(self, name: str, value: LogicVec | int) -> None:
        """Drive a top-level input (does not settle; call :meth:`settle`)."""
        sig = self.design.signals.get(name)
        if sig is None or not sig.is_input:
            raise SimulationError(f"{name!r} is not a top-level input")
        if isinstance(value, int):
            value = LogicVec.from_int(value, sig.width)
        self.set_signal(name, value)

    def peek(self, name: str) -> LogicVec:
        """Read any signal by flattened name."""
        if name not in self.values:
            raise SimulationError(f"no signal named {name!r}")
        return self.values[name]

    def settle(self) -> None:
        """Propagate until quiescent: comb fixpoint, edges, NBA commit."""
        for _ in range(_MAX_EDGE_ROUNDS):
            self._drain_comb()
            fired = self._collect_edge_processes()
            if not fired and not self._nba:
                return
            for proc in fired:
                for stmt in proc.body:
                    self.interp.exec_stmt(stmt)
            self._commit_nba()
        raise SimulationError(
            f"simulation did not converge after {_MAX_EDGE_ROUNDS} edge rounds "
            "(unstable derived clock?)"
        )

    def step(self, changes: dict[str, LogicVec | int]) -> None:
        """Apply input changes, then settle."""
        for name, value in changes.items():
            self.poke(name, value)
        self.settle()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _commit_nba(self) -> None:
        queued = self._nba
        self._nba = []
        for piece, value in queued:
            self.interp.commit_nba(piece, value)

    def _enqueue(self, idx: int) -> None:
        if idx not in self._in_queue:
            self._in_queue.add(idx)
            self._pending.append(idx)

    def _drain_comb(self) -> None:
        activations = 0
        while self._pending:
            activations += 1
            if activations > self._max_activations:
                raise SimulationError(
                    "combinational logic did not stabilise "
                    f"(> {self._max_activations} process activations); "
                    "likely a zero-delay feedback loop"
                )
            idx = self._pending.popleft()
            self._in_queue.discard(idx)
            self._running = idx
            try:
                for stmt in self._comb[idx].body:
                    self.interp.exec_stmt(stmt)
            finally:
                self._running = None

    def _collect_edge_processes(self):
        fired = []
        states = {}
        for name in self._edge_sources:
            states[name] = _bit_state(self.values[name])
        for proc in self._clocked:
            for edge, name in proc.edges:
                old = self._edge_prev[name]
                new = states[name]
                table = _POSEDGE if edge == "pos" else _NEGEDGE
                if (old, new) in table:
                    fired.append(proc)
                    break
        self._edge_prev = states
        return fired
