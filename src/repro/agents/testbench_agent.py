"""Testbench generation agent (paper Step 1 / Step 3 regeneration).

Produces optimized testbenches in the textual waveform-output format,
from the natural-language spec (plus the golden testbench when the
benchmark provides one).  Responses are parsed and re-requested on
format errors, mirroring the syntax-fix loop on the RTL side.
"""

from __future__ import annotations

from repro.agents.base import Agent
from repro.agents.messages import SpecMessage
from repro.core.task import DesignTask
from repro.llm.interface import SamplingParams
from repro.llm.simllm import extract_tb_block
from repro.tb.stimulus import Testbench, TestbenchFormatError, parse_testbench

_MAX_FORMAT_RETRIES = 3


class TestbenchAgent(Agent):
    role = "testbench"
    system_prompt = (
        "You are a hardware verification specialist. You write optimized "
        "testbenches that log a state checkpoint (inputs, DUT outputs, "
        "expected outputs) at every clock edge, in the textual TESTBENCH "
        "format, so downstream agents can localise the earliest mismatch."
    )

    def generate(
        self,
        task: DesignTask,
        params: SamplingParams,
        golden_hint: str | None = None,
        reason: str | None = None,
    ) -> tuple[str, Testbench]:
        """Generate (testbench text, parsed testbench) for a task.

        ``reason`` carries the judge's complaint when this is a Step-3
        regeneration; ``golden_hint`` carries benchmark-provided golden
        testbench text when available (VerilogEval v1 ships one).
        """
        spec = SpecMessage(task.spec, task.top, task.kind, task.clock)
        prompt_parts = [
            "Write a testbench for the design below. Produce an optimized "
            "testbench that records a state checkpoint at every checked "
            "step, in the TESTBENCH text format inside a ```testbench "
            "fence.",
            spec.render(),
        ]
        if golden_hint is not None:
            prompt_parts.append(
                "## Golden testbench (reference stimulus)\n"
                f"```testbench\n{golden_hint}```"
            )
        if reason is not None:
            prompt_parts.append(
                f"## Review feedback\nThe previous testbench was judged "
                f"incorrect: {reason} Regenerate an improved testbench."
            )
        prompt = "\n\n".join(prompt_parts)
        last_error = "no testbench block found"
        for _ in range(_MAX_FORMAT_RETRIES):
            reply = self.ask(prompt, params)
            text = extract_tb_block(reply)
            if text is not None:
                try:
                    tb = parse_testbench(text, name=f"tb_{task.name}")
                    return text, tb
                except TestbenchFormatError as exc:
                    last_error = str(exc)
            prompt = (
                "The previous answer was not a valid TESTBENCH block "
                f"({last_error}). Write a testbench again, as a single "
                "```testbench fenced block in the TESTBENCH text format."
                f"\n\n{spec.render()}"
            )
        raise RuntimeError(
            f"testbench agent failed to produce a parseable testbench: {last_error}"
        )
