"""Judge agent (paper Step 3/4): simulate, score, rank, and arbitrate.

The judge owns the simulator as its tool: it runs candidates against
the optimized testbench to obtain scores s(r) = 1 - m(r)/tc(r) (Eq. 2),
selects the Top-K candidate set (Eq. 3), and -- when the initial RTL
fails -- reviews the testbench itself and orders a regeneration if it
judges the expectations wrong.
"""

from __future__ import annotations

from repro.agents.base import Agent
from repro.agents.messages import ScoreMessage, SpecMessage, VerdictMessage
from repro.core.task import DesignTask
from repro.llm.interface import SamplingParams
from repro.runtime.cache import cached_run_testbench
from repro.tb.runner import TestReport
from repro.tb.stimulus import Testbench


class JudgeAgent(Agent):
    role = "judge"
    system_prompt = (
        "You are a meticulous verification judge. You weigh simulation "
        "evidence, decide whether failures implicate the design or the "
        "testbench, and answer reviews with a single VERDICT line."
    )

    def score(self, source: str, testbench: Testbench, top: str) -> TestReport:
        """Run one candidate against the optimized testbench (tool call).

        Simulation is deterministic, so identical (source, testbench,
        top) triples are served from the runtime's content-addressed
        cache -- re-scored debug candidates and duplicate samples cost
        nothing.
        """
        return cached_run_testbench(source, testbench, top)

    def rank(
        self, scored: list[tuple[str, TestReport]], k: int
    ) -> list[tuple[str, TestReport]]:
        """Top-K selection by score (paper Eq. 3); stable on ties."""
        ordered = sorted(
            enumerate(scored), key=lambda pair: (-pair[1][1].score, pair[0])
        )
        return [pair[1] for pair in ordered[:k]]

    def review_testbench(
        self,
        task: DesignTask,
        tb_text: str,
        report: TestReport,
        params: SamplingParams,
    ) -> VerdictMessage:
        """Step 3: is the optimized testbench itself wrong?"""
        spec = SpecMessage(task.spec, task.top, task.kind, task.clock)
        prompt = (
            "The initial RTL fails the optimized testbench. Review the "
            "testbench against the specification and decide whether the "
            "testbench expectations are correct. Answer with a line "
            "'VERDICT: correct - ...' or 'VERDICT: incorrect - ...'.\n\n"
            f"{spec.render()}\n\n"
            f"## Testbench under review\n```testbench\n{tb_text}```\n\n"
            f"{ScoreMessage.from_report(report).render()}"
        )
        reply = self.ask(prompt, params)
        lowered = reply.lower()
        correct = "verdict: incorrect" not in lowered
        rationale = reply.split("-", 1)[1].strip() if "-" in reply else reply.strip()
        return VerdictMessage(correct=correct, rationale=rationale)
