"""Shared agent wiring: the four-role team every solve path assembles.

MAGE proper gives each role a private conversation; the merged-history
systems (Table III single-agent, the AIVRIL-style coder) hand one
shared conversation to every role -- which is exactly the context
pollution Sec. II-A warns against.  Both spellings used to be
duplicated across ``core/engine.py`` and ``baselines/*.py``; this is
the one place that knows how to build them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.debug_agent import DebugAgent
from repro.agents.judge_agent import JudgeAgent
from repro.agents.rtl_agent import RTLAgent
from repro.agents.testbench_agent import TestbenchAgent
from repro.llm.interface import Conversation, LLMClient


@dataclass
class AgentTeam:
    """The four specialised roles over one LLM client."""

    llm: LLMClient
    tb: TestbenchAgent
    rtl: RTLAgent
    judge: JudgeAgent
    debug: DebugAgent

    @classmethod
    def build(
        cls, llm: LLMClient, shared_prompt: str | None = None
    ) -> "AgentTeam":
        """Wire the team; ``shared_prompt`` merges all histories into
        one conversation with that system prompt (the ablation mode)."""
        shared = (
            Conversation(system_prompt=shared_prompt)
            if shared_prompt is not None
            else None
        )
        return cls(
            llm=llm,
            tb=TestbenchAgent(llm, shared),
            rtl=RTLAgent(llm, shared),
            judge=JudgeAgent(llm, shared),
            debug=DebugAgent(llm, shared),
        )

    @property
    def llm_calls(self) -> int:
        """Total completions consumed across the four roles."""
        return (
            self.tb.calls + self.rtl.calls + self.judge.calls + self.debug.calls
        )
