"""Shared agent wiring: the four-role team every solve path assembles.

MAGE proper gives each role a private conversation; the merged-history
systems (Table III single-agent, the AIVRIL-style coder) hand one
shared conversation to every role -- which is exactly the context
pollution Sec. II-A warns against.  Both spellings used to be
duplicated across ``core/engine.py`` and ``baselines/*.py``; this is
the one place that knows how to build them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.debug_agent import DebugAgent
from repro.agents.judge_agent import JudgeAgent
from repro.agents.rtl_agent import RTLAgent
from repro.agents.testbench_agent import TestbenchAgent
from repro.llm.interface import Conversation, LLMClient


@dataclass
class AgentTeam:
    """The four specialised roles over one LLM client."""

    llm: LLMClient
    tb: TestbenchAgent
    rtl: RTLAgent
    judge: JudgeAgent
    debug: DebugAgent

    @classmethod
    def build(
        cls, llm: LLMClient, shared_prompt: str | None = None
    ) -> "AgentTeam":
        """Wire the team; ``shared_prompt`` merges all histories into
        one conversation with that system prompt (the ablation mode).

        Clients that offer per-role routing (the LLM gateway's
        ``for_role``) hand each role its own client -- e.g. a cheaper
        model for testbench generation than for debugging.  Plain
        clients serve all four roles directly, unchanged.
        """
        shared = (
            Conversation(system_prompt=shared_prompt)
            if shared_prompt is not None
            else None
        )
        route = getattr(llm, "for_role", None)
        client_for = route if callable(route) else (lambda _role: llm)
        return cls(
            llm=llm,
            tb=TestbenchAgent(client_for("tb"), shared),
            rtl=RTLAgent(client_for("rtl"), shared),
            judge=JudgeAgent(client_for("judge"), shared),
            debug=DebugAgent(client_for("debug"), shared),
        )

    @property
    def llm_calls(self) -> int:
        """Total completions consumed across the four roles."""
        return (
            self.tb.calls + self.rtl.calls + self.judge.calls + self.debug.calls
        )
