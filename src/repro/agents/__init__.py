"""MAGE's four specialised agents (paper Sec. III-A, Fig. 1b).

Each agent owns a *private* conversation history -- the core of the
multi-agent claim: no agent carries another agent's context.  The
single-agent ablation (Table III) is built by handing every agent the
same shared conversation and a pollution-penalised model profile.
"""

from repro.agents.base import Agent
from repro.agents.debug_agent import DebugAgent
from repro.agents.judge_agent import JudgeAgent
from repro.agents.messages import (
    CandidateMessage,
    ScoreMessage,
    SpecMessage,
    TestbenchMessage,
    VerdictMessage,
)
from repro.agents.rtl_agent import RTLAgent
from repro.agents.testbench_agent import TestbenchAgent

__all__ = [
    "Agent",
    "CandidateMessage",
    "DebugAgent",
    "JudgeAgent",
    "RTLAgent",
    "ScoreMessage",
    "SpecMessage",
    "TestbenchAgent",
    "TestbenchMessage",
    "VerdictMessage",
]
