"""The design-context communication protocol (paper Sec. III-A).

Agents do not read each other's conversations; they exchange these
typed messages through the engine.  Each message renders itself into
the prompt fragment the receiving agent embeds -- keeping the protocol
textual (LLM-adaptable) while staying structured in Python.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tb.runner import TestReport


@dataclass(frozen=True)
class SpecMessage:
    """The natural-language specification plus interface contract."""

    spec: str
    top: str
    kind: str
    clock: str | None

    def render(self) -> str:
        iface = f"Top module name: {self.top}. "
        if self.kind == "clocked":
            iface += f"Synchronous design, clock input '{self.clock}'."
        else:
            iface += "Purely combinational design."
        return f"## Specification\n{self.spec}\n\n{iface}"


@dataclass(frozen=True)
class TestbenchMessage:
    """A generated testbench travelling from the testbench agent."""

    text: str

    def render(self) -> str:
        return f"## Optimized testbench\n```testbench\n{self.text}```"


@dataclass(frozen=True)
class CandidateMessage:
    """RTL code travelling between agents."""

    source: str

    def render(self) -> str:
        return f"## Current code\n```verilog\n{self.source}```"


@dataclass(frozen=True)
class ScoreMessage:
    """Judge-side summary of one simulation run."""

    score: float
    mismatches: int
    total_checks: int
    error: str | None

    @staticmethod
    def from_report(report: TestReport) -> "ScoreMessage":
        return ScoreMessage(
            score=report.score,
            mismatches=report.mismatches,
            total_checks=report.total_checks,
            error=report.error,
        )

    def render(self) -> str:
        if self.error is not None:
            return f"## Simulation result\ncompile/runtime failure: {self.error}"
        return (
            "## Simulation result\n"
            f"score s(r) = {self.score:.3f} "
            f"({self.mismatches} mismatches over {self.total_checks} checks)"
        )


@dataclass(frozen=True)
class VerdictMessage:
    """Judge verdict on a testbench review."""

    correct: bool
    rationale: str

    def render(self) -> str:
        status = "correct" if self.correct else "incorrect"
        return f"VERDICT: {status} - {self.rationale}"
