"""RTL generation agent (paper Step 2 / Step 4 candidate sampling).

Converts the specification plus the optimized testbench into Verilog,
running a syntax-checking loop of at most ``s = 5`` iterations per
candidate (Sec. III-A), driven by real lint diagnostics.
"""

from __future__ import annotations

from repro.agents.base import Agent
from repro.agents.messages import SpecMessage, TestbenchMessage
from repro.core.task import DesignTask
from repro.hdl.lint import lint
from repro.llm.interface import SamplingParams
from repro.llm.simllm import extract_code_block

SYNTAX_ITERATIONS = 5  # the paper's s


class RTLAgent(Agent):
    role = "rtl"
    system_prompt = (
        "You are an expert RTL design engineer. You write clean, "
        "synthesizable Verilog-2001 that matches specifications exactly; "
        "you never emit testbench constructs in RTL."
    )

    def _gen_prompt(self, task: DesignTask, tb_text: str | None) -> str:
        spec = SpecMessage(task.spec, task.top, task.kind, task.clock)
        parts = [
            "Write a synthesizable Verilog module that implements the "
            "specification. Answer with a single ```verilog fenced block.",
            spec.render(),
        ]
        if tb_text is not None:
            parts.append(TestbenchMessage(tb_text).render())
        return "\n\n".join(parts)

    def generate_initial(
        self,
        task: DesignTask,
        tb_text: str | None,
        params: SamplingParams,
    ) -> tuple[str, bool]:
        """One candidate with the syntax-fix loop applied.

        Returns (source, syntactically_clean).
        """
        reply = self.ask(self._gen_prompt(task, tb_text), params)
        code = extract_code_block(reply) or ""
        return self.fix_syntax(task, code, params)

    def sample_candidates(
        self,
        task: DesignTask,
        tb_text: str | None,
        params: SamplingParams,
        count: int,
    ) -> list[str]:
        """Step 4: ``count`` high-temperature candidates, each syntax-fixed."""
        burst = SamplingParams(
            temperature=params.temperature,
            top_p=params.top_p,
            n=count,
            seed=params.seed,
        )
        replies = self.ask_many(self._gen_prompt(task, tb_text), burst)
        candidates = []
        for reply in replies:
            code = extract_code_block(reply) or ""
            fixed, _clean = self.fix_syntax(task, code, params)
            candidates.append(fixed)
        return candidates

    def fix_syntax(
        self,
        task: DesignTask,
        code: str,
        params: SamplingParams,
    ) -> tuple[str, bool]:
        """At most s=5 lint-driven repair rounds; returns final code."""
        for _ in range(SYNTAX_ITERATIONS):
            report = lint(code, task.top)
            if report.ok:
                return code, True
            diagnostics = report.render()
            prompt = (
                "The following Verilog fails to compile. Fix the syntax "
                "and semantic errors and return the full corrected module "
                "in a ```verilog fence.\n\n"
                f"## Compiler diagnostics\n{diagnostics}\n\n"
                f"## Current code\n```verilog\n{code}```\n\n"
                f"## Specification (for reference)\n{task.spec}"
            )
            reply = self.ask(prompt, params)
            code = extract_code_block(reply) or code
        return code, lint(code, task.top).ok
