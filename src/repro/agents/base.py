"""Agent base class: an LLM client plus a private conversation."""

from __future__ import annotations

from repro.llm.interface import Conversation, LLMClient, SamplingParams


class Agent:
    """One specialised agent with its own history.

    Multi-agent mode gives each agent a fresh :class:`Conversation`;
    the single-agent ablation passes one shared conversation to all
    agents, merging their histories exactly as Sec. II-A warns against.
    """

    role = "agent"
    system_prompt = "You are a helpful hardware engineering assistant."

    def __init__(
        self,
        llm: LLMClient,
        conversation: Conversation | None = None,
    ):
        self.llm = llm
        self.conversation = (
            conversation
            if conversation is not None
            else Conversation(system_prompt=self.system_prompt)
        )
        self.calls = 0

    def ask(self, prompt: str, params: SamplingParams) -> str:
        """One completion, recorded in this agent's history."""
        self.conversation.add_user(prompt)
        reply = self.llm.complete(self.conversation.as_list(), params)
        self.conversation.add_assistant(reply)
        self.calls += 1
        return reply

    def ask_many(self, prompt: str, params: SamplingParams) -> list[str]:
        """``params.n`` parallel completions for one prompt.

        Only the prompt enters the history (the paper's sampler ranks
        candidates externally; losers never pollute the context).
        """
        self.conversation.add_user(prompt)
        replies = self.llm.sample(self.conversation.as_list(), params)
        self.conversation.add_assistant(replies[0])
        self.calls += 1
        return replies

    @property
    def context_chars(self) -> int:
        return self.conversation.transcript_chars()
