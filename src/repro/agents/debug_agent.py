"""Debug agent (paper Step 5): targeted fixes from state checkpoints.

Receives the candidate, the optimized testbench, and feedback rendered
either from the Verilog-state checkpoint window (Eq. 6) or -- in the
ablated configuration -- from an aggregate pass-rate log, and produces
a repaired candidate (with its own syntax-fix loop).
"""

from __future__ import annotations

from repro.agents.base import Agent
from repro.agents.messages import CandidateMessage, SpecMessage
from repro.core.task import DesignTask
from repro.hdl.lint import lint
from repro.llm.interface import SamplingParams
from repro.llm.simllm import extract_code_block
from repro.tb.checkpoint import (
    render_checkpoint_feedback,
    render_logonly_feedback,
)
from repro.tb.runner import TestReport

_SYNTAX_ITERATIONS = 5


class DebugAgent(Agent):
    role = "debug"
    system_prompt = (
        "You are an RTL debugging specialist. Given a failing module and "
        "a textual waveform window around the earliest mismatching state "
        "checkpoint, you identify the faulty logic and apply a minimal, "
        "targeted replacement."
    )

    def debug(
        self,
        task: DesignTask,
        source: str,
        report: TestReport,
        params: SamplingParams,
        use_checkpoints: bool = True,
        window: int = 8,
    ) -> str:
        """One debug trial D(r) (paper Eq. 4 candidate update)."""
        if use_checkpoints:
            feedback = render_checkpoint_feedback(report, window)
        else:
            feedback = render_logonly_feedback(report)
        spec = SpecMessage(task.spec, task.top, task.kind, task.clock)
        prompt = (
            "The module fails functional checks. Analyse the feedback, "
            "locate the bug, and produce a corrected version of the full "
            "module in a ```verilog fence.\n\n"
            f"{spec.render()}\n\n"
            f"{CandidateMessage(source).render()}\n\n"
            f"## Feedback\n{feedback}"
        )
        reply = self.ask(prompt, params)
        code = extract_code_block(reply) or source
        return self._fix_syntax(task, code, params)

    def _fix_syntax(self, task: DesignTask, code: str, params: SamplingParams) -> str:
        for _ in range(_SYNTAX_ITERATIONS):
            lint_report = lint(code, task.top)
            if lint_report.ok:
                return code
            prompt = (
                "The corrected module fails to compile. Fix the syntax "
                "and return the full module in a ```verilog fence.\n\n"
                f"## Compiler diagnostics\n{lint_report.render()}\n\n"
                f"{CandidateMessage(code).render()}\n\n"
                f"## Specification (for reference)\n{task.spec}"
            )
            reply = self.ask(prompt, params)
            code = extract_code_block(reply) or code
        return code
