"""Single-agent baselines.

Two families from the literature the paper compares against:

- :class:`SelfReflection` (OriGen-style): the model criticises and
  revises its own output from compiler feedback only -- no simulation.
- :class:`SingleAgentPipeline` (VeriAssist/AutoVCoder-style, and the
  Table III "Single-Agent" ablation): the full generate -> testbench ->
  simulate -> fix loop executed by ONE agent with ONE conversation
  history, paying the context-pollution penalty of Sec. II-A; feedback
  is an aggregate pass-rate log, not state checkpoints.
"""

from __future__ import annotations

from repro.core.config import MAGEConfig
from repro.core.engine import MAGE, MAGEResult
from repro.core.task import DesignTask
from repro.hdl.lint import lint
from repro.llm.interface import ChatMessage, LLMClient, SamplingParams
from repro.llm.simllm import SimLLM, extract_code_block


class SelfReflection:
    """OriGen-style self-reflection on compiler feedback."""

    def __init__(
        self,
        model: str = "deepseek-coder-7b-lora",
        rounds: int = 2,
        llm: LLMClient | None = None,
    ):
        self.llm = llm if llm is not None else SimLLM(model)
        self.rounds = rounds
        self.name = f"self-reflection[{self.llm.model_name}]"

    def solve(self, task: DesignTask, seed: int = 0) -> str:
        params = SamplingParams(temperature=0.0, top_p=0.01, n=1, seed=seed)
        messages = [
            ChatMessage(
                "system",
                "You are an RTL engineer improving your own code through "
                "self-reflection.",
            ),
            ChatMessage(
                "user",
                "Write a synthesizable Verilog module that implements the "
                f"specification.\n\n## Specification\n{task.spec}\n\n"
                f"Top module name: {task.top}.",
            ),
        ]
        reply = self.llm.complete(messages, params)
        code = extract_code_block(reply) or ""
        for _ in range(self.rounds):
            report = lint(code, task.top)
            if report.ok:
                break
            messages.append(ChatMessage("assistant", reply))
            messages.append(
                ChatMessage(
                    "user",
                    "The code fails to compile. Fix the syntax errors.\n\n"
                    f"## Compiler diagnostics\n{report.render()}\n\n"
                    f"## Current code\n```verilog\n{code}```",
                )
            )
            reply = self.llm.complete(messages, params)
            code = extract_code_block(reply) or code
        return code


class SingleAgentPipeline:
    """The whole MAGE workflow collapsed into one agent/history.

    Implements the Table III "Single-Agent" configuration: same steps,
    shared conversation, pollution-penalised profile, and log-only
    debug feedback (a single agent has no checkpoint-emitting testbench
    specialist).
    """

    def __init__(self, model: str = "claude-3.5-sonnet", config: MAGEConfig | None = None):
        base = config or MAGEConfig.low_temperature()
        self.config = MAGEConfig(
            model=model,
            candidates=base.candidates,
            top_k=base.top_k,
            debug_iterations=base.debug_iterations,
            max_tb_regens=base.max_tb_regens,
            checkpoint_window=base.checkpoint_window,
            use_checkpoints=False,
            use_sampling=base.use_sampling,
            single_agent=True,
            generation=base.generation,
            debug_params=base.debug_params,
            judge_params=base.judge_params,
        )
        self.name = f"single-agent[{model}]"

    def solve(self, task: DesignTask, seed: int = 0) -> str:
        return self.solve_full(task, seed).source

    def solve_full(self, task: DesignTask, seed: int = 0) -> MAGEResult:
        engine = MAGE(self.config)
        return engine.solve(task, seed=seed)
