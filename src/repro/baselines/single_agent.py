"""Single-agent baselines.

Two families from the literature the paper compares against:

- :class:`SelfReflection` (OriGen-style): the model criticises and
  revises its own output from compiler feedback only -- no simulation.
- :class:`SingleAgentPipeline` (VeriAssist/AutoVCoder-style, and the
  Table III "Single-Agent" ablation): the full generate -> testbench ->
  simulate -> fix loop executed by ONE agent with ONE conversation
  history, paying the context-pollution penalty of Sec. II-A; feedback
  is an aggregate pass-rate log, not state checkpoints.

Both run as staged pipelines: :class:`SelfReflection` is a generate
stage plus one unrolled reflection stage per round, and
:class:`SingleAgentPipeline` is the MAGE stage list executed with a
merged-history configuration.
"""

from __future__ import annotations

from functools import partial

from repro.core.config import MAGEConfig
from repro.core.engine import MAGE, MAGEResult
from repro.core.events import EventSink, InitialGenerated
from repro.core.pipeline import (
    DONE,
    Pipeline,
    ProgramSpec,
    RunProgram,
    RunState,
    Stage,
    start_program,
)
from repro.core.task import DesignTask
from repro.hdl.lint import lint
from repro.llm.factory import build_llm
from repro.llm.interface import ChatMessage, LLMClient, SamplingParams
from repro.llm.simllm import extract_code_block


def _stage_generate(state: RunState, emit) -> None:
    data = state.data
    task: DesignTask = data["task"]
    messages = [
        ChatMessage(
            "system",
            "You are an RTL engineer improving your own code through "
            "self-reflection.",
        ),
        ChatMessage(
            "user",
            "Write a synthesizable Verilog module that implements the "
            f"specification.\n\n## Specification\n{task.spec}\n\n"
            f"Top module name: {task.top}.",
        ),
    ]
    reply = data["llm"].complete(messages, data["params"])
    data["llm_calls"] = data.get("llm_calls", 0) + 1
    data["messages"] = messages
    data["reply"] = reply
    data["code"] = extract_code_block(reply) or ""
    emit(InitialGenerated(clean=lint(data["code"], task.top).ok))


def _stage_reflect(state: RunState, emit) -> str | None:
    """One self-reflection round on compiler feedback only."""
    data = state.data
    task: DesignTask = data["task"]
    code = data["code"]
    report = lint(code, task.top)
    if report.ok:
        return DONE
    messages = data["messages"]
    messages.append(ChatMessage("assistant", data["reply"]))
    messages.append(
        ChatMessage(
            "user",
            "The code fails to compile. Fix the syntax errors.\n\n"
            f"## Compiler diagnostics\n{report.render()}\n\n"
            f"## Current code\n```verilog\n{code}```",
        )
    )
    reply = data["reply"] = data["llm"].complete(messages, data["params"])
    data["llm_calls"] = data.get("llm_calls", 0) + 1
    data["code"] = extract_code_block(reply) or code
    return None


def _state_calls(state: RunState) -> int:
    return state.data.get("llm_calls", 0)


def _extract_code(state: RunState) -> str:
    return state.data["code"]


def self_reflection_pipeline(rounds: int) -> Pipeline:
    stages = [Stage("generate", _stage_generate)]
    stages += [
        Stage(f"reflect-{index + 1}", _stage_reflect) for index in range(rounds)
    ]
    return Pipeline("self-reflection", stages, calls_probe=_state_calls)


class SelfReflection:
    """OriGen-style self-reflection on compiler feedback."""

    def __init__(
        self,
        model: str = "deepseek-coder-7b-lora",
        rounds: int = 2,
        llm: LLMClient | None = None,
    ):
        self.llm = build_llm(model, llm=llm)
        self.rounds = rounds
        self.name = f"self-reflection[{self.llm.model_name}]"

    def start_run(self, task: DesignTask, seed: int = 0) -> RunProgram:
        """A resumable program for one run (drives ``solve`` too)."""
        state = RunState(
            seed=seed,
            data={
                "task": task,
                "llm": self.llm,
                "params": SamplingParams(
                    temperature=0.0, top_p=0.01, n=1, seed=seed
                ),
            },
        )
        spec = ProgramSpec(
            pipeline_factory=partial(self_reflection_pipeline, self.rounds),
            system=self.name,
            task_name=task.name,
            extractor=_extract_code,
        )
        return start_program(spec, state)

    def solve(
        self, task: DesignTask, seed: int = 0, sink: EventSink | None = None
    ) -> str:
        program = self.start_run(task, seed=seed)
        program.advance(sink=sink)
        return program.source()


class SingleAgentPipeline:
    """The whole MAGE workflow collapsed into one agent/history.

    Implements the Table III "Single-Agent" configuration: same steps,
    shared conversation, pollution-penalised profile, and log-only
    debug feedback (a single agent has no checkpoint-emitting testbench
    specialist).
    """

    def __init__(self, model: str = "claude-3.5-sonnet", config: MAGEConfig | None = None):
        base = config or MAGEConfig.low_temperature()
        self.config = MAGEConfig(
            model=model,
            candidates=base.candidates,
            top_k=base.top_k,
            debug_iterations=base.debug_iterations,
            max_tb_regens=base.max_tb_regens,
            checkpoint_window=base.checkpoint_window,
            use_checkpoints=False,
            use_sampling=base.use_sampling,
            single_agent=True,
            generation=base.generation,
            debug_params=base.debug_params,
            judge_params=base.judge_params,
        )
        self.name = f"single-agent[{model}]"

    def start_run(self, task: DesignTask, seed: int = 0) -> RunProgram:
        """A resumable program over the merged-history MAGE engine."""
        return MAGE(self.config).start_run(task, seed=seed)

    def solve(
        self, task: DesignTask, seed: int = 0, sink: EventSink | None = None
    ) -> str:
        return self.solve_full(task, seed, sink=sink).source

    def solve_full(
        self, task: DesignTask, seed: int = 0, sink: EventSink | None = None
    ) -> MAGEResult:
        engine = MAGE(self.config)
        return engine.solve(task, seed=seed, sink=sink)
