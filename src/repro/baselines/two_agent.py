"""AIVRIL-style two-agent baseline: coder + reviewer.

A basic division of labour (paper Sec. II-A): one *coder* agent writes
both the testbench and the RTL in a single shared conversation -- so it
still pays the synthesizable/non-synthesizable context switch -- and a
*reviewer* agent runs the simulator and reports aggregate pass-rate
feedback (no state checkpoints, no candidate sampling, no testbench
arbitration).
"""

from __future__ import annotations

from repro.agents.debug_agent import DebugAgent
from repro.agents.rtl_agent import RTLAgent
from repro.agents.testbench_agent import TestbenchAgent
from repro.core.task import DesignTask
from repro.llm.interface import Conversation, SamplingParams
from repro.llm.profiles import get_profile
from repro.llm.simllm import SimLLM
from repro.tb.runner import run_testbench


class TwoAgentSystem:
    """Coder (RTL + testbench, shared history) plus simulator-reviewer."""

    def __init__(
        self,
        model: str = "claude-3.5-sonnet",
        iterations: int = 2,
        coder_pollution: tuple[float, float, float] = (1.35, 0.75, 2.2),
    ):
        lam, fix, tb = coder_pollution
        profile = get_profile(model).polluted(
            lambda_mult=lam, fix_mult=fix, tb_mult=tb
        )
        self.llm = SimLLM(profile=profile)
        self.iterations = iterations
        self.name = f"two-agent[{model}]"

    def solve(self, task: DesignTask, seed: int = 0) -> str:
        gen_params = SamplingParams(temperature=0.0, top_p=0.01, n=1, seed=seed)
        fix_params = SamplingParams(temperature=0.4, top_p=0.95, n=1, seed=seed)
        # One shared conversation for everything the coder does.
        shared = Conversation(
            system_prompt=(
                "You are an engineering agent writing both testbenches and "
                "RTL for each request in one continuous conversation."
            )
        )
        tb_role = TestbenchAgent(self.llm, shared)
        rtl_role = RTLAgent(self.llm, shared)
        debug_role = DebugAgent(self.llm, shared)

        tb_text, testbench = tb_role.generate(task, gen_params)
        code, _clean = rtl_role.generate_initial(task, tb_text, gen_params)
        for _ in range(self.iterations):
            report = run_testbench(code, testbench, task.top)
            if report.passed:
                break
            # Reviewer feedback is aggregate-only (no checkpoints).
            code = debug_role.debug(
                task, code, report, fix_params, use_checkpoints=False
            )
        return code
