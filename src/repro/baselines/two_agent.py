"""AIVRIL-style two-agent baseline: coder + reviewer.

A basic division of labour (paper Sec. II-A): one *coder* agent writes
both the testbench and the RTL in a single shared conversation -- so it
still pays the synthesizable/non-synthesizable context switch -- and a
*reviewer* agent runs the simulator and reports aggregate pass-rate
feedback (no state checkpoints, no candidate sampling, no testbench
arbitration).

Runs as a staged :class:`~repro.core.pipeline.Pipeline`: testbench,
initial RTL, then one unrolled review stage per iteration.  Reviewer
simulations go through the runtime's content-addressed cache
(:func:`~repro.runtime.cache.cached_run_testbench`) exactly like the
MAGE judge path -- previously the final ``run_testbench`` bypassed it.
"""

from __future__ import annotations

from functools import partial

from repro.agents.team import AgentTeam
from repro.core.events import (
    CandidateScored,
    EventSink,
    InitialGenerated,
    TestbenchReady,
)
from repro.core.pipeline import (
    DONE,
    Pipeline,
    ProgramSpec,
    RunProgram,
    RunState,
    Stage,
    start_program,
)
from repro.core.task import DesignTask
from repro.llm.factory import build_llm
from repro.llm.interface import SamplingParams
from repro.runtime.cache import cached_run_testbench

_CODER_PROMPT = (
    "You are an engineering agent writing both testbenches and "
    "RTL for each request in one continuous conversation."
)


def _stage_testbench(state: RunState, emit) -> None:
    data = state.data
    team: AgentTeam = data["team"]
    tb_text, testbench = team.tb.generate(data["task"], data["gen_params"])
    data["tb_text"], data["testbench"] = tb_text, testbench
    emit(TestbenchReady(total_checks=testbench.total_checks))


def _stage_initial(state: RunState, emit) -> None:
    data = state.data
    team: AgentTeam = data["team"]
    code, clean = team.rtl.generate_initial(
        data["task"], data["tb_text"], data["gen_params"]
    )
    data["code"] = code
    emit(InitialGenerated(clean=clean))


def _stage_review(state: RunState, emit) -> str | None:
    """One reviewer iteration: simulate, stop on pass, else debug."""
    data = state.data
    team: AgentTeam = data["team"]
    task: DesignTask = data["task"]
    report = cached_run_testbench(data["code"], data["testbench"], task.top)
    iteration = data["iteration"] = data.get("iteration", 0) + 1
    emit(
        CandidateScored(
            origin="review",
            score=report.score,
            passed=report.passed,
            index=iteration - 1,
        )
    )
    if report.passed:
        return DONE
    # Reviewer feedback is aggregate-only (no checkpoints).
    data["code"] = team.debug.debug(
        task, data["code"], report, data["fix_params"], use_checkpoints=False
    )
    return None


def two_agent_pipeline(iterations: int) -> Pipeline:
    stages = [
        Stage("testbench", _stage_testbench),
        Stage("initial", _stage_initial),
    ]
    stages += [
        Stage(f"review-{index + 1}", _stage_review)
        for index in range(iterations)
    ]
    return Pipeline("two-agent", stages, calls_probe=_team_calls)


def _team_calls(state: RunState) -> int:
    return state.data["team"].llm_calls


def _extract_code(state: RunState) -> str:
    return state.data["code"]


class TwoAgentSystem:
    """Coder (RTL + testbench, shared history) plus simulator-reviewer."""

    def __init__(
        self,
        model: str = "claude-3.5-sonnet",
        iterations: int = 2,
        coder_pollution: tuple[float, float, float] = (1.35, 0.75, 2.2),
    ):
        self.llm = build_llm(model, pollution=coder_pollution)
        self.iterations = iterations
        self.name = f"two-agent[{model}]"

    def start_run(self, task: DesignTask, seed: int = 0) -> RunProgram:
        """A resumable program for one run (drives ``solve`` too)."""
        # One shared conversation for everything the coder does.
        team = AgentTeam.build(self.llm, shared_prompt=_CODER_PROMPT)
        state = RunState(
            seed=seed,
            data={
                "task": task,
                "team": team,
                "gen_params": SamplingParams(
                    temperature=0.0, top_p=0.01, n=1, seed=seed
                ),
                "fix_params": SamplingParams(
                    temperature=0.4, top_p=0.95, n=1, seed=seed
                ),
            },
        )
        spec = ProgramSpec(
            pipeline_factory=partial(two_agent_pipeline, self.iterations),
            system=self.name,
            task_name=task.name,
            extractor=_extract_code,
        )
        return start_program(spec, state)

    def solve(
        self, task: DesignTask, seed: int = 0, sink: EventSink | None = None
    ) -> str:
        program = self.start_run(task, seed=seed)
        program.advance(sink=sink)
        return program.source()
