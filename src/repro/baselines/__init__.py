"""Baseline RTL-generation systems from the paper's Table II.

Every baseline is a *pipeline* built from the same substrate MAGE uses,
bound to the model profile Table II reports for it: vanilla one-pass
models, self-reflection loops (OriGen-style), single-agent
generate-verify-fix systems (VeriAssist/AutoVCoder-style), the
two-agent AIVRIL division, and the VerilogCoder-style multi-agent
system with waveform tracing.
"""

from repro.baselines.registry import SYSTEMS, RTLSystem, create_system, system_names
from repro.baselines.single_agent import SelfReflection, SingleAgentPipeline
from repro.baselines.two_agent import TwoAgentSystem
from repro.baselines.vanilla import VanillaLLM

__all__ = [
    "RTLSystem",
    "SYSTEMS",
    "SelfReflection",
    "SingleAgentPipeline",
    "TwoAgentSystem",
    "VanillaLLM",
    "create_system",
    "system_names",
]
