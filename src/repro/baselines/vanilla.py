"""Vanilla baseline: one-pass generation, no verification loop.

Even the single-stage system runs as a :class:`~repro.core.pipeline.
Pipeline`, so every solve path in the repo shares one execution model
(typed events, checkpointable states, solve-cell caching).
"""

from __future__ import annotations

from repro.core.events import EventSink
from repro.core.pipeline import (
    Pipeline,
    ProgramSpec,
    RunProgram,
    RunState,
    Stage,
    start_program,
)
from repro.core.task import DesignTask
from repro.llm.factory import build_llm
from repro.llm.interface import ChatMessage, LLMClient, SamplingParams
from repro.llm.simllm import extract_code_block

_SYSTEM_PROMPT = (
    "You are an expert RTL design engineer. You write clean, "
    "synthesizable Verilog-2001 that matches specifications exactly."
)


def _stage_generate(state: RunState, emit) -> None:
    data = state.data
    task: DesignTask = data["task"]
    params: SamplingParams = data["params"]
    messages = [
        ChatMessage("system", _SYSTEM_PROMPT),
        ChatMessage(
            "user",
            "Write a synthesizable Verilog module that implements the "
            "specification. Answer with a single ```verilog fenced "
            f"block.\n\n## Specification\n{task.spec}\n\n"
            f"Top module name: {task.top}.",
        ),
    ]
    reply = data["llm"].complete(messages, params)
    data["llm_calls"] = data.get("llm_calls", 0) + 1
    data["source"] = extract_code_block(reply) or ""


def _state_calls(state: RunState) -> int:
    return state.data.get("llm_calls", 0)


def _extract_source(state: RunState) -> str:
    return state.data["source"]


def vanilla_pipeline() -> Pipeline:
    return Pipeline(
        "vanilla", [Stage("generate", _stage_generate)], calls_probe=_state_calls
    )


class VanillaLLM:
    """Single-pass spec-to-RTL generation (Table II "Generic LLM" rows)."""

    def __init__(
        self,
        model: str = "claude-3.5-sonnet",
        params: SamplingParams | None = None,
        llm: LLMClient | None = None,
    ):
        self.llm = build_llm(model, llm=llm)
        self.params = params or SamplingParams(temperature=0.0, top_p=0.01, n=1)
        self.name = f"vanilla[{self.llm.model_name}]"

    def start_run(self, task: DesignTask, seed: int = 0) -> RunProgram:
        """A resumable program for one run (drives ``solve`` too)."""
        params = SamplingParams(
            temperature=self.params.temperature,
            top_p=self.params.top_p,
            n=1,
            seed=seed,
        )
        state = RunState(
            seed=seed,
            data={"task": task, "params": params, "llm": self.llm},
        )
        spec = ProgramSpec(
            pipeline_factory=vanilla_pipeline,
            system=self.name,
            task_name=task.name,
            extractor=_extract_source,
        )
        return start_program(spec, state)

    def solve(
        self, task: DesignTask, seed: int = 0, sink: EventSink | None = None
    ) -> str:
        program = self.start_run(task, seed=seed)
        program.advance(sink=sink)
        return program.source()
