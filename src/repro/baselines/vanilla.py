"""Vanilla baseline: one-pass generation, no verification loop."""

from __future__ import annotations

from repro.core.task import DesignTask
from repro.llm.interface import ChatMessage, LLMClient, SamplingParams, create_llm
from repro.llm.simllm import extract_code_block

_SYSTEM_PROMPT = (
    "You are an expert RTL design engineer. You write clean, "
    "synthesizable Verilog-2001 that matches specifications exactly."
)


class VanillaLLM:
    """Single-pass spec-to-RTL generation (Table II "Generic LLM" rows)."""

    def __init__(
        self,
        model: str = "claude-3.5-sonnet",
        params: SamplingParams | None = None,
        llm: LLMClient | None = None,
    ):
        self.llm = llm if llm is not None else create_llm(model)
        self.params = params or SamplingParams(temperature=0.0, top_p=0.01, n=1)
        self.name = f"vanilla[{self.llm.model_name}]"

    def solve(self, task: DesignTask, seed: int = 0) -> str:
        params = SamplingParams(
            temperature=self.params.temperature,
            top_p=self.params.top_p,
            n=1,
            seed=seed,
        )
        messages = [
            ChatMessage("system", _SYSTEM_PROMPT),
            ChatMessage(
                "user",
                "Write a synthesizable Verilog module that implements the "
                "specification. Answer with a single ```verilog fenced "
                f"block.\n\n## Specification\n{task.spec}\n\n"
                f"Top module name: {task.top}.",
            ),
        ]
        reply = self.llm.complete(messages, params)
        return extract_code_block(reply) or ""
