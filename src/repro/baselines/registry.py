"""Named systems matching the rows of the paper's Table II.

Factories are :func:`functools.partial` objects over module-level
classes (never lambdas) so they cross process boundaries: the runtime's
:class:`~repro.runtime.executor.ProcessExecutor` can ship any registered
system to worker processes.  :func:`evaluate_registered` is the registry
front door onto the batch evaluation API.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Protocol

from repro.baselines.single_agent import SelfReflection, SingleAgentPipeline
from repro.baselines.two_agent import TwoAgentSystem
from repro.baselines.vanilla import VanillaLLM
from repro.core.config import MAGEConfig
from repro.core.engine import MAGE
from repro.core.events import EventSink
from repro.core.pipeline import RunProgram
from repro.core.task import DesignTask
from repro.llm.interface import SamplingParams


class RTLSystem(Protocol):
    """What the evaluation harness needs from a system."""

    name: str

    def solve(self, task: DesignTask, seed: int = 0) -> str: ...


class MAGESystem:
    """MAGE wrapped in the harness interface."""

    def __init__(self, config: MAGEConfig | None = None):
        self.config = config or MAGEConfig.high_temperature()
        temp = self.config.generation.temperature
        self.name = f"mage[{self.config.model},T={temp}]"

    def start_run(self, task: DesignTask, seed: int = 0) -> RunProgram:
        return MAGE(self.config).start_run(task, seed=seed)

    def solve(
        self, task: DesignTask, seed: int = 0, sink: EventSink | None = None
    ) -> str:
        return MAGE(self.config).solve(task, seed=seed, sink=sink).source


class VerilogCoderStyle:
    """VerilogCoder-like system: multi-agent with waveform tracing.

    Closed-source in the paper; emulated here as the same multi-agent
    skeleton with checkpoint-grade feedback but a GPT-4-Turbo profile,
    no candidate sampling (it plans instead of samples), and a deeper
    debug budget -- the published behaviour (94.2 on VerilogEval-v2,
    below MAGE) comes from the weaker model and missing Step-4 ranking.
    """

    def __init__(self, model: str = "gpt-4-turbo"):
        self.config = MAGEConfig(
            model=model,
            use_sampling=False,
            debug_iterations=8,
            generation=SamplingParams(temperature=0.0, top_p=0.01, n=1),
        )
        self.name = f"verilogcoder-style[{model}]"

    def start_run(self, task: DesignTask, seed: int = 0) -> RunProgram:
        return MAGE(self.config).start_run(task, seed=seed)

    def solve(
        self, task: DesignTask, seed: int = 0, sink: EventSink | None = None
    ) -> str:
        return MAGE(self.config).solve(task, seed=seed, sink=sink).source


@dataclass(frozen=True)
class SystemSpec:
    """Registry entry: Table II row metadata plus a factory."""

    key: str
    table_label: str
    system_type: str  # "generic-llm" | "rtl-llm" | "agent-open" | "agent-closed" | "mage"
    model_label: str
    factory: Callable[[], RTLSystem]
    paper_v1: float | None = None  # reported VerilogEval-Human Pass@1
    paper_v2: float | None = None  # reported VerilogEval-v2 Pass@1


def _low() -> SamplingParams:
    return SamplingParams(temperature=0.0, top_p=0.01, n=1)


SYSTEMS: dict[str, SystemSpec] = {}


def _register(spec: SystemSpec) -> None:
    SYSTEMS[spec.key] = spec


_register(
    SystemSpec(
        key="vanilla-gpt-4o",
        table_label="GPT-4o",
        system_type="generic-llm",
        model_label="GPT-4o",
        factory=partial(VanillaLLM, "gpt-4o", _low()),
        paper_v1=51.3,
    )
)
_register(
    SystemSpec(
        key="vanilla-claude",
        table_label="Claude 3.5 Sonnet 2024-10-22",
        system_type="generic-llm",
        model_label="Claude 3.5 Sonnet",
        factory=partial(VanillaLLM, "claude-3.5-sonnet", _low()),
        paper_v1=75.0,
        paper_v2=72.4,
    )
)
_register(
    SystemSpec(
        key="vanilla-itertl",
        table_label="ITERTL",
        system_type="rtl-llm",
        model_label="ITERTL (fine-tuned)",
        factory=partial(VanillaLLM, "itertl-ft", _low()),
        paper_v1=42.9,
    )
)
_register(
    SystemSpec(
        key="vanilla-codev",
        table_label="CodeV",
        system_type="rtl-llm",
        model_label="CodeV (fine-tuned)",
        factory=partial(VanillaLLM, "codev-ft", _low()),
        paper_v1=53.2,
    )
)
_register(
    SystemSpec(
        key="origen",
        table_label="OriGen",
        system_type="agent-open",
        model_label="DeepSeek-Coder-7B + LoRA",
        factory=partial(SelfReflection, "deepseek-coder-7b-lora"),
        paper_v1=54.4,
    )
)
_register(
    SystemSpec(
        key="veriassist",
        table_label="VeriAssist",
        system_type="agent-closed",
        model_label="GPT-4",
        factory=partial(SelfReflection, "gpt-4", rounds=3),
        paper_v1=50.5,
    )
)
_register(
    SystemSpec(
        key="autovcoder",
        table_label="AutoVCoder",
        system_type="agent-closed",
        model_label="CodeQwen1.5-7B",
        factory=partial(SelfReflection, "codeqwen-1.5-7b", rounds=3),
        paper_v1=48.5,
    )
)
_register(
    SystemSpec(
        key="verilogcoder",
        table_label="VerilogCoder",
        system_type="agent-closed",
        model_label="GPT-4 Turbo",
        factory=partial(VerilogCoderStyle, "gpt-4-turbo"),
        paper_v2=94.2,
    )
)
_register(
    SystemSpec(
        key="aivril",
        table_label="AIVRIL",
        system_type="agent-closed",
        model_label="Claude 3.5 Sonnet",
        factory=partial(TwoAgentSystem, "claude-3.5-sonnet"),
        paper_v1=64.7,
    )
)
_register(
    SystemSpec(
        key="single-agent",
        table_label="Single-Agent (Table III)",
        system_type="agent-open",
        model_label="Claude 3.5 Sonnet",
        factory=partial(SingleAgentPipeline, "claude-3.5-sonnet"),
    )
)
_register(
    SystemSpec(
        key="mage",
        table_label="MAGE (ours)",
        system_type="mage",
        model_label="Claude 3.5 Sonnet",
        factory=partial(MAGESystem, MAGEConfig.high_temperature()),
        paper_v1=94.8,
        paper_v2=95.7,
    )
)


def system_names() -> list[str]:
    return list(SYSTEMS)


def create_system(key: str) -> RTLSystem:
    if key not in SYSTEMS:
        raise KeyError(
            f"unknown system {key!r}; known: {', '.join(system_names())}"
        )
    return SYSTEMS[key].factory()


def evaluate_registered(
    key: str,
    suite: str = "verilogeval-v2",
    runs: int = 1,
    seed0: int = 0,
    executor=None,
    cache=None,
    progress=None,
):
    """Evaluate a registered system through the batch runtime API.

    Returns ``(EvalResult, BatchReport)`` -- the Table II row plus the
    throughput/cache statistics of the run.
    """
    from repro.runtime.batch import evaluate_many

    if key not in SYSTEMS:
        raise KeyError(
            f"unknown system {key!r}; known: {', '.join(system_names())}"
        )
    spec = SYSTEMS[key]
    return evaluate_many(
        spec.factory,
        suite,
        runs=runs,
        seed0=seed0,
        executor=executor,
        cache=cache,
        progress=progress,
    )
