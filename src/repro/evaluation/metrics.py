"""Pass@k estimation (paper Eq. 7, following VerilogEval)."""

from __future__ import annotations

from math import comb


def pass_at_k(n: int, c: int, k: int = 1) -> float:
    """Unbiased pass@k from ``n`` runs with ``c`` passes.

    pass@k = 1 - C(n-c, k) / C(n, k); the expectation over problems is
    the reported metric.  Requires n >= k.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= c <= n:
        raise ValueError("c must be in [0, n]")
    if k > n:
        raise ValueError("k cannot exceed n")
    if n - c < k:
        return 1.0
    return 1.0 - comb(n - c, k) / comb(n, k)


def mean_pass_at_k(outcomes: list[tuple[int, int]], k: int = 1) -> float:
    """E over problems of pass@k, given (n, c) per problem."""
    if not outcomes:
        raise ValueError("no outcomes")
    return sum(pass_at_k(n, c, k) for n, c in outcomes) / len(outcomes)
