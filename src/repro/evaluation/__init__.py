"""Evaluation: pass@k metrics, the suite harness, ablations, figures."""

from repro.evaluation.harness import (
    EvalResult,
    ProblemOutcome,
    evaluate_mage,
    evaluate_system,
)
from repro.evaluation.metrics import mean_pass_at_k, pass_at_k

__all__ = [
    "EvalResult",
    "ProblemOutcome",
    "evaluate_mage",
    "evaluate_system",
    "mean_pass_at_k",
    "pass_at_k",
]
