"""Ablation configurations (paper Table III and the Fig. 3/4 switches)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.baselines.single_agent import SingleAgentPipeline
from repro.baselines.vanilla import VanillaLLM
from repro.core.config import MAGEConfig
from repro.core.engine import MAGE
from repro.core.task import DesignTask
from repro.llm.interface import SamplingParams


@dataclass(frozen=True)
class AblationArm:
    """One row of Table III."""

    key: str
    label: str
    factory: Callable[[], object]


def _vanilla() -> VanillaLLM:
    return VanillaLLM(
        "claude-3.5-sonnet", SamplingParams(temperature=0.0, top_p=0.01, n=1)
    )


def _single_agent() -> SingleAgentPipeline:
    return SingleAgentPipeline("claude-3.5-sonnet", MAGEConfig.low_temperature())


class _MultiAgent:
    def __init__(self) -> None:
        self.config = MAGEConfig.low_temperature()
        self.name = "multi-agent[claude-3.5-sonnet,T=0]"

    def start_run(self, task: DesignTask, seed: int = 0):
        return MAGE(self.config).start_run(task, seed=seed)

    def solve(self, task: DesignTask, seed: int = 0, sink=None) -> str:
        return MAGE(self.config).solve(task, seed=seed, sink=sink).source


TABLE3_ARMS: list[AblationArm] = [
    AblationArm("vanilla", "Vanilla LLM", _vanilla),
    AblationArm("single-agent", "Single-Agent", _single_agent),
    AblationArm("multi-agent", "Multi-Agent", _MultiAgent),
]


def checkpoint_ablation_configs() -> dict[str, MAGEConfig]:
    """MAGE with and without the state-checkpoint mechanism (Fig. 3)."""
    base = MAGEConfig.high_temperature()
    return {
        "with-checkpoints": base,
        "without-checkpoints": replace(base, use_checkpoints=False),
    }


def sampling_ablation_configs() -> dict[str, MAGEConfig]:
    """MAGE with and without Step-4 sampling (Fig. 4a)."""
    base = MAGEConfig.high_temperature()
    return {
        "with-sampling": base,
        "without-sampling": replace(base, use_sampling=False),
    }
