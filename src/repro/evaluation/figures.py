"""Data collectors for the paper's figures (2, 3 and 4).

Figures are reproduced as printed distribution summaries and series --
the quantities behind the violin plots -- rather than rendered images.

Since the pipeline refactor the collectors consume the engine's *typed
event stream* (:mod:`repro.core.events`) -- ``CandidateScored``,
``SamplingSummary``, ``DebugRound`` -- instead of reading back
transcript fields, so any event source (a live run, a checkpointed
state, a cached solve cell) can feed a figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.agents.judge_agent import JudgeAgent
from repro.agents.rtl_agent import RTLAgent
from repro.agents.testbench_agent import TestbenchAgent
from repro.core.config import MAGEConfig
from repro.core.engine import MAGE
from repro.core.events import (
    CandidateScored,
    DebugRound,
    Event,
    SamplingSummary,
)
from repro.core.task import DesignTask
from repro.evalsets.problem import Problem
from repro.llm.interface import SamplingParams, create_llm


@dataclass
class MismatchDistribution:
    """Fig. 2 data: per-problem normalized mismatch of best candidates."""

    label: str
    per_problem: dict[str, float] = field(default_factory=dict)

    def values(self) -> list[float]:
        return [self.per_problem[k] for k in sorted(self.per_problem)]

    def summary(self) -> str:
        values = np.array(self.values()) if self.per_problem else np.array([0.0])
        return (
            f"{self.label}: mean={values.mean():.3f} "
            f"median={np.median(values):.3f} "
            f"q1={np.percentile(values, 25):.3f} "
            f"q3={np.percentile(values, 75):.3f} n={len(values)}"
        )


def best_candidate_mismatch(
    problem: Problem,
    temperature: float,
    top_p: float,
    candidates: int,
    seed: int = 0,
) -> float | None:
    """Normalized mismatch 1 - s(r) of the best of ``candidates`` samples.

    Returns None when the problem "directly passes before Step 4"
    (best candidate is already perfect), matching the figure's filter.
    """
    llm = create_llm("claude-3.5-sonnet")
    tb_agent = TestbenchAgent(llm)
    rtl_agent = RTLAgent(llm)
    judge = JudgeAgent(llm)
    task = DesignTask.from_problem(problem)
    params = SamplingParams(temperature=0.0, top_p=0.01, n=1, seed=seed)
    tb_text, agent_tb = tb_agent.generate(task, params)
    gen = SamplingParams(temperature=temperature, top_p=top_p, n=1, seed=seed)
    sources = rtl_agent.sample_candidates(task, tb_text, gen, candidates)
    best = 0.0
    for source in sources:
        # The figure plots mismatches on the *generated* testbench.
        report = judge.score(source, agent_tb, task.top)
        best = max(best, report.score)
    return 1.0 - best


@dataclass
class ScoreSeries:
    """Fig. 4 data: score distributions and per-round means."""

    initial_scores: list[float] = field(default_factory=list)
    sampled_best_scores: list[float] = field(default_factory=list)
    rounds: list[list[float]] = field(default_factory=list)  # per debug round

    def round_means(self) -> list[float]:
        return [float(np.mean(r)) for r in self.rounds if r]

    def add_round(self, index: int, scores: list[float]) -> None:
        while len(self.rounds) <= index:
            self.rounds.append([])
        self.rounds[index].extend(scores)

    def fold_events(self, events: Iterable[Event]) -> None:
        """Harvest one run's typed event stream into the series.

        A run contributes to the Fig. 4a distributions only when it
        entered Step 4 (an initial scoring *and* a non-empty sampling
        pool), matching the paper's exclusion of "problems fixed before
        entering the debug stage"; Fig. 4b rows come straight from the
        per-round ``DebugRound`` events.
        """
        initial: float | None = None
        pool: tuple[float, ...] | None = None
        for event in events:
            if (
                isinstance(event, CandidateScored)
                and event.origin == "initial"
                and initial is None
            ):
                initial = event.score
            elif isinstance(event, SamplingSummary):
                pool = event.pool_scores
            elif isinstance(event, DebugRound):
                self.add_round(event.round_index, list(event.scores))
        if initial is not None and pool:
            self.initial_scores.append(initial)
            self.sampled_best_scores.append(max(pool))


def collect_score_series(
    problems: list[Problem],
    config: MAGEConfig,
    seed: int = 0,
) -> ScoreSeries:
    """Run MAGE over problems, harvesting Fig. 4 quantities.

    Only problems that enter Step 4/5 contribute (the paper excludes
    "data of problems fixed before entering the debug stage").
    """
    series = ScoreSeries()
    for problem in problems:
        engine = MAGE(config)
        result = engine.solve(DesignTask.from_problem(problem), seed=seed)
        series.fold_events(result.events)
    return series
