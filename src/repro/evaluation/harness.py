"""Suite-level evaluation harness.

Runs a system over a suite exactly the way VerilogEval scores
submissions: the system sees only the specification (never the golden
testbench); each returned module is simulated against the hidden golden
testbench; Pass@1 aggregates over ``runs`` evaluation runs per problem
(Eq. 7).

``REPRO_EVAL_RUNS`` overrides the default run count (the paper uses
n=20 for the high-temperature setting; benches default lower to keep
regeneration quick).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import partial
from typing import Callable

from repro.core.config import MAGEConfig
from repro.core.engine import MAGE
from repro.core.task import DesignTask
from repro.evalsets.problem import Problem
from repro.evaluation.metrics import mean_pass_at_k, pass_at_k


def default_runs(fallback: int = 3) -> int:
    """Run count for sampled (nondeterministic) settings.

    A malformed ``REPRO_EVAL_RUNS`` falls back rather than raising,
    matching how the runtime treats its env knobs.
    """
    value = os.environ.get("REPRO_EVAL_RUNS")
    if not value:
        return fallback
    try:
        return int(value)
    except ValueError:
        return fallback


@dataclass
class ProblemOutcome:
    """Per-problem tally of evaluation runs."""

    problem_id: str
    difficulty: float
    runs: int = 0
    passes: int = 0
    scores: list[float] = field(default_factory=list)

    @property
    def pass_at_1(self) -> float:
        return pass_at_k(self.runs, self.passes, 1)


@dataclass
class EvalResult:
    """Suite-level evaluation of one system."""

    system: str
    suite: str
    outcomes: list[ProblemOutcome] = field(default_factory=list)

    @property
    def pass_at_1(self) -> float:
        return mean_pass_at_k([(o.runs, o.passes) for o in self.outcomes], 1)

    @property
    def percent(self) -> float:
        return 100.0 * self.pass_at_1

    def failures(self) -> list[str]:
        return [o.problem_id for o in self.outcomes if o.passes < o.runs]

    def render_row(self) -> str:
        return f"{self.system:42s} {self.suite:22s} Pass@1 = {self.percent:5.1f}%"


def evaluate_system(
    system_factory: Callable[[], object],
    suite: str,
    runs: int = 1,
    seed0: int = 0,
    problems: list[Problem] | None = None,
    progress: Callable[[str], None] | None = None,
    name: str | None = None,
    executor=None,
    cache=None,
) -> EvalResult:
    """Evaluate ``system_factory()`` instances over a suite.

    A fresh system instance per run keeps conversation histories
    independent across runs, as separate API sessions would be.

    Execution routes through :func:`repro.runtime.batch.evaluate_many`:
    the ``problems x runs`` grid fans out across the ambient runtime's
    executor (or an explicit ``executor``), with results reassembled in
    deterministic grid order -- Pass@1 is identical at any worker count.

    ``name`` labels the result directly; without it, one throwaway
    ``system_factory()`` instance is built just to read ``.name``.
    ``cache`` overrides the ambient simulation-cache choice
    (:class:`~repro.runtime.cache.SimulationCache`, ``True``/``False``,
    or ``None`` to inherit).
    """
    from repro.runtime.batch import evaluate_many

    result, _report = evaluate_many(
        system_factory,
        suite,
        runs=runs,
        seed0=seed0,
        problems=problems,
        name=name,
        executor=executor,
        cache=cache,
        progress=progress,
    )
    return result


class _MageSystem:
    """MAGE behind the harness interface (module-level, so picklable)."""

    def __init__(self, config: MAGEConfig) -> None:
        self.config = config
        self.name = _mage_name(config)

    def solve(self, task: DesignTask, seed: int = 0, sink=None) -> str:
        return MAGE(self.config).solve(task, seed=seed, sink=sink).source


def _mage_name(config: MAGEConfig) -> str:
    return f"mage[{config.model},T={config.generation.temperature}]"


def evaluate_mage(
    config: MAGEConfig,
    suite: str,
    runs: int = 1,
    seed0: int = 0,
    problems: list[Problem] | None = None,
    progress: Callable[[str], None] | None = None,
    executor=None,
    cache=None,
) -> EvalResult:
    """Evaluate a MAGE configuration (convenience wrapper)."""
    return evaluate_system(
        partial(_MageSystem, config),
        suite,
        runs,
        seed0,
        problems,
        progress,
        name=_mage_name(config),
        executor=executor,
        cache=cache,
    )
