"""Suite-level evaluation harness.

Runs a system over a suite exactly the way VerilogEval scores
submissions: the system sees only the specification (never the golden
testbench); each returned module is simulated against the hidden golden
testbench; Pass@1 aggregates over ``runs`` evaluation runs per problem
(Eq. 7).

``REPRO_EVAL_RUNS`` overrides the default run count (the paper uses
n=20 for the high-temperature setting; benches default lower to keep
regeneration quick).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import MAGEConfig
from repro.core.engine import MAGE
from repro.core.task import DesignTask
from repro.evalsets.problem import Problem, golden_testbench
from repro.evalsets.suites import get_suite
from repro.evaluation.metrics import mean_pass_at_k, pass_at_k
from repro.tb.runner import run_testbench


def default_runs(fallback: int = 3) -> int:
    """Run count for sampled (nondeterministic) settings."""
    value = os.environ.get("REPRO_EVAL_RUNS")
    return int(value) if value else fallback


@dataclass
class ProblemOutcome:
    """Per-problem tally of evaluation runs."""

    problem_id: str
    difficulty: float
    runs: int = 0
    passes: int = 0
    scores: list[float] = field(default_factory=list)

    @property
    def pass_at_1(self) -> float:
        return pass_at_k(self.runs, self.passes, 1)


@dataclass
class EvalResult:
    """Suite-level evaluation of one system."""

    system: str
    suite: str
    outcomes: list[ProblemOutcome] = field(default_factory=list)

    @property
    def pass_at_1(self) -> float:
        return mean_pass_at_k([(o.runs, o.passes) for o in self.outcomes], 1)

    @property
    def percent(self) -> float:
        return 100.0 * self.pass_at_1

    def failures(self) -> list[str]:
        return [o.problem_id for o in self.outcomes if o.passes < o.runs]

    def render_row(self) -> str:
        return f"{self.system:42s} {self.suite:22s} Pass@1 = {self.percent:5.1f}%"


def evaluate_system(
    system_factory: Callable[[], object],
    suite: str,
    runs: int = 1,
    seed0: int = 0,
    problems: list[Problem] | None = None,
    progress: Callable[[str], None] | None = None,
) -> EvalResult:
    """Evaluate ``system_factory()`` instances over a suite.

    A fresh system instance per run keeps conversation histories
    independent across runs, as separate API sessions would be.
    """
    chosen = problems if problems is not None else get_suite(suite)
    name = system_factory().name
    result = EvalResult(system=name, suite=suite)
    for problem in chosen:
        outcome = ProblemOutcome(problem.id, problem.difficulty)
        golden_tb = golden_testbench(problem)
        task = DesignTask.from_problem(problem)
        for run in range(runs):
            system = system_factory()
            source = system.solve(task, seed=seed0 + run)
            report = run_testbench(source, golden_tb, problem.top)
            outcome.runs += 1
            outcome.passes += int(report.passed)
            outcome.scores.append(report.score)
        result.outcomes.append(outcome)
        if progress is not None:
            progress(
                f"{name} {problem.id}: {outcome.passes}/{outcome.runs} passed"
            )
    return result


def evaluate_mage(
    config: MAGEConfig,
    suite: str,
    runs: int = 1,
    seed0: int = 0,
    problems: list[Problem] | None = None,
    progress: Callable[[str], None] | None = None,
) -> EvalResult:
    """Evaluate a MAGE configuration (convenience wrapper)."""

    class _System:
        def __init__(self) -> None:
            temp = config.generation.temperature
            self.name = f"mage[{config.model},T={temp}]"

        def solve(self, task: DesignTask, seed: int = 0) -> str:
            return MAGE(config).solve(task, seed=seed).source

    return evaluate_system(_System, suite, runs, seed0, problems, progress)
