"""Memory-structure problems (register files, FIFOs, RAMs, stacks)."""

from repro.evalsets.problem import Problem, register_problem


def _p(**kwargs) -> Problem:
    return register_problem(Problem(**kwargs))


_p(
    id="me_regfile",
    title="4x8 register file",
    category="memory",
    difficulty=0.55,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a register file with four 8-bit registers, one write "
        "port and one combinational (asynchronous) read port. On a "
        "rising clock edge with we high, regs[waddr] <= wdata. rdata "
        "continuously reflects regs[raddr]. Register 0 is an ordinary "
        "register (writable). Synchronous reset clears all registers."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire we,
    input wire [1:0] waddr,
    input wire [7:0] wdata,
    input wire [1:0] raddr,
    output wire [7:0] rdata
);
    reg [7:0] regs [0:3];
    integer i;
    assign rdata = regs[raddr];
    always @(posedge clk) begin
        if (reset) begin
            for (i = 0; i < 4; i = i + 1)
                regs[i] <= 8'd0;
        end else if (we)
            regs[waddr] <= wdata;
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "we": 0, "waddr": 0, "wdata": 0, "raddr": 0},
        {"reset": 0, "we": 1, "waddr": 2, "wdata": 0xAB, "raddr": 2},
        {"we": 1, "waddr": 1, "wdata": 0x55, "raddr": 2},
        {"we": 0, "raddr": 1},
        {"raddr": 3},
    ),
    random_policy={"reset": 0.03, "we": 0.6},
    n_random=28,
)

_p(
    id="me_fifo4",
    title="Synchronous FIFO, depth 4",
    category="memory",
    difficulty=0.9,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a depth-4, 8-bit synchronous FIFO with synchronous "
        "reset. Inputs push and pop; outputs full, empty, and dout "
        "(combinational view of the head entry; value undefined when "
        "empty is irrelevant because checks ignore it). A push when "
        "full is ignored; a pop when empty is ignored; simultaneous "
        "push+pop on a non-empty, non-full FIFO does both. full and "
        "empty are combinational functions of the element count."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire push,
    input wire pop,
    input wire [7:0] din,
    output wire full,
    output wire empty,
    output wire [7:0] dout
);
    reg [7:0] mem [0:3];
    reg [1:0] head;
    reg [1:0] tail;
    reg [2:0] count;
    wire do_push;
    wire do_pop;
    assign full = (count == 3'd4);
    assign empty = (count == 3'd0);
    assign dout = mem[head];
    assign do_push = push & ~full;
    assign do_pop = pop & ~empty;
    always @(posedge clk) begin
        if (reset) begin
            head <= 2'd0;
            tail <= 2'd0;
            count <= 3'd0;
        end else begin
            if (do_push) begin
                mem[tail] <= din;
                tail <= tail + 2'd1;
            end
            if (do_pop)
                head <= head + 2'd1;
            count <= count + {2'b0, do_push} - {2'b0, do_pop};
        end
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "push": 0, "pop": 0, "din": 0},
        {"reset": 0, "push": 1, "din": 0x11},
        {"din": 0x22},
        {"din": 0x33},
        {"din": 0x44},
        {"din": 0x55},  # push on full: ignored
        {"push": 0, "pop": 1},
        {"pop": 1},
        {"push": 1, "pop": 1, "din": 0x66},
        {"push": 0, "pop": 1},
        {"pop": 1},
        {"pop": 1},  # pop on empty: ignored
    ),
    random_policy={"reset": 0.02, "push": 0.55, "pop": 0.45},
    n_random=30,
)

_p(
    id="me_ram_sync",
    title="Single-port RAM with registered read",
    category="memory",
    difficulty=0.45,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement an 8-entry, 8-bit single-port RAM. On a rising clock "
        "edge: if we is high, write din to mem[addr]; the output q is "
        "registered and always captures mem[addr] (read-before-write: "
        "a simultaneous write returns the old contents)."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire we,
    input wire [2:0] addr,
    input wire [7:0] din,
    output reg [7:0] q
);
    reg [7:0] mem [0:7];
    always @(posedge clk) begin
        q <= mem[addr];
        if (we)
            mem[addr] <= din;
    end
endmodule
""",
    top="top_module",
    directed=(
        {"we": 1, "addr": 0, "din": 0xDE},
        {"addr": 1, "din": 0xAD},
        {"we": 0, "addr": 0},
        {"addr": 1},
        {"we": 1, "addr": 0, "din": 0x99},  # read-old while writing
    ),
    random_policy={"we": 0.6},
    n_random=28,
)

_p(
    id="me_stack4",
    title="4-deep hardware stack",
    category="memory",
    difficulty=0.85,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a 4-deep, 8-bit stack with synchronous reset. push "
        "stores din at the top; pop removes the top entry. tos shows "
        "the current top-of-stack combinationally (ignored when empty). "
        "Push on a full stack and pop on an empty stack are ignored; "
        "simultaneous push and pop replaces the top entry (depth "
        "unchanged) when the stack is non-empty. Outputs full and "
        "empty reflect the depth combinationally."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire push,
    input wire pop,
    input wire [7:0] din,
    output wire full,
    output wire empty,
    output wire [7:0] tos
);
    reg [7:0] mem [0:3];
    reg [2:0] depth;
    assign empty = (depth == 3'd0);
    assign full = (depth == 3'd4);
    assign tos = mem[depth - 3'd1];
    always @(posedge clk) begin
        if (reset)
            depth <= 3'd0;
        else if (push && pop) begin
            if (depth != 3'd0)
                mem[depth - 3'd1] <= din;
        end else if (push) begin
            if (depth != 3'd4) begin
                mem[depth] <= din;
                depth <= depth + 3'd1;
            end
        end else if (pop) begin
            if (depth != 3'd0)
                depth <= depth - 3'd1;
        end
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "push": 0, "pop": 0, "din": 0},
        {"reset": 0, "push": 1, "din": 0x10},
        {"din": 0x20},
        {"din": 0x30},
        {"push": 1, "pop": 1, "din": 0x99},  # replace top
        {"push": 0, "pop": 1},
        {"pop": 1},
        {"pop": 1},
        {"pop": 1},  # pop on empty: ignored
    ),
    random_policy={"reset": 0.02, "push": 0.5, "pop": 0.4},
    n_random=30,
)

_p(
    id="me_rom_case",
    title="16-entry ROM lookup",
    category="memory",
    difficulty=0.3,
    kind="comb",
    spec=(
        "Implement a combinational 16-entry ROM: data = addr squared, "
        "truncated to 8 bits (i.e. data = (addr * addr) & 8'hFF)."
    ),
    golden="""
module top_module (
    input wire [3:0] addr,
    output wire [7:0] data
);
    wire [7:0] wide;
    assign wide = {4'b0, addr};
    assign data = wide * wide;
endmodule
""",
    top="top_module",
    directed=tuple({"addr": v} for v in range(16)),
    n_random=4,
)
