"""Problem definition and golden-testbench derivation.

A :class:`Problem` packages a natural-language spec, a golden Verilog
design, directed stimulus vectors, and a difficulty rating.  The golden
testbench is *derived*: directed vectors plus seeded pseudo-random
vectors are simulated against the golden design, and the observed
outputs become the expected values (with ``x`` bits acting as per-bit
don't-cares, so pre-reset unknowns never count as checks).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.hdl.compile import compile_design
from repro.hdl.design import Design
from repro.hdl.values import LogicVec
from repro.tb.runner import run_testbench
from repro.tb.stimulus import TbStep, Testbench

_REGISTRY: dict[str, "Problem"] = {}


@dataclass(frozen=True)
class Problem:
    """One benchmark problem.

    ``random_policy`` controls pseudo-random stimulus per input:
    an ``int`` holds the input constant, a ``float`` is the per-step
    probability of driving 1 (1-bit controls), and ``"any"`` (default)
    draws uniformly over the input's range.
    """

    id: str
    title: str
    category: str  # combinational | arithmetic | sequential | fsm | memory
    difficulty: float  # 0 (trivial) .. 1 (very hard)
    spec: str
    golden: str
    top: str
    kind: str  # "comb" | "clocked"
    clock: str | None = None
    directed: tuple[dict, ...] = ()
    random_policy: dict = field(default_factory=dict)
    n_random: int = 24

    def __post_init__(self) -> None:
        if not 0.0 <= self.difficulty <= 1.0:
            raise ValueError(f"{self.id}: difficulty must be in [0, 1]")
        if self.kind == "clocked" and not self.clock:
            raise ValueError(f"{self.id}: clocked problem needs a clock")

    def design(self) -> Design:
        """The compiled golden design (cached)."""
        return _compile_cached(self.golden, self.top)

    @property
    def data_inputs(self) -> tuple[str, ...]:
        """Input ports driven by the testbench (clock excluded)."""
        return tuple(
            name for name in self.design().inputs if name != self.clock
        )

    @property
    def outputs(self) -> tuple[str, ...]:
        return tuple(self.design().outputs)

    def seed_for(self, salt: int = 0) -> int:
        """Stable per-problem RNG seed."""
        return (zlib.crc32(self.id.encode()) + salt * 9973) & 0x7FFFFFFF


@lru_cache(maxsize=256)
def _compile_cached(source: str, top: str) -> Design:
    return compile_design(source, top)


def register_problem(problem: Problem) -> Problem:
    """Add a problem to the global registry (id must be unique)."""
    if problem.id in _REGISTRY:
        raise ValueError(f"duplicate problem id {problem.id!r}")
    _REGISTRY[problem.id] = problem
    return problem


def get_problem(problem_id: str) -> Problem:
    _ensure_loaded()
    return _REGISTRY[problem_id]


def all_problems() -> list[Problem]:
    _ensure_loaded()
    return sorted(_REGISTRY.values(), key=lambda p: p.id)


def _ensure_loaded() -> None:
    # Problem modules register on import; pull them in lazily to avoid
    # import cycles.
    from repro.evalsets import (  # noqa: F401
        arithmetic,
        combinational,
        extra,
        fsm,
        memory,
        sequential,
    )


def input_steps(
    problem: Problem, n_random: int | None = None, seed: int = 0
) -> list[dict[str, int]]:
    """Directed vectors followed by seeded pseudo-random vectors."""
    steps: list[dict[str, int]] = [dict(v) for v in problem.directed]
    count = problem.n_random if n_random is None else n_random
    if count <= 0:
        return steps
    rng = np.random.default_rng(problem.seed_for(seed))
    design = problem.design()
    names = problem.data_inputs
    for _ in range(count):
        step: dict[str, int] = {}
        for name in names:
            policy = problem.random_policy.get(name, "any")
            width = design.signals[name].width
            if isinstance(policy, bool) or isinstance(policy, int):
                value = int(policy)
            elif isinstance(policy, float):
                value = int(rng.random() < policy)
            else:  # "any"
                value = int(rng.integers(0, 1 << width))
            step[name] = value
        steps.append(step)
    return steps


def derive_testbench(
    source: str,
    top: str,
    kind: str,
    clock: str | None,
    inputs: tuple[str, ...],
    outputs: tuple[str, ...],
    steps: list[dict[str, int]],
    name: str = "tb",
) -> Testbench:
    """Build a testbench whose expectations come from simulating ``source``.

    Outputs that are wholly unknown at a step (e.g. registers before
    reset) are skipped; partially-unknown outputs keep their ``x`` bits
    as don't-cares.
    """
    design = _compile_cached(source, top)
    probe_checks = {
        out: LogicVec.all_x(design.signals[out].width) for out in outputs
    }
    probe = Testbench(
        kind=kind,
        inputs=inputs,
        outputs=outputs,
        steps=tuple(TbStep(inputs=s, checks=dict(probe_checks)) for s in steps),
        clock=clock,
        name=name,
    )
    # Probing is a deterministic simulation of a fixed source, so it is
    # served by the runtime's content-addressed cache; testbench agents
    # re-deriving expectations for the same design pay only once.
    # (Imported lazily: repro.runtime.batch imports this module.)
    from repro.runtime.cache import cached_run_testbench

    report = cached_run_testbench(source, probe, top)
    if report.error is not None:
        raise RuntimeError(
            f"golden design failed to simulate for {name}: {report.error}"
        )
    observed: dict[int, dict[str, LogicVec]] = {}
    for record in report.records:
        observed.setdefault(record.step, {})[record.signal] = record.actual
    final_steps = []
    for index, step in enumerate(steps):
        checks = {
            out: value
            for out, value in observed.get(index, {}).items()
            if value.xmask != (1 << value.width) - 1  # skip all-x
        }
        final_steps.append(TbStep(inputs=step, checks=checks))
    return Testbench(
        kind=kind,
        inputs=inputs,
        outputs=outputs,
        steps=tuple(final_steps),
        clock=clock,
        name=name,
    )


def golden_testbench(
    problem: Problem, n_random: int | None = None, seed: int = 0
) -> Testbench:
    """The benchmark's hidden golden testbench for ``problem``."""
    steps = input_steps(problem, n_random, seed)
    return derive_testbench(
        problem.golden,
        problem.top,
        problem.kind,
        problem.clock,
        problem.data_inputs,
        problem.outputs,
        steps,
        name=f"golden_{problem.id}",
    )
