"""Benchmark problem suites in the style of VerilogEval.

The NVIDIA VerilogEval datasets are not redistributable offline, so
this package provides original problems with the same task structure:
a natural-language specification, a hidden golden design, and a golden
testbench that scores submissions.  Two suites mirror the paper's two
benchmarks (see DESIGN.md for the substitution rationale).
"""

from repro.evalsets.problem import (
    Problem,
    all_problems,
    get_problem,
    golden_testbench,
    input_steps,
    register_problem,
)
from repro.evalsets.suites import SUITES, get_suite, suite_names

__all__ = [
    "Problem",
    "SUITES",
    "all_problems",
    "get_problem",
    "get_suite",
    "golden_testbench",
    "input_steps",
    "register_problem",
    "suite_names",
]
