"""Combinational-logic problems (gates, muxes, decoders, K-maps)."""

from repro.evalsets.problem import Problem, register_problem


def _p(**kwargs) -> Problem:
    return register_problem(Problem(**kwargs))


_p(
    id="cb_and_or_gate",
    title="Basic gate network",
    category="combinational",
    difficulty=0.03,
    kind="comb",
    spec=(
        "Implement a module with inputs a, b, c and outputs out_and, "
        "out_or, out_xnor. out_and = a AND b; out_or = b OR c; "
        "out_xnor = XNOR of a and c."
    ),
    golden="""
module top_module (
    input wire a,
    input wire b,
    input wire c,
    output wire out_and,
    output wire out_or,
    output wire out_xnor
);
    assign out_and = a & b;
    assign out_or = b | c;
    assign out_xnor = ~(a ^ c);
endmodule
""",
    top="top_module",
    directed=tuple({"a": a, "b": b, "c": c} for a in (0, 1) for b in (0, 1) for c in (0, 1)),
    n_random=8,
)

_p(
    id="cb_xor_parity",
    title="8-bit even parity",
    category="combinational",
    difficulty=0.05,
    kind="comb",
    spec=(
        "Compute the even-parity bit of an 8-bit input: parity = XOR of "
        "all bits of in[7:0]."
    ),
    golden="""
module top_module (
    input wire [7:0] in,
    output wire parity
);
    assign parity = ^in;
endmodule
""",
    top="top_module",
    directed=({"in": 0}, {"in": 255}, {"in": 1}, {"in": 128}, {"in": 0xAA}),
    n_random=20,
)

_p(
    id="cb_mux2",
    title="2-to-1 byte multiplexer",
    category="combinational",
    difficulty=0.04,
    kind="comb",
    spec=(
        "Implement an 8-bit 2-to-1 multiplexer: out = b when sel is 1, "
        "otherwise out = a."
    ),
    golden="""
module top_module (
    input wire [7:0] a,
    input wire [7:0] b,
    input wire sel,
    output wire [7:0] out
);
    assign out = sel ? b : a;
endmodule
""",
    top="top_module",
    directed=({"a": 0x12, "b": 0x34, "sel": 0}, {"a": 0x12, "b": 0x34, "sel": 1}),
    n_random=16,
)

_p(
    id="cb_mux4",
    title="4-to-1 multiplexer",
    category="combinational",
    difficulty=0.15,
    kind="comb",
    spec=(
        "Implement a 4-bit wide 4-to-1 multiplexer. Inputs d0, d1, d2, d3 "
        "and a 2-bit select sel; output out = d<sel>."
    ),
    golden="""
module top_module (
    input wire [3:0] d0,
    input wire [3:0] d1,
    input wire [3:0] d2,
    input wire [3:0] d3,
    input wire [1:0] sel,
    output reg [3:0] out
);
    always @(*) begin
        case (sel)
            2'd0: out = d0;
            2'd1: out = d1;
            2'd2: out = d2;
            default: out = d3;
        endcase
    end
endmodule
""",
    top="top_module",
    directed=tuple(
        {"d0": 1, "d1": 2, "d2": 4, "d3": 8, "sel": s} for s in range(4)
    ),
    n_random=16,
)

_p(
    id="cb_decoder3to8",
    title="3-to-8 decoder with enable",
    category="combinational",
    difficulty=0.2,
    kind="comb",
    spec=(
        "Implement a 3-to-8 one-hot decoder with an active-high enable. "
        "When en is 1, out has exactly bit <addr> set; when en is 0, out "
        "is all zeros."
    ),
    golden="""
module top_module (
    input wire en,
    input wire [2:0] addr,
    output wire [7:0] out
);
    assign out = en ? (8'b1 << addr) : 8'b0;
endmodule
""",
    top="top_module",
    directed=tuple({"en": 1, "addr": a} for a in range(8)) + ({"en": 0, "addr": 3},),
    n_random=12,
)

_p(
    id="cb_priority_enc8",
    title="8-bit priority encoder",
    category="combinational",
    difficulty=0.4,
    kind="comb",
    spec=(
        "Implement an 8-bit priority encoder. Given req[7:0], output the "
        "index (3 bits) of the highest-numbered asserted bit and a valid "
        "flag. If no bit is set, index = 0 and valid = 0."
    ),
    golden="""
module top_module (
    input wire [7:0] req,
    output reg [2:0] index,
    output reg valid
);
    integer i;
    always @(*) begin
        index = 3'd0;
        valid = 1'b0;
        for (i = 0; i < 8; i = i + 1) begin
            if (req[i]) begin
                index = i[2:0];
                valid = 1'b1;
            end
        end
    end
endmodule
""",
    top="top_module",
    directed=({"req": 0}, {"req": 1}, {"req": 0x80}, {"req": 0x42}, {"req": 0xFF}),
    n_random=20,
)

_p(
    id="cb_seven_seg",
    title="BCD to seven-segment decoder",
    category="combinational",
    difficulty=0.55,
    kind="comb",
    spec=(
        "Decode a BCD digit (0-9) to active-high seven-segment outputs "
        "seg[6:0] = {g, f, e, d, c, b, a} using the standard segment "
        "encoding (0 -> 7'b0111111, 1 -> 7'b0000110, 2 -> 7'b1011011, "
        "3 -> 7'b1001111, 4 -> 7'b1100110, 5 -> 7'b1101101, "
        "6 -> 7'b1111101, 7 -> 7'b0000111, 8 -> 7'b1111111, "
        "9 -> 7'b1101111). For inputs 10-15 output all zeros."
    ),
    golden="""
module top_module (
    input wire [3:0] bcd,
    output reg [6:0] seg
);
    always @(*) begin
        case (bcd)
            4'd0: seg = 7'b0111111;
            4'd1: seg = 7'b0000110;
            4'd2: seg = 7'b1011011;
            4'd3: seg = 7'b1001111;
            4'd4: seg = 7'b1100110;
            4'd5: seg = 7'b1101101;
            4'd6: seg = 7'b1111101;
            4'd7: seg = 7'b0000111;
            4'd8: seg = 7'b1111111;
            4'd9: seg = 7'b1101111;
            default: seg = 7'b0000000;
        endcase
    end
endmodule
""",
    top="top_module",
    directed=tuple({"bcd": v} for v in range(16)),
    n_random=8,
)

_p(
    id="cb_kmap_mux",
    title="Karnaugh-map derived mux inputs (prob093 style)",
    category="combinational",
    difficulty=0.6,
    kind="comb",
    spec=(
        "A 4-to-1 multiplexer selected by {a, b} implements a function of "
        "four variables a, b, c, d. Derive the four mux data inputs as "
        "functions of c and d so that the overall function matches this "
        "truth table: mux_in[0] (selected when ab=00) must be 1 when "
        "c OR d is 1; mux_in[1] (ab=01) is constant 0; mux_in[2] (ab=10) "
        "must be 1 when d is 0; mux_in[3] (ab=11) must be 1 when both "
        "c and d are 1. Output the 4-bit vector mux_in[3:0]."
    ),
    golden="""
module top_module (
    input wire c,
    input wire d,
    output reg [3:0] mux_in
);
    always @(*) begin
        mux_in[0] = (~c & d) | (c & ~d) | (c & d);
        mux_in[1] = 1'b0;
        mux_in[2] = (~c & ~d) | (c & ~d);
        mux_in[3] = c & d;
    end
endmodule
""",
    top="top_module",
    directed=tuple({"c": c, "d": d} for c in (0, 1) for d in (0, 1)),
    n_random=6,
)

_p(
    id="cb_popcount8",
    title="8-bit population count",
    category="combinational",
    difficulty=0.35,
    kind="comb",
    spec=(
        "Count the number of 1 bits in an 8-bit input; output the count "
        "as a 4-bit value."
    ),
    golden="""
module top_module (
    input wire [7:0] in,
    output reg [3:0] count
);
    integer i;
    always @(*) begin
        count = 4'd0;
        for (i = 0; i < 8; i = i + 1)
            count = count + {3'b0, in[i]};
    end
endmodule
""",
    top="top_module",
    directed=({"in": 0}, {"in": 255}, {"in": 0x0F}, {"in": 0x55}),
    n_random=20,
)

_p(
    id="cb_comparator4",
    title="4-bit unsigned comparator",
    category="combinational",
    difficulty=0.18,
    kind="comb",
    spec=(
        "Compare two 4-bit unsigned numbers a and b. Outputs: lt (a < b), "
        "eq (a == b), gt (a > b). Exactly one output is high."
    ),
    golden="""
module top_module (
    input wire [3:0] a,
    input wire [3:0] b,
    output wire lt,
    output wire eq,
    output wire gt
);
    assign lt = a < b;
    assign eq = a == b;
    assign gt = a > b;
endmodule
""",
    top="top_module",
    directed=({"a": 3, "b": 7}, {"a": 7, "b": 3}, {"a": 5, "b": 5}, {"a": 0, "b": 15}),
    n_random=16,
)

_p(
    id="cb_barrel_rotl8",
    title="8-bit barrel rotate left",
    category="combinational",
    difficulty=0.45,
    kind="comb",
    spec=(
        "Rotate an 8-bit input left by a 3-bit amount: "
        "out = {in, in} >> (8 - amt) truncated to 8 bits, i.e. bits that "
        "fall off the top re-enter at the bottom. amt = 0 leaves the "
        "value unchanged."
    ),
    golden="""
module top_module (
    input wire [7:0] in,
    input wire [2:0] amt,
    output wire [7:0] out
);
    wire [15:0] doubled;
    assign doubled = {in, in};
    assign out = doubled >> (4'd8 - {1'b0, amt});
endmodule
""",
    top="top_module",
    directed=(
        {"in": 0x81, "amt": 0},
        {"in": 0x81, "amt": 1},
        {"in": 0x81, "amt": 7},
        {"in": 0x0F, "amt": 4},
    ),
    n_random=20,
)

_p(
    id="cb_bin2gray8",
    title="Binary to Gray code",
    category="combinational",
    difficulty=0.12,
    kind="comb",
    spec=(
        "Convert an 8-bit binary number to Gray code: "
        "gray = bin ^ (bin >> 1)."
    ),
    golden="""
module top_module (
    input wire [7:0] bin,
    output wire [7:0] gray
);
    assign gray = bin ^ (bin >> 1);
endmodule
""",
    top="top_module",
    directed=({"bin": 0}, {"bin": 255}, {"bin": 0x80}, {"bin": 0x7F}),
    n_random=16,
)

_p(
    id="cb_gray2bin8",
    title="Gray code to binary",
    category="combinational",
    difficulty=0.5,
    kind="comb",
    spec=(
        "Convert an 8-bit Gray-code value back to binary. Each binary bit "
        "is the XOR of all Gray bits at that position and above: "
        "bin[i] = ^gray[7:i]."
    ),
    golden="""
module top_module (
    input wire [7:0] gray,
    output reg [7:0] bin
);
    integer i;
    always @(*) begin
        bin[7] = gray[7];
        for (i = 6; i >= 0; i = i - 1)
            bin[i] = bin[i + 1] ^ gray[i];
    end
endmodule
""",
    top="top_module",
    directed=({"gray": 0}, {"gray": 0x80}, {"gray": 0xFF}, {"gray": 0x01}),
    n_random=16,
)
