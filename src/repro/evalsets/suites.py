"""Suite registry mirroring the paper's benchmarks.

``verilogeval-human-v1`` mirrors VerilogEval-Human v1: hand-written
spec-to-RTL tasks, mostly combinational/sequential/FSM.
``verilogeval-v2`` mirrors VerilogEval v2: the same task style with a
broader mix, including the memory-structure designs.  The two suites
overlap heavily, as the originals do.  Both are *frozen* to explicit id
lists so that adding problems to the library never silently shifts
published calibration numbers.

``rtllm-like`` collects additional problems in the style of the RTLLM
benchmark the paper cites ([19]); it is not used by the paper's tables
but gives downstream users a third evaluation target.
"""

from __future__ import annotations

from repro.evalsets.problem import Problem, all_problems, get_problem

# The 41 problems the calibration in repro.llm.profiles was fitted on.
_CORE = (
    "ar_abs_diff8",
    "ar_adder8_cout",
    "ar_addsub8",
    "ar_clz8",
    "ar_mod_inc",
    "ar_mult4",
    "ar_sat_add8",
    "cb_and_or_gate",
    "cb_barrel_rotl8",
    "cb_bin2gray8",
    "cb_comparator4",
    "cb_decoder3to8",
    "cb_gray2bin8",
    "cb_kmap_mux",
    "cb_mux2",
    "cb_mux4",
    "cb_popcount8",
    "cb_priority_enc8",
    "cb_seven_seg",
    "cb_xor_parity",
    "fs_arbiter2",
    "fs_ones_run",
    "fs_seq_det_1011",
    "fs_seq_det_110",
    "fs_traffic",
    "fs_vending",
    "me_fifo4",
    "me_ram_sync",
    "me_regfile",
    "me_rom_case",
    "me_stack4",
    "sq_counter_bcd",
    "sq_counter_ud",
    "sq_dff_ar",
    "sq_edge_detect",
    "sq_gray_counter",
    "sq_lfsr5",
    "sq_ring_counter",
    "sq_shift_lr",
    "sq_tff",
    "sq_timer",
)


def _suite_v1() -> list[str]:
    memory_ids = {
        pid for pid in _CORE if get_problem(pid).category == "memory"
    }
    return [pid for pid in _CORE if pid not in memory_ids]


def _suite_v2() -> list[str]:
    return list(_CORE)


def _suite_rtllm() -> list[str]:
    core = set(_CORE)
    return [p.id for p in all_problems() if p.id not in core]


SUITES: dict[str, callable] = {
    "verilogeval-human-v1": _suite_v1,
    "verilogeval-v2": _suite_v2,
    "rtllm-like": _suite_rtllm,
}


def suite_names() -> list[str]:
    return sorted(SUITES)


def get_suite(name: str) -> list[Problem]:
    """All problems of a suite, in stable id order."""
    if name not in SUITES:
        raise KeyError(
            f"unknown suite {name!r}; available: {', '.join(suite_names())}"
        )
    return [get_problem(pid) for pid in SUITES[name]()]
