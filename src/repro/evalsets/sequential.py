"""Sequential problems (flip-flops, counters, shift registers, LFSRs)."""

from repro.evalsets.problem import Problem, register_problem


def _p(**kwargs) -> Problem:
    return register_problem(Problem(**kwargs))


_p(
    id="sq_dff_ar",
    title="D flip-flop with async reset",
    category="sequential",
    difficulty=0.06,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a D flip-flop with an asynchronous active-high reset: "
        "on reset q becomes 0 immediately; otherwise q takes d at each "
        "rising clock edge."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire areset,
    input wire d,
    output reg q
);
    always @(posedge clk or posedge areset) begin
        if (areset)
            q <= 1'b0;
        else
            q <= d;
    end
endmodule
""",
    top="top_module",
    directed=(
        {"areset": 1, "d": 1},
        {"areset": 0, "d": 1},
        {"d": 0},
        {"d": 1},
    ),
    random_policy={"areset": 0.1, "d": 0.5},
    n_random=20,
)

_p(
    id="sq_tff",
    title="T flip-flop with sync reset",
    category="sequential",
    difficulty=0.12,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a T flip-flop with synchronous active-high reset. "
        "On reset q becomes 0 at the clock edge; otherwise q toggles "
        "when t is 1 and holds when t is 0."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire t,
    output reg q
);
    always @(posedge clk) begin
        if (reset)
            q <= 1'b0;
        else if (t)
            q <= ~q;
    end
endmodule
""",
    top="top_module",
    directed=({"reset": 1, "t": 0}, {"reset": 0, "t": 1}, {"t": 1}, {"t": 0}),
    random_policy={"reset": 0.08, "t": 0.6},
    n_random=20,
)

_p(
    id="sq_counter_ud",
    title="Up/down counter with load",
    category="sequential",
    difficulty=0.4,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement an 8-bit up/down counter with synchronous active-high "
        "reset (to 0) and parallel load. Priority: reset, then load "
        "(count <= din), then count up when up is 1 else count down. "
        "The counter wraps naturally."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire load,
    input wire up,
    input wire [7:0] din,
    output reg [7:0] count
);
    always @(posedge clk) begin
        if (reset)
            count <= 8'd0;
        else if (load)
            count <= din;
        else if (up)
            count <= count + 8'd1;
        else
            count <= count - 8'd1;
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "load": 0, "up": 1, "din": 0},
        {"reset": 0, "up": 1},
        {"up": 1},
        {"load": 1, "din": 200},
        {"load": 0, "up": 0},
        {"up": 0},
    ),
    random_policy={"reset": 0.05, "load": 0.15, "up": 0.5},
    n_random=24,
)

_p(
    id="sq_counter_bcd",
    title="BCD ones-digit counter with carry",
    category="sequential",
    difficulty=0.6,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a single-digit BCD counter with synchronous reset and "
        "enable. When enabled, the digit counts 0-9 and wraps to 0; the "
        "carry output is high (combinationally) when the digit is 9 and "
        "enable is high, i.e. for exactly one cycle per decade."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire en,
    output reg [3:0] digit,
    output wire carry
);
    assign carry = en & (digit == 4'd9);
    always @(posedge clk) begin
        if (reset)
            digit <= 4'd0;
        else if (en) begin
            if (digit == 4'd9)
                digit <= 4'd0;
            else
                digit <= digit + 4'd1;
        end
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "en": 0},
        {"reset": 0, "en": 1},
    )
    + tuple({"en": 1} for _ in range(11)),
    random_policy={"reset": 0.04, "en": 0.8},
    n_random=20,
)

_p(
    id="sq_shift_lr",
    title="Bidirectional shift register",
    category="sequential",
    difficulty=0.5,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement an 8-bit shift register with synchronous reset, "
        "parallel load, and direction control. Priority: reset (clear), "
        "then load (q <= din), then shift: when dir is 0 shift left "
        "(serial-in sin enters bit 0), when dir is 1 shift right "
        "(sin enters bit 7). When ena is 0 and neither reset nor load, "
        "hold the value."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire load,
    input wire ena,
    input wire dir,
    input wire sin,
    input wire [7:0] din,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 8'd0;
        else if (load)
            q <= din;
        else if (ena) begin
            if (dir)
                q <= {sin, q[7:1]};
            else
                q <= {q[6:0], sin};
        end
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "load": 0, "ena": 0, "dir": 0, "sin": 0, "din": 0},
        {"reset": 0, "load": 1, "din": 0x81},
        {"load": 0, "ena": 1, "dir": 0, "sin": 1},
        {"dir": 1, "sin": 0},
        {"ena": 0},
    ),
    random_policy={"reset": 0.04, "load": 0.1, "ena": 0.7, "dir": 0.5, "sin": 0.5},
    n_random=24,
)

_p(
    id="sq_ring_counter",
    title="4-bit ring counter",
    category="sequential",
    difficulty=0.3,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a 4-bit one-hot ring counter. Synchronous active-high "
        "reset sets q to 4'b0001; afterwards the single hot bit rotates "
        "left one position per clock (bit 3 wraps to bit 0)."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 4'b0001;
        else
            q <= {q[2:0], q[3]};
    end
endmodule
""",
    top="top_module",
    directed=({"reset": 1},) + tuple({"reset": 0} for _ in range(6)),
    random_policy={"reset": 0.05},
    n_random=16,
)

_p(
    id="sq_lfsr5",
    title="5-bit maximal LFSR",
    category="sequential",
    difficulty=0.55,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a 5-bit Galois-style LFSR per VerilogEval's lfsr5: at "
        "each clock, q[4] <= q[0]; q[3] <= q[4]; q[2] <= q[3] ^ q[0]; "
        "q[1] <= q[2]; q[0] <= q[1]. Synchronous active-high reset sets "
        "q to 5'h1."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    output reg [4:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 5'h1;
        else begin
            q[4] <= q[0];
            q[3] <= q[4];
            q[2] <= q[3] ^ q[0];
            q[1] <= q[2];
            q[0] <= q[1];
        end
    end
endmodule
""",
    top="top_module",
    directed=({"reset": 1},) + tuple({"reset": 0} for _ in range(10)),
    random_policy={"reset": 0.03},
    n_random=20,
)

_p(
    id="sq_edge_detect",
    title="Rising edge detector",
    category="sequential",
    difficulty=0.35,
    kind="clocked",
    clock="clk",
    spec=(
        "Detect rising edges of input a. The output rise is registered: "
        "it is high for one cycle when a was 0 at the previous clock "
        "edge and 1 at this one. Synchronous active-high reset clears "
        "both the stored previous value and rise to 0."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire a,
    output reg rise
);
    reg prev;
    always @(posedge clk) begin
        if (reset) begin
            prev <= 1'b0;
            rise <= 1'b0;
        end else begin
            rise <= a & ~prev;
            prev <= a;
        end
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "a": 0},
        {"reset": 0, "a": 1},
        {"a": 1},
        {"a": 0},
        {"a": 1},
    ),
    random_policy={"reset": 0.05, "a": 0.5},
    n_random=24,
)

_p(
    id="sq_timer",
    title="Programmable down-timer",
    category="sequential",
    difficulty=0.65,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a down-timer. When start is 1 at a clock edge, load "
        "the 4-bit duration value and begin counting down one per cycle "
        "until reaching 0; start has priority and reloads the timer even "
        "mid-count. Output done is combinational and high whenever the "
        "count is 0. Synchronous active-high reset clears the count."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire start,
    input wire [3:0] duration,
    output wire done,
    output reg [3:0] count
);
    assign done = (count == 4'd0);
    always @(posedge clk) begin
        if (reset)
            count <= 4'd0;
        else if (start)
            count <= duration;
        else if (count != 4'd0)
            count <= count - 4'd1;
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "start": 0, "duration": 0},
        {"reset": 0, "start": 1, "duration": 3},
        {"start": 0},
        {},
        {},
        {},
        {"start": 1, "duration": 1},
        {"start": 0},
    ),
    random_policy={"reset": 0.04, "start": 0.25},
    n_random=24,
)

_p(
    id="sq_gray_counter",
    title="4-bit Gray-code counter",
    category="sequential",
    difficulty=0.7,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a 4-bit Gray-code counter: the output sequence visits "
        "all 16 Gray codes (0, 1, 3, 2, 6, 7, 5, 4, 12, ...) advancing "
        "one code per enabled clock. Internally keep a binary counter "
        "and output bin ^ (bin >> 1). Synchronous reset to 0; en gates "
        "counting."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire en,
    output wire [3:0] gray
);
    reg [3:0] bin;
    assign gray = bin ^ (bin >> 1);
    always @(posedge clk) begin
        if (reset)
            bin <= 4'd0;
        else if (en)
            bin <= bin + 4'd1;
    end
endmodule
""",
    top="top_module",
    directed=({"reset": 1, "en": 0},) + tuple({"reset": 0, "en": 1} for _ in range(8)),
    random_policy={"reset": 0.04, "en": 0.8},
    n_random=20,
)
