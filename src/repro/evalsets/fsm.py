"""Finite-state-machine problems (sequence detectors, arbiters, ...)."""

from repro.evalsets.problem import Problem, register_problem


def _p(**kwargs) -> Problem:
    return register_problem(Problem(**kwargs))


_p(
    id="fs_seq_det_1011",
    title="Overlapping 1011 sequence detector (Mealy)",
    category="fsm",
    difficulty=0.7,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a Mealy FSM that detects the serial bit pattern 1011 "
        "on input x (MSB first, overlapping allowed). Output z is "
        "registered and pulses high for the cycle after the final 1 of "
        "a detected pattern. Synchronous active-high reset returns the "
        "FSM to its initial state with z low."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire x,
    output reg z
);
    localparam S0 = 2'd0;
    localparam S1 = 2'd1;
    localparam S10 = 2'd2;
    localparam S101 = 2'd3;
    reg [1:0] state;
    always @(posedge clk) begin
        if (reset) begin
            state <= S0;
            z <= 1'b0;
        end else begin
            z <= 1'b0;
            case (state)
                S0:
                    if (x) state <= S1;
                S1:
                    if (x) state <= S1;
                    else state <= S10;
                S10:
                    if (x) state <= S101;
                    else state <= S0;
                S101:
                    if (x) begin
                        z <= 1'b1;
                        state <= S1;
                    end else
                        state <= S10;
            endcase
        end
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "x": 0},
        {"reset": 0, "x": 1},
        {"x": 0},
        {"x": 1},
        {"x": 1},  # 1011 complete -> z next cycle
        {"x": 0},
        {"x": 1},
        {"x": 1},  # overlap: ...1011 again
    ),
    random_policy={"reset": 0.03, "x": 0.6},
    n_random=28,
)

_p(
    id="fs_seq_det_110",
    title="Non-overlapping 110 detector (Moore)",
    category="fsm",
    difficulty=0.6,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a Moore FSM that detects the serial pattern 110 on "
        "input x without overlap (after a detection, matching restarts "
        "from scratch). Output z is high while the FSM is in the "
        "detected state (the cycle after the 0 arrives). Synchronous "
        "active-high reset."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire x,
    output wire z
);
    localparam IDLE = 2'd0;
    localparam GOT1 = 2'd1;
    localparam GOT11 = 2'd2;
    localparam FOUND = 2'd3;
    reg [1:0] state;
    assign z = (state == FOUND);
    always @(posedge clk) begin
        if (reset)
            state <= IDLE;
        else begin
            case (state)
                IDLE:
                    state <= x ? GOT1 : IDLE;
                GOT1:
                    state <= x ? GOT11 : IDLE;
                GOT11:
                    state <= x ? GOT11 : FOUND;
                default:
                    state <= x ? GOT1 : IDLE;
            endcase
        end
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "x": 0},
        {"reset": 0, "x": 1},
        {"x": 1},
        {"x": 0},  # 110 -> FOUND next cycle
        {"x": 1},
        {"x": 1},
        {"x": 0},
    ),
    random_policy={"reset": 0.03, "x": 0.55},
    n_random=28,
)

_p(
    id="fs_arbiter2",
    title="Two-requester round-robin arbiter",
    category="fsm",
    difficulty=0.75,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a 2-requester round-robin arbiter. Registered one-hot "
        "grant outputs gnt[1:0] respond to request inputs req[1:0] one "
        "cycle later. If both request, the requester that was NOT "
        "granted most recently wins; ties after reset favour requester "
        "0. A granted requester keeps its grant while its request stays "
        "high (grant is re-evaluated only when the current holder "
        "deasserts). With no requests, no grant is asserted. Synchronous "
        "active-high reset clears grants and priority."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire [1:0] req,
    output reg [1:0] gnt
);
    reg last;  // most recently granted requester
    always @(posedge clk) begin
        if (reset) begin
            gnt <= 2'b00;
            last <= 1'b1;  // so requester 0 wins the first tie
        end else if (gnt != 2'b00 && (gnt & req) != 2'b00) begin
            gnt <= gnt;  // holder keeps the grant
        end else if (req == 2'b00) begin
            gnt <= 2'b00;
        end else if (req == 2'b01) begin
            gnt <= 2'b01;
            last <= 1'b0;
        end else if (req == 2'b10) begin
            gnt <= 2'b10;
            last <= 1'b1;
        end else begin
            if (last == 1'b0) begin
                gnt <= 2'b10;
                last <= 1'b1;
            end else begin
                gnt <= 2'b01;
                last <= 1'b0;
            end
        end
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "req": 0},
        {"reset": 0, "req": 3},
        {"req": 3},
        {"req": 2},
        {"req": 0},
        {"req": 3},
        {"req": 1},
    ),
    random_policy={"reset": 0.03},
    n_random=28,
)

_p(
    id="fs_vending",
    title="Vending machine FSM",
    category="fsm",
    difficulty=0.85,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a vending machine accepting nickels (5c) and dimes "
        "(10c) for a 20c item. Inputs nickel and dime pulse for one "
        "cycle per coin (never both). Track the accumulated credit in "
        "multiples of 5 (internal states 0, 5, 10, 15). When credit "
        "reaches 20 or more, pulse dispense for one cycle (registered), "
        "pulse change_out if credit hit 25 (a dime on 15), and return "
        "to 0 credit. Synchronous active-high reset clears credit and "
        "outputs."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire nickel,
    input wire dime,
    output reg dispense,
    output reg change_out
);
    reg [2:0] credit;  // credit in units of 5 cents (0..3)
    reg [2:0] next_total;
    always @(posedge clk) begin
        if (reset) begin
            credit <= 3'd0;
            dispense <= 1'b0;
            change_out <= 1'b0;
        end else begin
            next_total = credit + {2'b0, nickel} + {1'b0, dime, 1'b0};
            if (next_total >= 3'd4) begin
                dispense <= 1'b1;
                change_out <= (next_total > 3'd4);
                credit <= 3'd0;
            end else begin
                dispense <= 1'b0;
                change_out <= 1'b0;
                credit <= next_total;
            end
        end
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "nickel": 0, "dime": 0},
        {"reset": 0, "dime": 1},
        {"dime": 0, "nickel": 1},
        {"nickel": 1},
        {"nickel": 0, "dime": 1},  # 5+5+10 = 20 -> dispense
        {"dime": 0},
        {"dime": 1},
        {"dime": 0, "nickel": 1},
        {"nickel": 0, "dime": 1},  # 10+5+10 = 25 -> dispense + change
        {"dime": 0},
    ),
    random_policy={"reset": 0.02, "nickel": 0.4, "dime": 0.3},
    n_random=30,
)

_p(
    id="fs_traffic",
    title="Traffic light controller",
    category="fsm",
    difficulty=0.8,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a traffic light FSM with one-hot outputs {red, "
        "yellow, green}. After synchronous reset the light is red. Red "
        "lasts 4 cycles, then green for 4 cycles, then yellow for 2 "
        "cycles, then back to red. Exactly one output is high each "
        "cycle."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    output wire red,
    output wire yellow,
    output wire green
);
    localparam RED = 2'd0;
    localparam GREEN = 2'd1;
    localparam YELLOW = 2'd2;
    reg [1:0] state;
    reg [2:0] timer;
    assign red = (state == RED);
    assign green = (state == GREEN);
    assign yellow = (state == YELLOW);
    always @(posedge clk) begin
        if (reset) begin
            state <= RED;
            timer <= 3'd0;
        end else begin
            case (state)
                RED:
                    if (timer == 3'd3) begin
                        state <= GREEN;
                        timer <= 3'd0;
                    end else
                        timer <= timer + 3'd1;
                GREEN:
                    if (timer == 3'd3) begin
                        state <= YELLOW;
                        timer <= 3'd0;
                    end else
                        timer <= timer + 3'd1;
                default:
                    if (timer == 3'd1) begin
                        state <= RED;
                        timer <= 3'd0;
                    end else
                        timer <= timer + 3'd1;
            endcase
        end
    end
endmodule
""",
    top="top_module",
    directed=({"reset": 1},) + tuple({"reset": 0} for _ in range(14)),
    random_policy={"reset": 0.02},
    n_random=24,
)

_p(
    id="fs_ones_run",
    title="Three-consecutive-ones detector",
    category="fsm",
    difficulty=0.45,
    kind="clocked",
    clock="clk",
    spec=(
        "Output z (registered) pulses high for one cycle whenever input "
        "x has been 1 for three consecutive clock edges (overlapping "
        "runs count: 1111 fires at the 3rd and 4th ones). Synchronous "
        "active-high reset clears the run length and z."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire x,
    output reg z
);
    reg [1:0] run;
    always @(posedge clk) begin
        if (reset) begin
            run <= 2'd0;
            z <= 1'b0;
        end else if (x) begin
            if (run >= 2'd2) begin
                z <= 1'b1;
                run <= 2'd2;
            end else begin
                z <= 1'b0;
                run <= run + 2'd1;
            end
        end else begin
            z <= 1'b0;
            run <= 2'd0;
        end
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "x": 0},
        {"reset": 0, "x": 1},
        {"x": 1},
        {"x": 1},
        {"x": 1},
        {"x": 0},
        {"x": 1},
        {"x": 1},
    ),
    random_policy={"reset": 0.03, "x": 0.7},
    n_random=28,
)
