"""Additional problems in the RTLLM style (the ``rtllm-like`` suite).

These extend the library beyond the paper's two suites; the frozen
VerilogEval-style suites never include them, so published calibration
numbers are unaffected.
"""

from repro.evalsets.problem import Problem, register_problem


def _p(**kwargs) -> Problem:
    return register_problem(Problem(**kwargs))


_p(
    id="ex_johnson4",
    title="4-bit Johnson counter",
    category="sequential",
    difficulty=0.4,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a 4-bit Johnson (twisted-ring) counter: on each clock "
        "the register shifts left by one and the complement of the old "
        "MSB enters bit 0, producing the 8-state sequence 0000, 0001, "
        "0011, 0111, 1111, 1110, 1100, 1000. Synchronous active-high "
        "reset clears the register to 0000."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (reset)
            q <= 4'b0000;
        else
            q <= {q[2:0], ~q[3]};
    end
endmodule
""",
    top="top_module",
    directed=({"reset": 1},) + tuple({"reset": 0} for _ in range(9)),
    random_policy={"reset": 0.05},
    n_random=16,
)

_p(
    id="ex_pwm",
    title="PWM generator",
    category="sequential",
    difficulty=0.55,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement an 8-bit PWM generator. A free-running 8-bit counter "
        "increments every clock (wrapping); the output pwm is high "
        "(combinationally) while the counter value is strictly less than "
        "the duty input. duty=0 keeps pwm low forever; duty=255 keeps it "
        "high for 255 of 256 counts. Synchronous active-high reset "
        "clears the counter."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire [7:0] duty,
    output wire pwm,
    output reg [7:0] count
);
    assign pwm = count < duty;
    always @(posedge clk) begin
        if (reset)
            count <= 8'd0;
        else
            count <= count + 8'd1;
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "duty": 0},
        {"reset": 0, "duty": 2},
        {},
        {},
        {"duty": 255},
    ),
    random_policy={"reset": 0.03},
    n_random=24,
)

_p(
    id="ex_majority5",
    title="5-input majority voter",
    category="combinational",
    difficulty=0.35,
    kind="comb",
    spec=(
        "Output 1 when three or more of the five 1-bit inputs a, b, c, "
        "d, e are 1, else 0."
    ),
    golden="""
module top_module (
    input wire a,
    input wire b,
    input wire c,
    input wire d,
    input wire e,
    output wire y
);
    wire [2:0] total;
    assign total = {2'b0, a} + {2'b0, b} + {2'b0, c} + {2'b0, d} + {2'b0, e};
    assign y = total >= 3'd3;
endmodule
""",
    top="top_module",
    directed=(
        {"a": 1, "b": 1, "c": 1, "d": 0, "e": 0},
        {"a": 1, "b": 1, "c": 0, "d": 0, "e": 0},
        {"a": 0, "b": 0, "c": 0, "d": 0, "e": 0},
        {"a": 1, "b": 1, "c": 1, "d": 1, "e": 1},
    ),
    n_random=20,
)

_p(
    id="ex_onehot2bin",
    title="One-hot to binary encoder",
    category="combinational",
    difficulty=0.45,
    kind="comb",
    spec=(
        "Convert an 8-bit one-hot input to its 3-bit binary index, with "
        "a valid flag that is high only when exactly one input bit is "
        "set. When valid is low, the index output is 0."
    ),
    golden="""
module top_module (
    input wire [7:0] onehot,
    output reg [2:0] index,
    output reg valid
);
    integer i;
    reg [3:0] ones;
    always @(*) begin
        ones = 4'd0;
        index = 3'd0;
        for (i = 0; i < 8; i = i + 1) begin
            if (onehot[i]) begin
                ones = ones + 4'd1;
                index = i[2:0];
            end
        end
        valid = (ones == 4'd1);
        if (!valid)
            index = 3'd0;
    end
endmodule
""",
    top="top_module",
    directed=(
        {"onehot": 0x01},
        {"onehot": 0x80},
        {"onehot": 0x00},
        {"onehot": 0x82},
        {"onehot": 0x10},
    ),
    n_random=20,
)

_p(
    id="ex_minmax8",
    title="Signed min/max",
    category="arithmetic",
    difficulty=0.4,
    kind="comb",
    spec=(
        "Given two signed 8-bit inputs, output their minimum and maximum "
        "using signed comparison."
    ),
    golden="""
module top_module (
    input wire signed [7:0] a,
    input wire signed [7:0] b,
    output wire signed [7:0] min,
    output wire signed [7:0] max
);
    wire a_smaller;
    assign a_smaller = a < b;
    assign min = a_smaller ? a : b;
    assign max = a_smaller ? b : a;
endmodule
""",
    top="top_module",
    directed=(
        {"a": 0x7F, "b": 0x80},
        {"a": 0x01, "b": 0xFF},
        {"a": 10, "b": 10},
    ),
    n_random=24,
)

_p(
    id="ex_div4_pulse",
    title="Divide-by-4 pulse generator",
    category="sequential",
    difficulty=0.5,
    kind="clocked",
    clock="clk",
    spec=(
        "Generate a single-cycle pulse (registered output tick) once "
        "every 4 clock cycles: tick is high on the cycle after the "
        "internal 2-bit counter wraps from 3 to 0. Synchronous "
        "active-high reset clears the counter and tick."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    output reg tick,
    output reg [1:0] count
);
    always @(posedge clk) begin
        if (reset) begin
            count <= 2'd0;
            tick <= 1'b0;
        end else begin
            count <= count + 2'd1;
            tick <= (count == 2'd3);
        end
    end
endmodule
""",
    top="top_module",
    directed=({"reset": 1},) + tuple({"reset": 0} for _ in range(10)),
    random_policy={"reset": 0.04},
    n_random=20,
)

_p(
    id="ex_sipo8",
    title="Serial-in parallel-out with done flag",
    category="sequential",
    difficulty=0.6,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement an 8-bit serial-to-parallel converter: each clock, "
        "input bit sin shifts into the LSB of an internal register "
        "(older bits move up). A 3-bit counter tracks progress; the "
        "registered output done pulses high for one cycle when the 8th "
        "bit arrives, and data always shows the register contents. "
        "Synchronous active-high reset clears everything."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire sin,
    output reg [7:0] data,
    output reg done
);
    reg [2:0] count;
    always @(posedge clk) begin
        if (reset) begin
            data <= 8'd0;
            count <= 3'd0;
            done <= 1'b0;
        end else begin
            data <= {data[6:0], sin};
            count <= count + 3'd1;
            done <= (count == 3'd7);
        end
    end
endmodule
""",
    top="top_module",
    directed=({"reset": 1, "sin": 0},)
    + tuple({"reset": 0, "sin": i % 2} for i in range(10)),
    random_policy={"reset": 0.03, "sin": 0.5},
    n_random=24,
)

_p(
    id="ex_alu_flags",
    title="Two-op ALU with flags",
    category="arithmetic",
    difficulty=0.5,
    kind="comb",
    spec=(
        "Implement a tiny ALU: when op is 0, result = a + b; when op is "
        "1, result = a - b (8-bit wraparound). Output flags: zero (the "
        "result is 0) and neg (the result's MSB, i.e. negative when "
        "interpreted as signed)."
    ),
    golden="""
module top_module (
    input wire [7:0] a,
    input wire [7:0] b,
    input wire op,
    output reg [7:0] result,
    output wire zero,
    output wire neg
);
    assign zero = (result == 8'd0);
    assign neg = result[7];
    always @(*) begin
        if (op)
            result = a - b;
        else
            result = a + b;
    end
endmodule
""",
    top="top_module",
    directed=(
        {"a": 5, "b": 5, "op": 1},
        {"a": 5, "b": 6, "op": 1},
        {"a": 200, "b": 100, "op": 0},
        {"a": 0, "b": 0, "op": 0},
    ),
    n_random=24,
)

_p(
    id="ex_sat_counter",
    title="Saturating up/down counter",
    category="sequential",
    difficulty=0.45,
    kind="clocked",
    clock="clk",
    spec=(
        "Implement a 4-bit saturating up/down counter (the core of a "
        "branch predictor): when en is high, count up if up is 1 "
        "(saturating at 15) else count down (saturating at 0); no "
        "wraparound in either direction. Synchronous active-high reset "
        "sets the counter to 8 (weakly taken)."
    ),
    golden="""
module top_module (
    input wire clk,
    input wire reset,
    input wire en,
    input wire up,
    output reg [3:0] count
);
    always @(posedge clk) begin
        if (reset)
            count <= 4'd8;
        else if (en) begin
            if (up) begin
                if (count != 4'd15)
                    count <= count + 4'd1;
            end else begin
                if (count != 4'd0)
                    count <= count - 4'd1;
            end
        end
    end
endmodule
""",
    top="top_module",
    directed=(
        {"reset": 1, "en": 0, "up": 0},
        {"reset": 0, "en": 1, "up": 1},
    )
    + tuple({"up": 1} for _ in range(8))
    + tuple({"up": 0} for _ in range(3)),
    random_policy={"reset": 0.03, "en": 0.8, "up": 0.5},
    n_random=24,
)

_p(
    id="ex_parity_unit",
    title="Parity generator and checker",
    category="combinational",
    difficulty=0.3,
    kind="comb",
    spec=(
        "Implement a combined parity unit for 8-bit words: gen_odd is "
        "the odd-parity bit to append to dout (so that the 9 bits "
        "together have an odd number of ones), and err flags a received "
        "word: it is high when the 8-bit din plus its received parity "
        "bit pin do NOT have odd parity overall."
    ),
    golden="""
module top_module (
    input wire [7:0] dout,
    input wire [7:0] din,
    input wire pin,
    output wire gen_odd,
    output wire err
);
    assign gen_odd = ~(^dout);
    assign err = ~(^{din, pin});
endmodule
""",
    top="top_module",
    directed=(
        {"dout": 0x00, "din": 0x00, "pin": 1},
        {"dout": 0x01, "din": 0x01, "pin": 0},
        {"dout": 0xFF, "din": 0xFF, "pin": 1},
    ),
    n_random=24,
)
