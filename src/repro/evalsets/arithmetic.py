"""Arithmetic datapath problems (adders, saturating math, CLZ, ...)."""

from repro.evalsets.problem import Problem, register_problem


def _p(**kwargs) -> Problem:
    return register_problem(Problem(**kwargs))


_p(
    id="ar_adder8_cout",
    title="8-bit adder with carry out",
    category="arithmetic",
    difficulty=0.1,
    kind="comb",
    spec=(
        "Add two 8-bit unsigned numbers and a carry-in; produce an 8-bit "
        "sum and a carry-out: {cout, sum} = a + b + cin."
    ),
    golden="""
module top_module (
    input wire [7:0] a,
    input wire [7:0] b,
    input wire cin,
    output wire [7:0] sum,
    output wire cout
);
    assign {cout, sum} = a + b + cin;
endmodule
""",
    top="top_module",
    directed=(
        {"a": 0, "b": 0, "cin": 0},
        {"a": 255, "b": 1, "cin": 0},
        {"a": 255, "b": 255, "cin": 1},
        {"a": 100, "b": 27, "cin": 1},
    ),
    n_random=20,
)

_p(
    id="ar_addsub8",
    title="8-bit adder-subtractor with overflow",
    category="arithmetic",
    difficulty=0.5,
    kind="comb",
    spec=(
        "Implement a signed 8-bit adder-subtractor. When sub is 0, "
        "result = a + b; when sub is 1, result = a - b. Also output ovf, "
        "the two's-complement overflow flag: high when the two operands "
        "(after inverting b for subtraction) have the same sign but the "
        "result's sign differs."
    ),
    golden="""
module top_module (
    input wire [7:0] a,
    input wire [7:0] b,
    input wire sub,
    output wire [7:0] result,
    output wire ovf
);
    wire [7:0] operand;
    assign operand = sub ? ~b : b;
    assign result = a + operand + {7'b0, sub};
    assign ovf = (a[7] == operand[7]) && (result[7] != a[7]);
endmodule
""",
    top="top_module",
    directed=(
        {"a": 100, "b": 100, "sub": 0},
        {"a": 0x80, "b": 1, "sub": 1},
        {"a": 0x7F, "b": 1, "sub": 0},
        {"a": 10, "b": 3, "sub": 1},
    ),
    n_random=24,
)

_p(
    id="ar_sat_add8",
    title="Saturating signed adder",
    category="arithmetic",
    difficulty=0.65,
    kind="comb",
    spec=(
        "Add two signed 8-bit values with saturation: if the true sum "
        "exceeds 127, output 127; if it is below -128, output -128; "
        "otherwise output the sum."
    ),
    golden="""
module top_module (
    input wire [7:0] a,
    input wire [7:0] b,
    output reg [7:0] sum
);
    wire [8:0] wide;
    assign wide = {a[7], a} + {b[7], b};
    always @(*) begin
        if (wide[8] != wide[7])
            sum = wide[8] ? 8'h80 : 8'h7F;
        else
            sum = wide[7:0];
    end
endmodule
""",
    top="top_module",
    directed=(
        {"a": 0x7F, "b": 0x01},
        {"a": 0x80, "b": 0xFF},
        {"a": 0x40, "b": 0x40},
        {"a": 0xC0, "b": 0xC0},
        {"a": 5, "b": 3},
    ),
    n_random=24,
)

_p(
    id="ar_mult4",
    title="4x4 combinational multiplier",
    category="arithmetic",
    difficulty=0.25,
    kind="comb",
    spec="Multiply two 4-bit unsigned inputs; produce the 8-bit product.",
    golden="""
module top_module (
    input wire [3:0] a,
    input wire [3:0] b,
    output wire [7:0] product
);
    assign product = a * b;
endmodule
""",
    top="top_module",
    directed=({"a": 0, "b": 9}, {"a": 15, "b": 15}, {"a": 7, "b": 8}),
    n_random=20,
)

_p(
    id="ar_abs_diff8",
    title="Absolute difference",
    category="arithmetic",
    difficulty=0.3,
    kind="comb",
    spec=(
        "Compute the absolute difference of two 8-bit unsigned inputs: "
        "out = |a - b|."
    ),
    golden="""
module top_module (
    input wire [7:0] a,
    input wire [7:0] b,
    output wire [7:0] diff
);
    assign diff = (a >= b) ? (a - b) : (b - a);
endmodule
""",
    top="top_module",
    directed=({"a": 10, "b": 3}, {"a": 3, "b": 10}, {"a": 200, "b": 200}),
    n_random=20,
)

_p(
    id="ar_clz8",
    title="Count leading zeros",
    category="arithmetic",
    difficulty=0.55,
    kind="comb",
    spec=(
        "Count the number of leading zero bits of an 8-bit input, "
        "scanning from bit 7 down. An all-zero input yields 8. Output a "
        "4-bit count."
    ),
    golden="""
module top_module (
    input wire [7:0] in,
    output reg [3:0] count
);
    integer i;
    reg done;
    always @(*) begin
        count = 4'd0;
        done = 1'b0;
        for (i = 7; i >= 0; i = i - 1) begin
            if (!done) begin
                if (in[i])
                    done = 1'b1;
                else
                    count = count + 4'd1;
            end
        end
    end
endmodule
""",
    top="top_module",
    directed=({"in": 0}, {"in": 1}, {"in": 0x80}, {"in": 0x10}),
    n_random=20,
)

_p(
    id="ar_mod_inc",
    title="Modulo-10 incrementer",
    category="arithmetic",
    difficulty=0.22,
    kind="comb",
    spec=(
        "Given a 4-bit value in the range 0-9, output value + 1 modulo "
        "10 (i.e. 9 wraps to 0). Inputs outside 0-9 produce 0."
    ),
    golden="""
module top_module (
    input wire [3:0] in,
    output reg [3:0] out
);
    always @(*) begin
        if (in >= 4'd9)
            out = 4'd0;
        else
            out = in + 4'd1;
    end
endmodule
""",
    top="top_module",
    directed=tuple({"in": v} for v in range(12)),
    n_random=8,
)
