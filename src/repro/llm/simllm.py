"""``SimLLM``: a behavioural model of a code LLM, behind the standard
:class:`~repro.llm.interface.LLMClient` interface.

SimLLM answers the agents' *actual prompt text*.  It recognises the
task from natural phrasing, locates the benchmark problem by matching
the specification embedded in the prompt, and produces:

- RTL candidates: the golden design with a sampled set of injected
  faults (count ~ Poisson with difficulty/capability/temperature-driven
  mean, log-normal dispersion at temperature -- see
  :mod:`repro.llm.profiles`), possibly carrying a syntax-level flaw;
- testbenches: derived from real golden simulation, with a fraction of
  expectations corrupted for "misunderstood spec" runs;
- syntax fixes: the same candidate re-rendered without its syntax flaw
  (succeeding per ``syntax_fix_rate``);
- debug trials: faults removed with probability conditioned on how well
  the feedback *exposes* them -- a fault is exposed when the mismatching
  output named in the feedback lies in the fault's cone of influence
  (computed from the real dependency graph).  Checkpoint feedback fixes
  exposed faults at ``fix_exposed``; aggregate log-only feedback only
  reaches ``fix_named``; unexposed faults sit at ``fix_blind``.
- testbench verdicts for the judge agent.

Determinism: output depends only on (model profile, sampling params,
prompt text, sample index).  At temperature 0 the run seed is ignored,
so T=0 is reproducible across runs exactly like a real T=0 API call.
"""

from __future__ import annotations

import re
import zlib

import numpy as np

from repro.evalsets.problem import (
    Problem,
    all_problems,
    derive_testbench,
    input_steps,
)
from repro.hdl import ast_nodes as ast
from repro.hdl.deps import outputs_in_cone
from repro.hdl.parser import parse_module
from repro.hdl.unparse import unparse_module
from repro.hdl.values import LogicVec
from repro.llm.genome import CandidateGenome, GenomeRegistry, TestbenchGenome
from repro.llm.interface import ChatMessage, SamplingParams
from repro.llm.mutation import (
    FaultInstance,
    MutationSite,
    apply_faults,
    collect_sites,
    corrupt_syntax,
    sample_faults,
)
from repro.llm.profiles import ModelProfile, get_profile
from repro.tb.stimulus import Testbench, render_testbench

_CODE_FENCE = re.compile(r"```(?:verilog|systemverilog)?\n(.*?)```", re.DOTALL)
_TB_FENCE = re.compile(r"```testbench\n(.*?)```", re.DOTALL)

# Misconceptions are traits of a (model, problem) pair, not of one client
# instance; shared so every agent talking to the same model sees them.
_MISCONCEPTIONS: dict[tuple[str, str], tuple] = {}

# Golden-module parses and cone-of-influence sets depend only on the
# problem registry; shared across instances (apply_faults is pure, so
# handing the same AST to every client is safe).  Values are
# deterministic, so racing writers at worst duplicate work.
_PARSED_GOLDENS: dict[str, tuple[ast.Module, list[MutationSite]]] = {}
_CONE_CACHE: dict[tuple[str, str], frozenset[str]] = {}


def extract_code_block(text: str) -> str | None:
    """Last fenced Verilog block in a message, if any."""
    matches = _CODE_FENCE.findall(text)
    for match in reversed(matches):
        if "TESTBENCH" not in match:
            return match.strip() + "\n"
    return None


def extract_tb_block(text: str) -> str | None:
    """Last fenced testbench block in a message, if any."""
    matches = _TB_FENCE.findall(text)
    if matches:
        return matches[-1].strip() + "\n"
    return None


def _normalise(text: str) -> str:
    return " ".join(text.split())


class SimLLM:
    """Simulated LLM provider (see module docstring)."""

    def __init__(
        self,
        model: str = "claude-3.5-sonnet",
        profile: ModelProfile | None = None,
        registry: GenomeRegistry | None = None,
    ):
        self.profile = profile if profile is not None else get_profile(model)
        self.registry = registry if registry is not None else GenomeRegistry()
        # Parsed goldens and influence cones are pure functions of the
        # problem registry, shared across client instances (a fresh
        # SimLLM per evaluation run must not mean a fresh parse).
        self._module_cache = _PARSED_GOLDENS
        self._cone_cache = _CONE_CACHE
        self._spec_index: list[tuple[str, Problem]] | None = None
        self.calls = 0  # for cost accounting in transcripts

    @property
    def model_name(self) -> str:
        return self.profile.name

    # ------------------------------------------------------------------
    # LLMClient interface
    # ------------------------------------------------------------------

    def complete(self, messages: list[ChatMessage], params: SamplingParams) -> str:
        return self.sample(messages, params)[0]

    def sample(
        self, messages: list[ChatMessage], params: SamplingParams
    ) -> list[str]:
        self.calls += 1
        text = "\n".join(m.content for m in messages)
        last_user = next(
            (m.content for m in reversed(messages) if m.role == "user"), text
        )
        task = self._classify(last_user)
        problem = self._find_problem(text)
        outputs = []
        for index in range(params.n):
            rng = self._rng(params, text, index)
            outputs.append(self._dispatch(task, problem, text, params, rng))
        return outputs

    # ------------------------------------------------------------------
    # Request understanding
    # ------------------------------------------------------------------

    @staticmethod
    def _classify(last_user: str) -> str:
        lowered = last_user.lower()
        if "fix the syntax" in lowered or "fails to compile" in lowered:
            return "fix_syntax"
        if "review the testbench" in lowered:
            return "judge_tb"
        if "write a testbench" in lowered or "optimized testbench" in lowered:
            return "gen_tb"
        if (
            "fails functional checks" in lowered
            or "corrected version" in lowered
            or "state checkpoint log" in lowered
        ):
            return "debug"
        return "gen_rtl"

    def _find_problem(self, text: str) -> Problem | None:
        if self._spec_index is None:
            self._spec_index = sorted(
                ((_normalise(p.spec), p) for p in all_problems()),
                key=lambda pair: -len(pair[0]),
            )
        hay = _normalise(text)
        for spec, problem in self._spec_index:
            if spec in hay:
                return problem
        return None

    def _rng(
        self, params: SamplingParams, salt_text: str, index: int
    ) -> np.random.Generator:
        """Seed a generator for one completion.

        The salt is the *entire conversation* (a real LLM conditions on
        all of it).  At T=0 that is the only entropy source, so identical
        conversations reproduce identical outputs -- including ``n > 1``
        requests returning ``n`` copies, like a real T=0 API.  At T>0
        each completion draws fresh entropy (run seed, sample index,
        and a per-client call counter), so retrying the same prompt
        yields a different sample, as real sampling does.
        """
        if params.temperature > 0:
            entropy = f"{params.seed}|{index}|{self.calls}"
        else:
            entropy = "deterministic"
        key = (
            f"{self.profile.name}|{params.temperature:.3f}|{params.top_p:.3f}"
            f"|{entropy}|{_normalise(salt_text)}"
        )
        return np.random.default_rng(zlib.crc32(key.encode()) & 0x7FFFFFFF)

    def _golden(self, problem: Problem) -> tuple[ast.Module, list[MutationSite]]:
        cached = self._module_cache.get(problem.id)
        if cached is None:
            module = parse_module(problem.golden, problem.top)
            cached = (module, collect_sites(module))
            self._module_cache[problem.id] = cached
        return cached

    def _cone_outputs(self, problem: Problem, signal: str) -> frozenset[str]:
        key = (problem.id, signal)
        if key not in self._cone_cache:
            self._cone_cache[key] = outputs_in_cone(problem.design(), signal)
        return self._cone_cache[key]

    # ------------------------------------------------------------------
    # Task handlers
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        task: str,
        problem: Problem | None,
        text: str,
        params: SamplingParams,
        rng: np.random.Generator,
    ) -> str:
        if problem is None:
            return (
                "I could not match this request to a known specification; "
                "please include the full problem description."
            )
        if task == "gen_rtl":
            return self._generate_rtl(problem, params, rng)
        if task == "gen_tb":
            return self._generate_tb(problem, params, rng)
        if task == "fix_syntax":
            return self._fix_syntax(problem, text, params, rng)
        if task == "debug":
            return self._debug(problem, text, params, rng)
        if task == "judge_tb":
            return self._judge_tb(problem, text, rng)
        raise AssertionError(f"unknown task {task}")

    # -- RTL generation ------------------------------------------------

    def _misconception(self, problem: Problem) -> tuple[FaultInstance, ...]:
        """Persistent per-(model, problem) spec misreading (cached).

        Seeded by model and problem only, so it recurs in every sample at
        every temperature -- the way a model that misreads a spec keeps
        producing the same wrong behaviour.  The sampled fault set is
        validated to actually diverge from the golden behaviour (a
        misconception that changes nothing observable is no
        misconception at all).
        """
        cache_key = (self.profile.name, problem.id)
        if cache_key not in _MISCONCEPTIONS:
            key = f"misconception|{self.profile.name}|{problem.id}"
            rng = np.random.default_rng(zlib.crc32(key.encode()) & 0x7FFFFFFF)
            faults: tuple[FaultInstance, ...] = ()
            if rng.random() < self.profile.misconception_p(problem.difficulty):
                faults = self._harmful_faults(problem, rng)
            _MISCONCEPTIONS[cache_key] = faults
        return _MISCONCEPTIONS[cache_key]

    def _harmful_faults(
        self, problem: Problem, rng: np.random.Generator
    ) -> tuple[FaultInstance, ...]:
        """Sample a fault set that observably breaks the golden design."""
        from repro.evalsets.problem import golden_testbench
        from repro.tb.runner import run_testbench

        module, sites = self._golden(problem)
        tb = golden_testbench(problem)
        for _attempt in range(8):
            count = 1 + int(rng.random() < 0.3)
            faults = sample_faults(module, count, rng, sites)
            if not faults:
                continue
            source = unparse_module(apply_faults(module, faults))
            report = run_testbench(source, tb, problem.top)
            if report.error is None and not report.passed:
                return faults
        return ()

    @staticmethod
    def _merge_faults(
        persistent: tuple[FaultInstance, ...],
        incidental: tuple[FaultInstance, ...],
    ) -> tuple[FaultInstance, ...]:
        """Union fault sets, dropping incidental faults whose paths clash."""
        merged = list(persistent)
        for fault in incidental:
            clash = False
            for kept in merged:
                shorter, longer = sorted((fault.path, kept.path), key=len)
                if longer[: len(shorter)] == shorter:
                    clash = True
                    break
            if not clash:
                merged.append(fault)
        return tuple(merged)

    def _sample_genome(
        self, problem: Problem, params: SamplingParams, rng: np.random.Generator
    ) -> CandidateGenome:
        module, sites = self._golden(problem)
        lam = self.profile.lam(problem.difficulty, params.temperature)
        sigma = self.profile.dispersion(params.temperature)
        if sigma > 0:
            lam *= float(rng.lognormal(mean=-(sigma**2) / 2.0, sigma=sigma))
        count = int(rng.poisson(lam))
        persistent = self._misconception(problem)
        if persistent and params.temperature > 0:
            # Temperature lets individual samples escape the modal
            # misreading -- the mechanism that makes high-temperature
            # sampling worth its noise (Sec. III-B).
            escape = self.profile.misconception_escape * params.temperature
            if rng.random() < escape:
                persistent = ()
        faults = self._merge_faults(
            persistent, sample_faults(module, count, rng, sites)
        )
        syntax_error = None
        p_syntax = self.profile.syntax_rate * (1.0 + 1.5 * params.temperature)
        if rng.random() < p_syntax:
            syntax_error = "pending"
        return CandidateGenome(problem.id, faults, syntax_error)

    def _render_candidate(
        self, problem: Problem, genome: CandidateGenome, rng: np.random.Generator
    ) -> str:
        module, _ = self._golden(problem)
        mutated = apply_faults(module, genome.faults)
        source = unparse_module(mutated)
        if genome.syntax_error is not None:
            source, description = corrupt_syntax(source, rng)
            genome = CandidateGenome(genome.problem_id, genome.faults, description)
        self.registry.remember_code(source, genome)
        return source

    def _generate_rtl(
        self, problem: Problem, params: SamplingParams, rng: np.random.Generator
    ) -> str:
        if params.temperature == 0:
            # A T=0 model's (mis)understanding of a spec is a stable trait:
            # cosmetic prompt changes do not grant an independent redraw.
            key = f"modal|{self.profile.name}|{problem.id}"
            rng = np.random.default_rng(zlib.crc32(key.encode()) & 0x7FFFFFFF)
        genome = self._sample_genome(problem, params, rng)
        source = self._render_candidate(problem, genome, rng)
        return (
            f"Here is a synthesizable implementation of {problem.top}:\n"
            f"```verilog\n{source}```\n"
        )

    # -- Testbench generation -------------------------------------------

    def _generate_tb(
        self, problem: Problem, params: SamplingParams, rng: np.random.Generator
    ) -> str:
        seed = int(rng.integers(1 << 30))
        steps = input_steps(problem, seed=seed)
        tb = derive_testbench(
            problem.golden,
            problem.top,
            problem.kind,
            problem.clock,
            problem.data_inputs,
            problem.outputs,
            steps,
            name=f"tb_{problem.id}",
        )
        corrupted: list[tuple[int, str]] = []
        p_bad = min(
            0.9,
            (0.05 + 0.40 * problem.difficulty)
            * self.profile.pollution_tb
            * (1.0 + 0.3 * params.temperature),
        )
        if rng.random() < p_bad:
            tb, corrupted = self._corrupt_tb(tb, rng)
        text = render_testbench(tb)
        self.registry.remember_tb(text, TestbenchGenome(problem.id, tuple(corrupted)))
        return (
            "Here is an optimized testbench with per-edge state checkpoints:\n"
            f"```testbench\n{text}```\n"
        )

    def _corrupt_tb(
        self, tb: Testbench, rng: np.random.Generator
    ) -> tuple[Testbench, list[tuple[int, str]]]:
        """Corrupt a handful of expected values (a misread of the spec)."""
        slots = [
            (i, name)
            for i, step in enumerate(tb.steps)
            for name in step.checks
        ]
        if not slots:
            return tb, []
        frac = float(rng.uniform(0.04, 0.15))
        count = max(1, int(len(slots) * frac))
        picks = rng.choice(len(slots), size=min(count, len(slots)), replace=False)
        chosen = {slots[int(i)] for i in picks}
        new_steps = []
        corrupted = []
        for i, step in enumerate(tb.steps):
            checks = dict(step.checks)
            for name in list(checks):
                if (i, name) in chosen:
                    old = checks[name]
                    flip = 1 << int(rng.integers(old.width))
                    checks[name] = LogicVec(
                        old.width, old.val ^ flip, old.xmask, old.signed
                    )
                    corrupted.append((i, name))
            new_steps.append(step.__class__(inputs=step.inputs, checks=checks))
        return tb.with_steps(tuple(new_steps)), corrupted

    # -- Syntax fixing ----------------------------------------------------

    def _fix_syntax(
        self,
        problem: Problem,
        text: str,
        params: SamplingParams,
        rng: np.random.Generator,
    ) -> str:
        code = extract_code_block(text)
        genome = self.registry.lookup_code(code) if code else None
        if genome is None:
            # Unknown code: start over from the spec.
            return self._generate_rtl(problem, params, rng)
        if rng.random() < self.profile.syntax_fix_rate:
            fixed = genome.without_syntax_error()
        else:
            fixed = genome  # still carries a (new) syntax flaw
        source = self._render_candidate(problem, fixed, rng)
        return f"Corrected the compile errors:\n```verilog\n{source}```\n"

    # -- Debugging --------------------------------------------------------

    @staticmethod
    def _feedback_mode(text: str) -> str:
        if "State checkpoint log" in text:
            return "checkpoint"
        if "has" in text and "mismatch" in text:
            return "log"
        return "none"

    @staticmethod
    def _mismatch_signals(text: str) -> set[str]:
        signals = set(re.findall(r"Got (\w+)=", text))
        signals.update(re.findall(r"Output '(\w+)' has \d+ mismatch", text))
        return signals

    def _debug(
        self,
        problem: Problem,
        text: str,
        params: SamplingParams,
        rng: np.random.Generator,
    ) -> str:
        code = extract_code_block(text)
        genome = self.registry.lookup_code(code) if code else None
        if genome is None:
            return self._generate_rtl(problem, params, rng)
        mode = self._feedback_mode(text)
        named = self._mismatch_signals(text)
        misconception_keys = {f.key() for f in self._misconception(problem)}
        kept: list[FaultInstance] = []
        fixed_descriptions: list[str] = []
        for fault in genome.faults:
            exposed = any(
                named & self._cone_outputs(problem, signal)
                for signal in fault.affected
            )
            if mode == "checkpoint" and exposed:
                fault_mode, p_fixable = "checkpoint", self.profile.fix_exposed
            elif mode == "log" and exposed:
                fault_mode, p_fixable = "log", self.profile.fix_named
            else:
                fault_mode, p_fixable = "blind", self.profile.fix_blind
            p_fixable *= self.profile.pollution_fix * self.profile.fix_scale()
            if fault.key() in misconception_keys:
                # The model believes this behaviour is what the spec asks
                # for; feedback rarely dislodges it.
                p_fixable *= self.profile.misconception_resist
            if self._fixable(problem, fault, fault_mode, p_fixable) and (
                rng.random() < self.profile.fix_round
            ):
                fixed_descriptions.append(fault.description)
            else:
                kept.append(fault)
        p_new = self.profile.new_fault_rate * (1.0 + params.temperature)
        p_new *= 2.0 - self.profile.pollution_fix  # pollution makes botches likelier
        if rng.random() < p_new:
            module, sites = self._golden(problem)
            taken = {f.path for f in kept}
            extra = [
                f
                for f in sample_faults(module, 1, rng, sites)
                if f.path not in taken
            ]
            kept.extend(extra)
        new_genome = CandidateGenome(problem.id, tuple(kept), None)
        source = self._render_candidate(problem, new_genome, rng)
        if fixed_descriptions:
            analysis = "Identified and fixed: " + "; ".join(fixed_descriptions)
        else:
            analysis = "Revised the implementation based on the reported mismatches."
        return f"{analysis}\n```verilog\n{source}```\n"

    def inject_candidate(
        self, problem: Problem, faults: tuple[FaultInstance, ...]
    ) -> str:
        """Register a hand-picked faulty candidate as if this model wrote it.

        Used by controlled experiments (the Fig. 3 case study) and tests
        to study debugging behaviour on a *known* bug.
        """
        genome = CandidateGenome(problem.id, faults, None)
        module, _ = self._golden(problem)
        source = unparse_module(apply_faults(module, faults))
        self.registry.remember_code(source, genome)
        return source

    def _fixable(
        self, problem: Problem, fault: FaultInstance, mode: str, p: float
    ) -> bool:
        """Latent per-(model, problem, fault, feedback-mode) fixability.

        Drawn once and cached by seed: an agent that cannot diagnose a
        bug from a given quality of feedback will not suddenly diagnose
        it on the next identical attempt (correlated failures, the
        plateau in Fig. 4b).
        """
        key = (
            f"fixable|{self.profile.name}|{problem.id}|{fault.op}"
            f"|{fault.path}|{mode}"
        )
        latent = np.random.default_rng(zlib.crc32(key.encode()) & 0x7FFFFFFF)
        return bool(latent.random() < p)

    # -- Testbench review ---------------------------------------------------

    def _judge_tb(
        self, problem: Problem, text: str, rng: np.random.Generator
    ) -> str:
        tb_text = extract_tb_block(text)
        genome = self.registry.lookup_tb(tb_text) if tb_text else None
        if genome is not None and not genome.is_clean:
            if rng.random() < self.profile.judge_detect_rate:
                return (
                    "VERDICT: incorrect - some expected values contradict the "
                    "specification; the testbench should be regenerated."
                )
            return "VERDICT: correct - the expectations follow the specification."
        if rng.random() < self.profile.judge_false_alarm:
            return "VERDICT: incorrect - the stimulus coverage looks insufficient."
        return "VERDICT: correct - the expectations follow the specification."
