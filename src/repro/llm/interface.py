"""LLM-agnostic client interface (the LlamaIndex role in the paper).

Agents depend only on :class:`LLMClient`; providers register themselves
under a name so experiment configs can say ``model="claude-3.5-sonnet"``
without caring which backend implements it.  The shipped backend is
:class:`~repro.llm.simllm.SimLLM`; a thin adapter over a real HTTP API
can be registered the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol


@dataclass(frozen=True)
class ChatMessage:
    """One chat turn; roles follow the usual system/user/assistant set."""

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in ("system", "user", "assistant"):
            raise ValueError(f"bad chat role {self.role!r}")


@dataclass(frozen=True)
class SamplingParams:
    """Decoding controls (Sec. II-A of the paper).

    ``temperature``/``top_p`` follow the usual semantics; ``n`` is the
    number of completions requested in one call; ``seed`` makes a
    sampling run reproducible (as real APIs offer).
    """

    temperature: float = 0.0
    top_p: float = 0.01
    n: int = 1
    seed: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.temperature <= 2.0:
            raise ValueError("temperature must be in [0, 2]")
        if not 0.0 < self.top_p <= 1.0:
            raise ValueError("top_p must be in (0, 1]")
        if self.n < 1:
            raise ValueError("n must be >= 1")


# The paper's two evaluation settings (Sec. IV-A).
LOW_TEMPERATURE = SamplingParams(temperature=0.0, top_p=0.01, n=1)
HIGH_TEMPERATURE = SamplingParams(temperature=0.85, top_p=0.95, n=20)


class LLMClient(Protocol):
    """What an agent needs from a language model."""

    @property
    def model_name(self) -> str: ...

    def complete(
        self, messages: list[ChatMessage], params: SamplingParams
    ) -> str:
        """One completion for a conversation."""
        ...

    def sample(
        self, messages: list[ChatMessage], params: SamplingParams
    ) -> list[str]:
        """``params.n`` independent completions for one conversation."""
        ...


_FACTORIES: dict[str, Callable[..., LLMClient]] = {}


def register_llm(name: str, factory: Callable[..., LLMClient]) -> None:
    """Register a provider factory under ``name``."""
    _FACTORIES[name] = factory


def create_llm(name: str, **kwargs) -> LLMClient:
    """Instantiate a registered provider.

    Unknown names fall back to the simulated provider keyed by model
    profile, so ``create_llm("claude-3.5-sonnet")`` works out of the box.
    """
    if name in _FACTORIES:
        return _FACTORIES[name](**kwargs)
    from repro.llm.simllm import SimLLM

    return SimLLM(model=name, **kwargs)


@dataclass
class Conversation:
    """A private, append-only message history (one per agent)."""

    system_prompt: str
    messages: list[ChatMessage] = field(default_factory=list)

    def add_user(self, content: str) -> None:
        self.messages.append(ChatMessage("user", content))

    def add_assistant(self, content: str) -> None:
        self.messages.append(ChatMessage("assistant", content))

    def as_list(self) -> list[ChatMessage]:
        return [ChatMessage("system", self.system_prompt), *self.messages]

    @property
    def turns(self) -> int:
        return len(self.messages)

    def transcript_chars(self) -> int:
        """Total characters carried in context (context-pollution metric)."""
        return len(self.system_prompt) + sum(len(m.content) for m in self.messages)
