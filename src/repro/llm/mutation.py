"""AST-level fault injection: the generative core of the simulated LLM.

A "candidate the LLM wrote" is the golden module with a sampled set of
:class:`FaultInstance` applied -- operator swaps, missing boolean terms
(the Fig. 3 bug), corrupted constants, blocking/nonblocking mixups,
flipped reset polarities, swapped case arms, dropped statements, and so
on.  Every fault records which signals its enclosing statement writes,
so the repair model can reason about whether observed mismatches expose
it (via the real cone-of-influence of the design).

Faults are path-addressed and prefix-disjoint, so any subset of a
sampled fault set can be applied independently -- removal of a fault is
exactly "the debug agent fixed that bug".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hdl import ast_nodes as ast
from repro.hdl.values import LogicVec

# A path is a sequence of (field_name, index) steps from the module root;
# index is None for scalar fields.
PathStep = tuple[str, int | None]
Path = tuple[PathStep, ...]

_CHILD_FIELDS: dict[type, tuple[str, ...]] = {
    ast.Module: ("items",),
    ast.PortDecl: (),
    ast.NetDecl: ("init",),
    ast.ParamDecl: (),
    ast.ContinuousAssign: ("target", "value"),
    ast.AlwaysBlock: ("sensitivity", "body"),
    ast.InitialBlock: ("body",),
    ast.FunctionDecl: ("body",),
    ast.Instance: (),
    ast.Sensitivity: ("events",),
    ast.EdgeEvent: ("signal",),
    ast.Block: ("stmts",),
    ast.If: ("cond", "then_stmt", "else_stmt"),
    ast.Case: ("subject", "items"),
    ast.CaseItem: ("exprs", "body"),
    ast.For: ("init", "cond", "step", "body"),
    ast.BlockingAssign: ("target", "value"),
    ast.NonblockingAssign: ("target", "value"),
    ast.SysCall: (),
    ast.NullStmt: (),
    ast.Number: (),
    ast.Ident: (),
    ast.BitSelect: ("base", "index"),
    ast.PartSelect: ("base", "msb", "lsb"),
    ast.IndexedPartSelect: ("base", "start", "width"),
    ast.Unary: ("operand",),
    ast.Binary: ("left", "right"),
    ast.Ternary: ("cond", "then", "els"),
    ast.Concat: ("parts",),
    ast.Replicate: ("count", "inner"),
    ast.FuncCall: ("args",),
}


def iter_children(node: ast.Node):
    """Yield (path_step, child_node) for every AST child."""
    for field in _CHILD_FIELDS.get(type(node), ()):
        value = getattr(node, field)
        if value is None:
            continue
        if isinstance(value, tuple):
            for index, child in enumerate(value):
                if isinstance(child, ast.Node):
                    yield (field, index), child
        elif isinstance(value, ast.Node):
            yield (field, None), value


def node_at(root: ast.Node, path: Path) -> ast.Node:
    """Resolve a path to its node."""
    node = root
    for field, index in path:
        value = getattr(node, field)
        node = value[index] if index is not None else value
    return node


def replace_at(root: ast.Node, path: Path, replacement: ast.Node | None) -> ast.Node:
    """Rebuild ``root`` with the node at ``path`` replaced.

    ``replacement=None`` removes the node from its containing tuple
    (used by the dropped-statement fault).
    """
    if not path:
        assert replacement is not None
        return replacement
    (field, index), rest = path[0], path[1:]
    value = getattr(root, field)
    if index is not None:
        child = value[index]
        if rest:
            new_child = replace_at(child, rest, replacement)
            new_tuple = value[:index] + (new_child,) + value[index + 1 :]
        elif replacement is None:
            new_tuple = value[:index] + value[index + 1 :]
        else:
            new_tuple = value[:index] + (replacement,) + value[index + 1 :]
        return root.clone(**{field: new_tuple})
    child = value
    new_child = replace_at(child, rest, replacement) if rest else replacement
    return root.clone(**{field: new_child})


@dataclass(frozen=True)
class FaultInstance:
    """One injected bug, independently applicable/removable."""

    op: str
    path: Path
    description: str
    affected: frozenset[str]  # signals written by the enclosing statement(s)
    replacement: ast.Node | None  # None = delete (drop_stmt)

    def key(self) -> tuple:
        return (self.op, self.path)


def apply_faults(module: ast.Module, faults: tuple[FaultInstance, ...]) -> ast.Module:
    """Apply a prefix-disjoint fault set to a module (pure)."""
    # Apply deeper paths first so tuple-index removals don't shift
    # shallower siblings' paths (prefix-disjointness guarantees safety
    # for everything else, but two drops in one tuple need care).
    result = module
    for fault in sorted(faults, key=lambda f: (len(f.path), f.path), reverse=True):
        result = replace_at(result, fault.path, fault.replacement)
    return result


# ----------------------------------------------------------------------
# Site collection
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MutationSite:
    """A place where a fault operator can act."""

    path: Path
    node: ast.Node
    affected: frozenset[str]
    in_clocked: bool


def _lvalue_names(expr: ast.Expr) -> set[str]:
    if isinstance(expr, ast.Concat):
        out: set[str] = set()
        for part in expr.parts:
            out |= _lvalue_names(part)
        return out
    while isinstance(expr, (ast.BitSelect, ast.PartSelect, ast.IndexedPartSelect)):
        expr = expr.base
    return {expr.name} if isinstance(expr, ast.Ident) else set()


def _subtree_writes(node: ast.Node) -> frozenset[str]:
    names: set[str] = set()

    def walk(n: ast.Node) -> None:
        if isinstance(n, (ast.BlockingAssign, ast.NonblockingAssign)):
            names.update(_lvalue_names(n.target))
        for _, child in iter_children(n):
            walk(child)

    walk(node)
    return frozenset(names)


def collect_sites(module: ast.Module) -> list[MutationSite]:
    """Every mutable site in the module's behavioural code."""
    sites: list[MutationSite] = []

    def walk(
        node: ast.Node,
        path: Path,
        affected: frozenset[str],
        in_clocked: bool,
        in_lvalue: bool,
    ) -> None:
        if isinstance(node, (ast.BlockingAssign, ast.NonblockingAssign)):
            affected = frozenset(_lvalue_names(node.target))
        if isinstance(node, (ast.Block, ast.If, ast.Case, ast.AlwaysBlock)):
            affected = _subtree_writes(node)
        interesting = isinstance(
            node,
            (
                ast.Binary,
                ast.Unary,
                ast.Ternary,
                ast.Number,
                ast.Ident,
                ast.BitSelect,
                ast.If,
                ast.Case,
                ast.CaseItem,
                ast.Block,
                ast.NonblockingAssign,
                ast.BlockingAssign,
                ast.EdgeEvent,
            ),
        )
        if interesting and not in_lvalue and path:
            sites.append(
                MutationSite(
                    path=path,
                    node=node,
                    affected=affected,
                    in_clocked=in_clocked,
                )
            )
        for step, child in iter_children(node):
            child_in_lvalue = in_lvalue
            if (
                isinstance(
                    node, (ast.BlockingAssign, ast.NonblockingAssign, ast.ContinuousAssign)
                )
                and step[0] == "target"
            ):
                child_in_lvalue = True
            child_clocked = in_clocked
            if isinstance(node, ast.AlwaysBlock):
                child_clocked = node.sensitivity.is_clocked
            walk(child, path + (step,), affected, child_clocked, child_in_lvalue)

    for index, item in enumerate(module.items):
        if isinstance(item, (ast.ContinuousAssign, ast.AlwaysBlock)):
            base_affected = _subtree_writes(item)
            if isinstance(item, ast.ContinuousAssign):
                base_affected = frozenset(_lvalue_names(item.target))
            walk(
                item,
                (("items", index),),
                base_affected,
                isinstance(item, ast.AlwaysBlock) and item.sensitivity.is_clocked,
                False,
            )
    return sites


def declared_widths(module: ast.Module) -> dict[str, int]:
    """Literal declared widths of ports/nets (for same-width ident swaps)."""
    widths: dict[str, int] = {}

    def width_of(rng: ast.Range | None) -> int | None:
        if rng is None:
            return 1
        if isinstance(rng.msb, ast.Number) and isinstance(rng.lsb, ast.Number):
            try:
                return abs(rng.msb.value.to_uint() - rng.lsb.value.to_uint()) + 1
            except ValueError:
                return None
        return None

    for item in module.items:
        if isinstance(item, ast.PortDecl):
            w = width_of(item.range)
            if w is not None:
                for name in item.names:
                    widths[name] = w
        elif isinstance(item, ast.NetDecl) and item.array_range is None:
            w = 32 if item.net_kind == "integer" else width_of(item.range)
            if w is not None:
                for name in item.names:
                    widths[name] = w
    return widths


# ----------------------------------------------------------------------
# Fault operators
# ----------------------------------------------------------------------

_BINOP_SWAPS = {
    "&": ("|",),
    "|": ("&",),
    "^": ("|", "&"),
    "+": ("-",),
    "-": ("+",),
    "==": ("!=",),
    "!=": ("==",),
    "<": ("<=", ">"),
    ">": (">=", "<"),
    "<=": ("<",),
    ">=": (">",),
    "<<": (">>",),
    ">>": ("<<",),
    "&&": ("||",),
    "||": ("&&",),
}

_DROPPABLE = frozenset({"|", "&", "^", "+"})


def _op_binop_swap(site: MutationSite, rng) -> tuple[ast.Node, str] | None:
    node = site.node
    if not isinstance(node, ast.Binary):
        return None
    choices = _BINOP_SWAPS.get(node.op)
    if not choices:
        return None
    new_op = choices[int(rng.integers(len(choices)))]
    return node.clone(op=new_op), f"used operator '{new_op}' where '{node.op}' is needed"


def _op_drop_term(site: MutationSite, rng) -> tuple[ast.Node, str] | None:
    node = site.node
    if not isinstance(node, ast.Binary) or node.op not in _DROPPABLE:
        return None
    keep = node.left if rng.random() < 0.5 else node.right
    return keep, f"missing one '{node.op}' term in the expression"


def _op_negate_cond(site: MutationSite, rng) -> tuple[ast.Node, str] | None:
    node = site.node
    if not isinstance(node, ast.If):
        return None
    cond = node.cond
    if isinstance(cond, ast.Unary) and cond.op in ("!", "~"):
        new_cond: ast.Expr = cond.operand
    else:
        new_cond = ast.Unary(op="!", operand=cond, loc=cond.loc)
    return node.clone(cond=new_cond), "inverted an if condition (polarity bug)"


def _op_const_corrupt(site: MutationSite, rng) -> tuple[ast.Node, str] | None:
    node = site.node
    if not isinstance(node, ast.Number):
        return None
    value = node.value
    if value.has_x or value.width > 16:
        return None
    width = value.width
    mask = (1 << width) - 1
    old = value.val
    mode = rng.integers(3)
    if mode == 0:
        new = (old + 1) & mask
    elif mode == 1:
        new = (old - 1) & mask
    else:
        new = old ^ (1 << int(rng.integers(width)))
    if new == old:
        new = (old + 1) & mask
    if new == old:
        return None
    replacement = ast.Number(
        value=LogicVec(width, new, 0, value.signed), text=None, loc=node.loc
    )
    return replacement, f"wrong constant: {new} instead of {old}"


def _op_assign_swap(site: MutationSite, rng) -> tuple[ast.Node, str] | None:
    node = site.node
    if isinstance(node, ast.NonblockingAssign) and site.in_clocked:
        return (
            ast.BlockingAssign(target=node.target, value=node.value, loc=node.loc),
            "used blocking '=' where nonblocking '<=' is required",
        )
    return None


def _op_ternary_swap(site: MutationSite, rng) -> tuple[ast.Node, str] | None:
    node = site.node
    if not isinstance(node, ast.Ternary):
        return None
    return (
        node.clone(then=node.els, els=node.then),
        "swapped the two branches of a conditional operator",
    )


def _op_case_label(site: MutationSite, rng) -> tuple[ast.Node, str] | None:
    node = site.node
    if not isinstance(node, ast.CaseItem) or not node.exprs:
        return None
    index = int(rng.integers(len(node.exprs)))
    label = node.exprs[index]
    if not isinstance(label, ast.Number) or label.value.has_x:
        return None
    width = label.value.width
    mask = (1 << width) - 1
    new_val = (label.value.val + (1 if rng.random() < 0.5 else mask)) & mask
    if new_val == label.value.val:
        return None
    new_label = ast.Number(
        value=LogicVec(width, new_val, 0, label.value.signed), loc=label.loc
    )
    exprs = node.exprs[:index] + (new_label,) + node.exprs[index + 1 :]
    return (
        node.clone(exprs=exprs),
        f"case label {new_val} should be {label.value.val}",
    )


def _op_case_arm_swap(site: MutationSite, rng) -> tuple[ast.Node, str] | None:
    node = site.node
    if not isinstance(node, ast.Case):
        return None
    labelled = [i for i, item in enumerate(node.items) if item.exprs]
    if len(labelled) < 2:
        return None
    picks = rng.choice(len(labelled), size=2, replace=False)
    i, j = labelled[int(picks[0])], labelled[int(picks[1])]
    items = list(node.items)
    items[i], items[j] = (
        items[i].clone(body=items[j].body),
        items[j].clone(body=items[i].body),
    )
    return (
        node.clone(items=tuple(items)),
        "swapped the bodies of two case arms",
    )


def _op_index_shift(site: MutationSite, rng) -> tuple[ast.Node, str] | None:
    node = site.node
    if not isinstance(node, ast.BitSelect):
        return None
    if not isinstance(node.index, ast.Number) or node.index.value.has_x:
        return None
    old = node.index.value.val
    delta = 1 if (rng.random() < 0.5 or old == 0) else -1
    new = old + delta
    replacement = node.clone(
        index=ast.Number(
            value=LogicVec(max(node.index.value.width, new.bit_length() or 1), new),
            loc=node.index.loc,
        )
    )
    return replacement, f"off-by-one bit index: [{new}] instead of [{old}]"


def _op_wrong_edge(site: MutationSite, rng) -> tuple[ast.Node, str] | None:
    node = site.node
    if not isinstance(node, ast.EdgeEvent) or node.edge == "level":
        return None
    new_edge = "neg" if node.edge == "pos" else "pos"
    return (
        node.clone(edge=new_edge),
        f"sensitive to {new_edge}edge instead of {node.edge}edge",
    )


def _op_drop_stmt(site: MutationSite, rng) -> tuple[ast.Node | None, str] | None:
    node = site.node
    if not isinstance(node, ast.Block) or len(node.stmts) < 2:
        return None
    index = int(rng.integers(len(node.stmts)))
    victim = node.stmts[index]
    lost = ", ".join(sorted(_subtree_writes(victim))) or "nothing"
    stmts = node.stmts[:index] + node.stmts[index + 1 :]
    return node.clone(stmts=stmts), f"missing a statement (updates to: {lost})"


def _op_unary_drop(site: MutationSite, rng) -> tuple[ast.Node, str] | None:
    node = site.node
    if not isinstance(node, ast.Unary) or node.op not in ("~", "!"):
        return None
    return node.operand, f"missing '{node.op}' inversion"


_OPERATORS = (
    ("binop_swap", _op_binop_swap, 3.0),
    ("drop_term", _op_drop_term, 2.0),
    ("negate_cond", _op_negate_cond, 1.2),
    ("const_corrupt", _op_const_corrupt, 2.0),
    ("assign_swap", _op_assign_swap, 0.8),
    ("ternary_swap", _op_ternary_swap, 1.0),
    ("case_label", _op_case_label, 1.5),
    ("case_arm_swap", _op_case_arm_swap, 1.0),
    ("index_shift", _op_index_shift, 1.5),
    ("wrong_edge", _op_wrong_edge, 0.6),
    ("drop_stmt", _op_drop_stmt, 1.2),
    ("unary_drop", _op_unary_drop, 1.5),
)


def _ident_swap_site(
    site: MutationSite, rng, widths: dict[str, int]
) -> tuple[ast.Node, str] | None:
    node = site.node
    if not isinstance(node, ast.Ident):
        return None
    width = widths.get(node.name)
    if width is None:
        return None
    peers = sorted(n for n, w in widths.items() if w == width and n != node.name)
    if not peers:
        return None
    pick = peers[int(rng.integers(len(peers)))]
    return (
        ast.Ident(name=pick, loc=node.loc),
        f"read signal '{pick}' where '{node.name}' is needed",
    )


def _prefix_disjoint(path: Path, chosen: list[Path]) -> bool:
    for other in chosen:
        shorter, longer = sorted((path, other), key=len)
        if longer[: len(shorter)] == shorter:
            return False
    return True


def sample_faults(
    module: ast.Module,
    count: int,
    rng: np.random.Generator,
    sites: list[MutationSite] | None = None,
) -> tuple[FaultInstance, ...]:
    """Sample up to ``count`` independent faults for ``module``.

    Returns fewer when the module is too small to host that many
    prefix-disjoint mutations.
    """
    if count <= 0:
        return ()
    if sites is None:
        sites = collect_sites(module)
    if not sites:
        return ()
    widths = declared_widths(module)
    order = rng.permutation(len(sites))
    chosen_paths: list[Path] = []
    faults: list[FaultInstance] = []
    for site_index in order:
        if len(faults) >= count:
            break
        site = sites[int(site_index)]
        if not _prefix_disjoint(site.path, chosen_paths):
            continue
        candidates: list[tuple[str, object]] = [
            (name, op_fn) for name, op_fn, _weight in _OPERATORS
        ]
        candidates.append(("ident_swap", None))
        for attempt_index in rng.permutation(len(candidates))[:4]:
            name, op_fn = candidates[int(attempt_index)]
            if name == "ident_swap":
                result = _ident_swap_site(site, rng, widths)
            else:
                result = op_fn(site, rng)
            if result is None:
                continue
            replacement, description = result
            faults.append(
                FaultInstance(
                    op=name,
                    path=site.path,
                    description=description,
                    affected=site.affected,
                    replacement=replacement,
                )
            )
            chosen_paths.append(site.path)
            break
    return tuple(faults)


# ----------------------------------------------------------------------
# Syntax-level corruption (drives the s=5 syntax-fix loop)
# ----------------------------------------------------------------------


def corrupt_syntax(source: str, rng: np.random.Generator) -> tuple[str, str]:
    """Introduce one syntax-level flaw into rendered source."""
    modes = []
    if ";" in source:
        modes.append("semicolon")
    if "begin" in source:
        modes.append("begin")
    if "endmodule" in source:
        modes.append("endmodule")
    if ")" in source:
        modes.append("paren")
    if not modes:
        return source + "\n%", "stray token appended"
    mode = modes[int(rng.integers(len(modes)))]
    if mode == "semicolon":
        positions = [i for i, c in enumerate(source) if c == ";"]
        pos = positions[int(rng.integers(len(positions)))]
        return source[:pos] + source[pos + 1 :], "missing semicolon"
    if mode == "begin":
        pos = source.find("begin")
        return source[:pos] + "begn" + source[pos + 5 :], "misspelled 'begin'"
    if mode == "endmodule":
        return source.replace("endmodule", "endmodul", 1), "misspelled 'endmodule'"
    positions = [i for i, c in enumerate(source) if c == ")"]
    pos = positions[int(rng.integers(len(positions)))]
    return source[:pos] + source[pos + 1 :], "unbalanced parenthesis"
