"""Per-model capability profiles for the simulated LLM.

Calibration contract (see DESIGN.md): each profile's ``capability`` is
a free parameter fitted so that the model's *vanilla one-pass* pass rate
on our suites approximates its Table II row.  Everything downstream --
the benefit of sampling, checkpoints, and the multi-agent split -- must
emerge from pipeline mechanics, so those knobs are shared across
profiles, not tuned per system.

Generation model:

- expected injected-fault count for a problem of difficulty ``d``:
  ``lambda(d) = -ln(sigmoid(steep * (capability - d)))``, so the
  probability of a fault-free sample at T=0 is exactly
  ``sigmoid(steep * (capability - d))``;
- temperature scales the mean by ``1 + temp_lambda_boost * T`` and adds
  per-sample log-normal dispersion ``sigma = temp_sigma * T``; high
  temperature therefore produces both more garbage *and* more perfect
  samples, which is the order-statistics effect Sec. III-B exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ModelProfile:
    """Behavioural parameters of one simulated model."""

    name: str
    capability: float  # fitted to the model's vanilla pass rate
    steep: float = 3.2  # sigmoid steepness over (capability - difficulty)
    temp_lambda_boost: float = 0.45  # mean fault growth per unit temperature
    temp_sigma: float = 1.05  # log-normal dispersion per unit temperature
    syntax_rate: float = 0.03  # P(sample has a syntax-level flaw) at T=0
    syntax_fix_rate: float = 0.85  # P(one syntax-fix round succeeds)
    tb_check_error_rate: float = 0.035  # per-check corruption of TB expectations
    judge_detect_rate: float = 0.8  # P(judge flags a bad testbench)
    judge_false_alarm: float = 0.05  # P(judge flags a good testbench)
    # Debugging model.  Whether an agent can fix a given fault under a
    # given feedback quality is a *latent* trait (drawn once per
    # (model, problem, fault, feedback-mode)): an agent that misdiagnosed
    # a bug from weak feedback will keep misdiagnosing it, which is what
    # makes Fig. 4b plateau instead of converging to 1.0.
    fix_exposed: float = 0.88  # P(fixable | checkpoint window localises it)
    fix_named: float = 0.62  # P(fixable | only the signal is named)
    fix_blind: float = 0.15  # P(fixable | no useful feedback)
    fix_round: float = 0.75  # per-trial success once a fault is fixable
    new_fault_rate: float = 0.10  # P(debug trial introduces a fresh fault)
    # Persistent misconceptions: per-problem spec misreadings that recur
    # across samples and resist debugging -- the model cannot see its own
    # blind spot.  P(misconception) grows with difficulty:
    # scale * max(0, difficulty - floor) * (1.5 - capability).
    misconception_scale: float = 1.05
    misconception_floor: float = 0.35
    misconception_resist: float = 0.12  # fixability multiplier
    misconception_escape: float = 0.12  # per-sample escape per unit temperature
    # Context-pollution multipliers applied in single-agent mode (the
    # merged-history ablation of Table III).
    pollution_lambda: float = 1.0
    pollution_fix: float = 1.0
    pollution_tb: float = 1.0

    def lam(self, difficulty: float, temperature: float = 0.0) -> float:
        """Expected fault count for one sample."""
        z = self.steep * (self.capability - difficulty)
        p_clean = 1.0 / (1.0 + math.exp(-z))
        lam0 = -math.log(max(p_clean, 1e-9))
        lam0 *= self.pollution_lambda
        return lam0 * (1.0 + self.temp_lambda_boost * temperature)

    def dispersion(self, temperature: float) -> float:
        """Log-normal sigma of per-sample fault-count scaling."""
        return self.temp_sigma * temperature

    def fix_scale(self) -> float:
        """Debugging skill scales with model capability."""
        return 0.35 + 0.65 * self.capability

    def misconception_p(self, difficulty: float) -> float:
        """P(this model persistently misreads a problem of this difficulty)."""
        raw = (
            self.misconception_scale
            * max(0.0, difficulty - self.misconception_floor)
            * (1.5 - self.capability)
        )
        return min(raw, 0.6)

    def polluted(
        self,
        lambda_mult: float = 1.18,
        fix_mult: float = 0.90,
        tb_mult: float = 1.5,
    ) -> "ModelProfile":
        """The same model operating with a merged conversation history.

        Models the paper's Sec. II-A argument: one agent juggling
        synthesizable RTL, non-synthesizable testbench idioms, and long
        mixed context generates worse code and debugs less effectively.
        """
        return replace(
            self,
            name=f"{self.name}+merged-history",
            pollution_lambda=self.pollution_lambda * lambda_mult,
            pollution_fix=self.pollution_fix * fix_mult,
            pollution_tb=self.pollution_tb * tb_mult,
        )


# ----------------------------------------------------------------------
# Registry.  Capabilities fitted against Table II vanilla pass rates on
# our suites; agent systems in Table II are *pipelines* built from these
# same base models (see repro.baselines.registry).
# ----------------------------------------------------------------------

_PROFILES: dict[str, ModelProfile] = {}


def _register(profile: ModelProfile) -> ModelProfile:
    _PROFILES[profile.name] = profile
    return profile


CLAUDE_35_SONNET = _register(ModelProfile("claude-3.5-sonnet", capability=0.87))
GPT_4O = _register(ModelProfile("gpt-4o", capability=0.55))
GPT_4 = _register(ModelProfile("gpt-4", capability=0.42))
GPT_4_TURBO = _register(ModelProfile("gpt-4-turbo", capability=0.88))
CODEQWEN_7B = _register(ModelProfile("codeqwen-1.5-7b", capability=0.44))
DEEPSEEK_CODER_7B = _register(
    ModelProfile("deepseek-coder-7b-lora", capability=0.53)
)
ITERTL = _register(ModelProfile("itertl-ft", capability=0.33))
CODEV = _register(ModelProfile("codev-ft", capability=0.50))


def get_profile(name: str) -> ModelProfile:
    if name not in _PROFILES:
        raise KeyError(
            f"unknown model profile {name!r}; known: {', '.join(sorted(_PROFILES))}"
        )
    return _PROFILES[name]


def profile_names() -> list[str]:
    return sorted(_PROFILES)
