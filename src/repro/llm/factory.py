"""One shared factory for every solve path's LLM construction.

Before this module, the polluted-profile/SimLLM wiring was re-spelled
in four places (``core/engine.py``, ``baselines/vanilla.py``,
``baselines/single_agent.py``, ``baselines/two_agent.py``), each with
its own way of saying "this system's agent operates on a merged
conversation history, penalise it".  :func:`build_llm` is the single
spelling:

- plain systems get the registered provider for ``model`` (falling
  back to :class:`~repro.llm.simllm.SimLLM` exactly like
  :func:`~repro.llm.interface.create_llm`);
- merged-history systems (the Table III single-agent ablation, the
  AIVRIL-style coder) get a pollution-penalised profile, with optional
  per-system multipliers.

When the ambient :class:`~repro.llm.gateway.GatewaySettings` enable the
gateway (``--gateway`` / ``REPRO_GATEWAY``), whatever client this
factory would have produced is wrapped in a
:class:`~repro.llm.gateway.Gateway` instead -- retry/fallback chains,
rate limiting, accounting events, and cassette record/replay, with the
original client carried along as the ``sim`` backend so polluted
profiles keep their penalty.
"""

from __future__ import annotations

from repro.llm.interface import LLMClient, create_llm
from repro.llm.profiles import get_profile
from repro.llm.simllm import SimLLM


def _maybe_gateway(model: str, inner: LLMClient | None) -> LLMClient | None:
    """Wrap ``inner`` in a gateway when the ambient settings ask for one."""
    from repro.llm.gateway import Gateway, resolve_gateway_settings

    if isinstance(inner, Gateway):
        return inner  # caller-injected gateway: never double-wrap
    settings = resolve_gateway_settings()
    if not settings.enabled:
        return None
    return Gateway(model=model, settings=settings, inner=inner)


def build_llm(
    model: str,
    llm: LLMClient | None = None,
    merged_history: bool = False,
    pollution: tuple[float, float, float] | None = None,
) -> LLMClient:
    """Build the client one solve path runs on.

    ``llm`` short-circuits the inner-client choice (caller-injected
    client; still gateway-wrapped when the gateway is enabled);
    ``merged_history`` applies the default Sec. II-A pollution penalty;
    ``pollution`` overrides the (lambda, fix, tb) multipliers (implies
    merged history).
    """
    inner: LLMClient | None
    if llm is not None:
        inner = llm
    elif pollution is not None:
        lam, fix, tb = pollution
        profile = get_profile(model).polluted(
            lambda_mult=lam, fix_mult=fix, tb_mult=tb
        )
        inner = SimLLM(profile=profile)
    elif merged_history:
        inner = SimLLM(profile=get_profile(model).polluted())
    else:
        inner = None
    wrapped = _maybe_gateway(model, inner)
    if wrapped is not None:
        return wrapped
    return inner if inner is not None else create_llm(model)
