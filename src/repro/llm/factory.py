"""One shared factory for every solve path's LLM construction.

Before this module, the polluted-profile/SimLLM wiring was re-spelled
in four places (``core/engine.py``, ``baselines/vanilla.py``,
``baselines/single_agent.py``, ``baselines/two_agent.py``), each with
its own way of saying "this system's agent operates on a merged
conversation history, penalise it".  :func:`build_llm` is the single
spelling:

- plain systems get the registered provider for ``model`` (falling
  back to :class:`~repro.llm.simllm.SimLLM` exactly like
  :func:`~repro.llm.interface.create_llm`);
- merged-history systems (the Table III single-agent ablation, the
  AIVRIL-style coder) get a pollution-penalised profile, with optional
  per-system multipliers.
"""

from __future__ import annotations

from repro.llm.interface import LLMClient, create_llm
from repro.llm.profiles import get_profile
from repro.llm.simllm import SimLLM


def build_llm(
    model: str,
    llm: LLMClient | None = None,
    merged_history: bool = False,
    pollution: tuple[float, float, float] | None = None,
) -> LLMClient:
    """Build the client one solve path runs on.

    ``llm`` short-circuits everything (caller-injected client);
    ``merged_history`` applies the default Sec. II-A pollution penalty;
    ``pollution`` overrides the (lambda, fix, tb) multipliers (implies
    merged history).
    """
    if llm is not None:
        return llm
    if pollution is not None:
        lam, fix, tb = pollution
        profile = get_profile(model).polluted(
            lambda_mult=lam, fix_mult=fix, tb_mult=tb
        )
        return SimLLM(profile=profile)
    if merged_history:
        return SimLLM(profile=get_profile(model).polluted())
    return create_llm(model)
