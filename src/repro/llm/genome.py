"""Candidate genomes: the simulated LLM's internal account of its output.

A *genome* records what is wrong with a piece of generated text -- which
faults a candidate RTL module carries, or which expectations of a
testbench were corrupted.  The registry maps emitted text back to its
genome so that, when an agent sends code back for debugging, the
behavioural model knows what bugs are actually present (the analogue of
a real LLM re-reading its own code).

Genomes never leak to the agents: agents see only text, simulators see
only Verilog, and reports are computed from real simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.mutation import FaultInstance


@dataclass(frozen=True)
class CandidateGenome:
    """Fault content of one generated RTL candidate."""

    problem_id: str
    faults: tuple[FaultInstance, ...] = ()
    syntax_error: str | None = None  # description of the syntax-level flaw

    @property
    def is_clean(self) -> bool:
        return not self.faults and self.syntax_error is None

    def without_syntax_error(self) -> "CandidateGenome":
        return CandidateGenome(self.problem_id, self.faults, None)

    def with_faults(self, faults: tuple[FaultInstance, ...]) -> "CandidateGenome":
        return CandidateGenome(self.problem_id, faults, self.syntax_error)


@dataclass(frozen=True)
class TestbenchGenome:
    """Corruption content of one generated testbench.

    ``corrupted`` holds (step_index, output_name) pairs whose expected
    values were altered from the true golden behaviour.
    """

    problem_id: str
    corrupted: tuple[tuple[int, str], ...] = ()

    @property
    def is_clean(self) -> bool:
        return not self.corrupted


def _normalise(text: str) -> str:
    return " ".join(text.split())


@dataclass
class GenomeRegistry:
    """Maps emitted text (whitespace-normalised) back to genomes."""

    code: dict[str, CandidateGenome] = field(default_factory=dict)
    testbenches: dict[str, TestbenchGenome] = field(default_factory=dict)

    def remember_code(self, source: str, genome: CandidateGenome) -> None:
        self.code[_normalise(source)] = genome

    def lookup_code(self, source: str) -> CandidateGenome | None:
        return self.code.get(_normalise(source))

    def remember_tb(self, text: str, genome: TestbenchGenome) -> None:
        self.testbenches[_normalise(text)] = genome

    def lookup_tb(self, text: str) -> TestbenchGenome | None:
        return self.testbenches.get(_normalise(text))
