"""Recorded-replay cassettes on the tiered cache fabric.

A cassette entry is content-addressed by the *full request*: operation,
model, role, every message, and the sampling parameters -- plus an
ordinal so repeated identical requests (a high-temperature agent asked
the same thing twice) each keep their own completion.  ``record`` mode
writes entries after live calls; ``replay`` mode serves them with zero
network and raises :class:`CassetteMiss` on anything unrecorded, so a
replay run can never silently fall through to a provider.

The store is a :class:`~repro.runtime.cache.TieredCache`
(memory -> disk -> remote peers), which buys cassette sharing across
machines for free: a recording made on one host replays on another
through the existing ``CacheGet``/``CachePut`` peer fabric under the
``llm`` layer tag.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.llm.interface import ChatMessage, SamplingParams
from repro.runtime.cache import TieredCache, _digest


class CassetteMiss(KeyError):
    """Replay asked for a request the cassette never recorded."""


@dataclass(frozen=True)
class CassetteRecord:
    """One recorded gateway exchange: completions plus the usage that
    was observed live, so replayed accounting events are bit-identical
    to the recording run's."""

    completions: tuple[str, ...]
    backend: str
    prompt_tokens: int = 0
    completion_tokens: int = 0


class CassetteStore(TieredCache):
    """Cassette entries keyed by :func:`cassette_key`."""

    value_type = CassetteRecord
    layer = "llm"


def cassette_key(
    op: str,
    model: str,
    role: str,
    messages: list[ChatMessage],
    params: SamplingParams,
    ordinal: int,
) -> str:
    """Content hash of one gateway request.

    ``op`` separates ``complete`` from ``sample`` (same conversation,
    different return shape); the ordinal distinguishes the Nth repeat
    of an identical request, mirroring how a live stochastic backend
    would answer each repeat independently.
    """
    parts: list[str] = ["llm-cassette", op, model, role]
    for message in messages:
        parts.append(message.role)
        parts.append(message.content)
    parts.extend(
        (
            repr(params.temperature),
            repr(params.top_p),
            str(params.n),
            repr(params.seed),
            str(ordinal),
        )
    )
    return _digest(tuple(parts))


# Process-local store registry, mirroring the worker-side cache
# registries in :mod:`repro.runtime.workers`: every cell in a worker
# process that targets the same cassette directory shares one store
# (one memory tier, one set of peer connections).
_STORES: dict = {}
_STORES_LOCK = threading.Lock()


def cassette_store(
    directory: str | None, peers: tuple[str, ...] = ()
) -> CassetteStore:
    """The process-shared store for one (directory, peers) target."""
    key = (directory, tuple(peers))
    with _STORES_LOCK:
        store = _STORES.get(key)
        if store is None:
            store = _STORES[key] = CassetteStore(
                directory=directory, peers=peers
            )
        return store
