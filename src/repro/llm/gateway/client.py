"""The gateway client: retry, fallback, rate limiting, record/replay.

:class:`Gateway` implements :class:`~repro.llm.interface.LLMClient`, so
agents cannot tell it from a direct provider.  Around each call it adds
the operational layer a real multi-provider deployment needs:

- a fallback chain of :mod:`~repro.llm.gateway.backends`, each tried
  with bounded retries and exponential backoff before falling over;
- a shared token-bucket limiter metering outbound backend calls;
- per-call accounting (token usage, deterministic cost) emitted as
  :class:`~repro.core.events.GatewayCall` events into whichever run's
  stream is ambient, and aggregated process-wide in
  :data:`GATEWAY_STATS` for the service ``StatsReply``;
- cassette record/replay through
  :mod:`~repro.llm.gateway.cassette` -- ``record`` stores every live
  exchange, ``replay`` serves only from the store and raises
  :class:`CassetteMiss` otherwise.

Determinism: a gateway over the ``sim`` backend is bit-identical to the
bare :class:`~repro.llm.simllm.SimLLM` (the backend delegates without
touching the client's RNG state), and a ``replay`` run re-emits the
recording run's completions *and accounting events* exactly.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.core.events import GatewayCall, emit_ambient
from repro.llm.gateway.backends import (
    BackendError,
    BackendResult,
    GatewayBackend,
    TransientBackendError,
    build_backend,
)
from repro.llm.gateway.cassette import (
    CassetteMiss,
    CassetteRecord,
    CassetteStore,
    cassette_key,
    cassette_store,
)
from repro.llm.gateway.limiter import TokenBucket
from repro.llm.gateway.settings import GatewaySettings
from repro.llm.genome import GenomeRegistry
from repro.llm.interface import ChatMessage, LLMClient, SamplingParams
from repro.llm.simllm import SimLLM


class GatewayExhausted(RuntimeError):
    """Every backend in the chain failed transiently, retries included."""


# USD per 1k tokens (prompt, completion), longest-prefix matched on the
# model name.  The table exists so cost accounting is *deterministic* --
# record and replay compute the identical figure -- not to be current.
_PRICES: dict[str, tuple[float, float]] = {
    "gpt-4o-mini": (0.00015, 0.0006),
    "gpt-4o": (0.0025, 0.01),
    "claude-3.5-sonnet": (0.003, 0.015),
    "claude-3-haiku": (0.00025, 0.00125),
    "claude-3-opus": (0.015, 0.075),
}


def model_cost(model: str, prompt_tokens: int, completion_tokens: int) -> float:
    """Deterministic cost of one exchange (0.0 for unpriced models)."""
    for prefix in sorted(_PRICES, key=len, reverse=True):
        if model.startswith(prefix):
            prompt_price, completion_price = _PRICES[prefix]
            return (
                prompt_tokens * prompt_price
                + completion_tokens * completion_price
            ) / 1000.0
    return 0.0


class GatewayStats:
    """Process-wide gateway counters (thread-safe).

    Deliberately *not* part of the event stream: wall-clock retries and
    rate-limit waits differ between a record run and its replay, so
    they live here -- where the service ``stats`` report reads them --
    and the bit-identical per-call facts travel as events.
    """

    _FIELDS = (
        "calls",
        "completions",
        "retries",
        "fallbacks",
        "failures",
        "rate_limit_waits",
        "cassette_hits",
        "cassette_misses",
        "recorded",
        "replayed",
        "prompt_tokens",
        "completion_tokens",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self._FIELDS}
        self._cost = 0.0

    def add(self, cost: float = 0.0, **fields: int) -> None:
        with self._lock:
            for name, amount in fields.items():
                self._counts[name] += amount
            self._cost += cost

    def snapshot(self) -> dict:
        with self._lock:
            report = dict(self._counts)
            report["cost"] = self._cost
            return report

    def reset(self) -> None:
        with self._lock:
            for name in self._counts:
                self._counts[name] = 0
            self._cost = 0.0


GATEWAY_STATS = GatewayStats()


class Gateway:
    """Multi-backend LLM client (see module docstring).

    One instance serves one (model, role); :meth:`for_role` hands out
    per-role siblings when ``settings.stage_models`` routes roles to
    different models.  Siblings share the genome registry (the debug
    agent must find genomes the RTL agent minted), the rate limiter
    (one outbound budget), and the process-wide stats.
    """

    def __init__(
        self,
        model: str,
        settings: GatewaySettings,
        role: str = "",
        inner: LLMClient | None = None,
        registry: GenomeRegistry | None = None,
        limiter: TokenBucket | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.model = model
        self.settings = settings
        self.role = role
        self._sleep = sleep
        if registry is None:
            registry = getattr(inner, "registry", None) or GenomeRegistry()
        self.registry = registry
        sim_client = inner
        if sim_client is None and any(
            spec == "sim" or spec.startswith("flaky")
            for spec in settings.backends
        ):
            sim_client = SimLLM(model=model, registry=registry)
        self._sim_client = sim_client
        self._backends: list[GatewayBackend] = [
            build_backend(spec, sim_client) for spec in settings.backends
        ]
        self._limiter = (
            limiter
            if limiter is not None
            else TokenBucket(settings.rate, settings.burst)
        )
        # Repeat-count per request identity: the Nth identical request
        # gets its own cassette slot (see :func:`cassette_key`).
        self._ordinals: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # LLMClient interface
    # ------------------------------------------------------------------

    @property
    def model_name(self) -> str:
        # Defer to the sim client where one exists so transcripts show
        # the resolved profile name exactly as a bare SimLLM would.
        if self._sim_client is not None:
            return self._sim_client.model_name
        return self.model

    def complete(
        self, messages: list[ChatMessage], params: SamplingParams
    ) -> str:
        return self._request("complete", messages, params)[0]

    def sample(
        self, messages: list[ChatMessage], params: SamplingParams
    ) -> list[str]:
        return list(self._request("sample", messages, params))

    # ------------------------------------------------------------------
    # Per-role routing
    # ------------------------------------------------------------------

    def for_role(self, role: str) -> "Gateway":
        """The client a named agent role should talk to.

        Without routing every role shares this instance (single model,
        single RNG stream -- bit-identical to an unrouted run).  With
        ``stage_models`` set, each role gets its own sibling gateway on
        its routed model, sharing registry, limiter, and stats.
        """
        if not self.settings.stage_models:
            return self
        return Gateway(
            model=self.settings.model_for(role, self.model),
            settings=self.settings,
            role=role,
            registry=self.registry,
            limiter=self._limiter,
            sleep=self._sleep,
        )

    # ------------------------------------------------------------------
    # The call path
    # ------------------------------------------------------------------

    def _store(self) -> CassetteStore:
        return cassette_store(
            self.settings.cassette_dir, self.settings.cache_peers
        )

    def _next_key(
        self, op: str, messages: list[ChatMessage], params: SamplingParams
    ) -> str:
        with self._lock:
            # Ordinal -1 is the grouping identity (the request minus its
            # repeat count); real entries use ordinals 0, 1, 2, ...
            base = cassette_key(op, self.model, self.role, messages, params, -1)
            ordinal = self._ordinals.get(base, 0)
            self._ordinals[base] = ordinal + 1
        return cassette_key(op, self.model, self.role, messages, params, ordinal)

    def _emit(self, result: BackendResult | CassetteRecord, backend: str) -> None:
        n = len(result.completions)
        cost = model_cost(
            self.model, result.prompt_tokens, result.completion_tokens
        )
        emit_ambient(
            GatewayCall(
                model=self.model,
                backend=backend,
                role=self.role,
                n=n,
                prompt_tokens=result.prompt_tokens,
                completion_tokens=result.completion_tokens,
                cost=cost,
            )
        )
        GATEWAY_STATS.add(
            calls=1,
            completions=n,
            prompt_tokens=result.prompt_tokens,
            completion_tokens=result.completion_tokens,
        )

    def _request(
        self, op: str, messages: list[ChatMessage], params: SamplingParams
    ) -> tuple[str, ...]:
        key = self._next_key(op, messages, params)
        if self.settings.mode == "replay":
            return self._replay(key)
        backend, result = self._call_chain(op, messages, params)
        if self.settings.mode == "record":
            self._store().put(
                key,
                CassetteRecord(
                    completions=result.completions,
                    backend=backend.name,
                    prompt_tokens=result.prompt_tokens,
                    completion_tokens=result.completion_tokens,
                ),
            )
            GATEWAY_STATS.add(recorded=1)
        self._emit(result, backend.name)
        # Real money moved only on this, the live path.
        GATEWAY_STATS.add(
            cost=model_cost(
                self.model, result.prompt_tokens, result.completion_tokens
            )
        )
        return result.completions

    def _replay(self, key: str) -> tuple[str, ...]:
        record = self._store().get(key)
        if record is None:
            GATEWAY_STATS.add(cassette_misses=1)
            raise CassetteMiss(
                f"no cassette entry for model {self.model!r} "
                f"(key {key[:12]}...); re-run in --record mode"
            )
        GATEWAY_STATS.add(cassette_hits=1, replayed=1)
        self._emit(record, record.backend)
        return record.completions

    def _call_chain(
        self, op: str, messages: list[ChatMessage], params: SamplingParams
    ) -> tuple[GatewayBackend, BackendResult]:
        last_error: Exception | None = None
        for index, backend in enumerate(self._backends):
            for attempt in range(self.settings.retries):
                if attempt > 0:
                    delay = min(
                        self.settings.backoff_cap,
                        self.settings.backoff_base * (2 ** (attempt - 1)),
                    )
                    if delay > 0:
                        self._sleep(delay)
                    GATEWAY_STATS.add(retries=1)
                waited = self._limiter.acquire()
                if waited > 0:
                    GATEWAY_STATS.add(rate_limit_waits=1)
                call = backend.complete if op == "complete" else backend.sample
                try:
                    return backend, call(self.model, messages, params)
                except TransientBackendError as exc:
                    last_error = exc
                except BackendError:
                    # Permanent (auth, bad request): retrying elsewhere
                    # cannot help and only burns quota.
                    GATEWAY_STATS.add(failures=1)
                    raise
            if index + 1 < len(self._backends):
                GATEWAY_STATS.add(fallbacks=1)
        GATEWAY_STATS.add(failures=1)
        chain = ", ".join(b.describe() for b in self._backends)
        raise GatewayExhausted(
            f"all backends failed for model {self.model!r} "
            f"(chain: {chain}; {self.settings.retries} attempts each)"
        ) from last_error

    # ------------------------------------------------------------------
    # Pickling: runs checkpoint their states, and states hold agents
    # holding this client.  Locks and the shared limiter do not pickle;
    # both rebuild from settings on restore.  The cassette store is
    # never held (resolved per call from the process-local registry).
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_limiter"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._limiter = TokenBucket(self.settings.rate, self.settings.burst)
