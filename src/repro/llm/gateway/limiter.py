"""Token-bucket rate limiter for outbound gateway calls.

Providers meter requests per second with burst allowances; the bucket
mirrors that: it holds up to ``burst`` tokens, refills at ``rate``
tokens per second, and every call consumes one.  An empty bucket makes
the caller *sleep* until a token accrues (queueing, not rejection), so
a saturated gateway degrades to provider speed instead of erroring.

``clock``/``sleep`` are injectable for deterministic tests -- the same
seam the retry backoff uses.
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class TokenBucket:
    """Blocking token bucket; ``rate <= 0`` disables limiting."""

    def __init__(
        self,
        rate: float,
        burst: int = 8,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self.sleep = sleep
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate)

    def acquire(self) -> float:
        """Take one token, sleeping until available; returns seconds waited."""
        if self.rate <= 0:
            return 0.0
        waited = 0.0
        while True:
            with self._lock:
                now = self.clock()
                self._refill(now)
                if self._tokens >= 1.0:
                    self._tokens -= 1.0
                    return waited
                deficit = (1.0 - self._tokens) / self.rate
            # Sleep outside the lock so concurrent callers queue fairly
            # on wake-up order instead of serialising the whole wait.
            self.sleep(deficit)
            waited += deficit
