"""Gateway configuration: backends, retry policy, cassette mode, routing.

Like :class:`~repro.runtime.config.RuntimeConfig`, everything resolves
three ways in priority order: explicit arguments (CLI flags), then
environment variables, then defaults.  Environment variables:

- ``REPRO_GATEWAY``           ``1``/``0`` route LLM traffic through the gateway
- ``REPRO_GATEWAY_MODE``      ``live`` | ``record`` | ``replay``
- ``REPRO_CASSETTE_DIR``      on-disk cassette tier (record/replay store)
- ``REPRO_GATEWAY_BACKENDS``  comma-separated fallback chain, tried in
                              order (``sim``, ``openai[:base_url]``,
                              ``anthropic[:base_url]``, ``down``,
                              ``flaky@N``)
- ``REPRO_STAGE_MODELS``      per-role model routing, e.g.
                              ``rtl=claude-3-haiku,judge=claude-3.5-sonnet``
- ``REPRO_GATEWAY_RETRIES``   attempts per backend before falling over
- ``REPRO_GATEWAY_BACKOFF``   base backoff seconds (doubles per retry)
- ``REPRO_GATEWAY_RATE``      token-bucket refill (calls/second; 0 = off)
- ``REPRO_GATEWAY_BURST``     token-bucket capacity

The env spelling is what makes the gateway ambient: worker processes,
rollout cells, and service workers all resolve the same settings
without threading them through every call signature (they *also* ride
along explicitly on :class:`~repro.runtime.workers.EvalCell` /
:class:`~repro.runtime.rollout.RolloutCell`, which wins when set).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.runtime.config import _env_flag, _env_int

AGENT_ROLES = ("tb", "rtl", "judge", "debug")

_MODES = ("live", "record", "replay")


def _env_float(name: str, fallback: float) -> float:
    value = os.environ.get(name)
    if not value:
        return fallback
    try:
        return float(value)
    except ValueError:
        return fallback


def parse_backends(text: str) -> tuple[str, ...]:
    """Parse a comma-separated backend chain (empty -> default chain)."""
    chain = tuple(part.strip() for part in text.split(",") if part.strip())
    return chain or ("sim",)


def parse_stage_models(text: str) -> tuple[tuple[str, str], ...]:
    """Parse ``role=model`` pairs; unknown roles are rejected loudly."""
    pairs = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        role, sep, model = part.partition("=")
        role, model = role.strip(), model.strip()
        if not sep or not role or not model:
            raise ValueError(
                f"bad stage-model mapping {part!r}; expected role=model"
            )
        if role not in AGENT_ROLES:
            raise ValueError(
                f"unknown agent role {role!r}; "
                f"choose from {', '.join(AGENT_ROLES)}"
            )
        pairs.append((role, model))
    return tuple(pairs)


@dataclass(frozen=True)
class GatewaySettings:
    """Resolved gateway settings (see module docstring for env vars)."""

    enabled: bool = False
    mode: str = "live"  # live | record | replay
    cassette_dir: str | None = None
    backends: tuple[str, ...] = ("sim",)
    stage_models: tuple[tuple[str, str], ...] = ()
    retries: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    rate: float = 0.0  # calls/second through the token bucket (0 = off)
    burst: int = 8
    cache_peers: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"bad gateway mode {self.mode!r}; "
                f"choose from {', '.join(_MODES)}"
            )
        if not self.backends:
            raise ValueError("gateway needs at least one backend")
        if self.retries < 1:
            raise ValueError("retries must be >= 1")
        if self.rate < 0:
            raise ValueError("rate must be >= 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        for role, _model in self.stage_models:
            if role not in AGENT_ROLES:
                raise ValueError(
                    f"unknown agent role {role!r}; "
                    f"choose from {', '.join(AGENT_ROLES)}"
                )

    def model_for(self, role: str, default: str) -> str:
        """The model a role routes to (``default`` without an override)."""
        for mapped_role, model in self.stage_models:
            if mapped_role == role:
                return model
        return default

    def fingerprint(self) -> str | None:
        """Stable identity of everything that can change a run's *output*.

        The backend chain and per-role routing select which model
        answers, so they enter solve-cell fingerprints; the cassette
        mode and directory only change where completions come *from*
        (record and replay are bit-identical by contract), so they stay
        out -- a replay run shares the recording run's solve cells.
        None when the gateway is off: fingerprints must not change for
        existing non-gateway caches.
        """
        if not self.enabled:
            return None
        chain = ",".join(self.backends)
        routing = ",".join(f"{role}={model}" for role, model in self.stage_models)
        return f"gateway(backends=[{chain}],stage_models=[{routing}])"

    def to_env(self) -> dict[str, str]:
        """The env-var spelling of these settings (empty = unset).

        The CLI materialises flags through ``os.environ`` so worker
        processes, service workers, and lazily built runtime contexts
        all resolve the same gateway without plumbing.
        """
        return {
            "REPRO_GATEWAY": "1" if self.enabled else "",
            "REPRO_GATEWAY_MODE": self.mode if self.mode != "live" else "",
            "REPRO_CASSETTE_DIR": self.cassette_dir or "",
            "REPRO_GATEWAY_BACKENDS": (
                ",".join(self.backends) if self.backends != ("sim",) else ""
            ),
            "REPRO_STAGE_MODELS": ",".join(
                f"{role}={model}" for role, model in self.stage_models
            ),
        }

    @staticmethod
    def from_env(
        enabled: bool | None = None,
        mode: str | None = None,
        cassette_dir: str | None = None,
        backends: tuple[str, ...] | list[str] | None = None,
        stage_models: tuple[tuple[str, str], ...] | None = None,
        retries: int | None = None,
        backoff_base: float | None = None,
        rate: float | None = None,
        burst: int | None = None,
        cache_peers: tuple[str, ...] | list[str] | None = None,
    ) -> "GatewaySettings":
        """Resolve settings: explicit args beat env vars beat defaults."""
        from repro.runtime.config import _env_addresses

        return GatewaySettings(
            enabled=(
                enabled
                if enabled is not None
                else _env_flag("REPRO_GATEWAY", False)
            ),
            mode=(
                mode
                if mode is not None
                else os.environ.get("REPRO_GATEWAY_MODE") or "live"
            ),
            cassette_dir=(
                cassette_dir
                if cassette_dir is not None
                else os.environ.get("REPRO_CASSETTE_DIR") or None
            ),
            backends=(
                tuple(backends)
                if backends is not None
                else parse_backends(os.environ.get("REPRO_GATEWAY_BACKENDS") or "")
            ),
            stage_models=(
                tuple(stage_models)
                if stage_models is not None
                else parse_stage_models(os.environ.get("REPRO_STAGE_MODELS") or "")
            ),
            retries=(
                retries
                if retries is not None
                else _env_int("REPRO_GATEWAY_RETRIES", 3)
            ),
            backoff_base=(
                backoff_base
                if backoff_base is not None
                else _env_float("REPRO_GATEWAY_BACKOFF", 0.05)
            ),
            rate=rate if rate is not None else _env_float("REPRO_GATEWAY_RATE", 0.0),
            burst=burst if burst is not None else _env_int("REPRO_GATEWAY_BURST", 8),
            cache_peers=(
                tuple(cache_peers)
                if cache_peers is not None
                else _env_addresses("REPRO_CACHE_PEERS")
            ),
        )


def resolve_gateway_settings() -> GatewaySettings:
    """The settings active for new LLM constructions.

    The ambient runtime context wins when it carries explicit settings
    (batch cells and rollout cells pin theirs there); otherwise the
    environment decides -- which is also what worker processes inherit.
    """
    try:
        from repro.runtime.context import get_runtime

        settings = get_runtime().gateway
    except Exception:  # noqa: BLE001 -- context layer absent or mid-import
        settings = None
    if settings is not None:
        return settings
    return GatewaySettings.from_env()


def active_gateway_fingerprint() -> str | None:
    """Fingerprint fragment of the active gateway (None when disabled)."""
    return resolve_gateway_settings().fingerprint()
