"""Multi-backend LLM gateway: retry/fallback chains, rate limiting,
per-call accounting, and recorded-replay cassettes.

Importing this package registers the ``gateway`` provider with the
:mod:`repro.llm.interface` registry, so
``create_llm("gateway", model="claude-3.5-sonnet")`` builds a gateway
from the ambient :class:`GatewaySettings` exactly like the
``--gateway`` CLI flag does.
"""

from __future__ import annotations

from repro.llm.gateway.backends import (
    AnthropicBackend,
    BackendError,
    BackendResult,
    DownBackend,
    FlakyBackend,
    GatewayBackend,
    OpenAIBackend,
    SimBackend,
    TransientBackendError,
    build_backend,
)
from repro.llm.gateway.cassette import (
    CassetteMiss,
    CassetteRecord,
    CassetteStore,
    cassette_key,
    cassette_store,
)
from repro.llm.gateway.client import (
    GATEWAY_STATS,
    Gateway,
    GatewayExhausted,
    GatewayStats,
    model_cost,
)
from repro.llm.gateway.limiter import TokenBucket
from repro.llm.gateway.settings import (
    AGENT_ROLES,
    GatewaySettings,
    active_gateway_fingerprint,
    parse_backends,
    parse_stage_models,
    resolve_gateway_settings,
)
from repro.llm.interface import register_llm


def _gateway_factory(
    model: str = "claude-3.5-sonnet", **kwargs
) -> Gateway:
    settings = kwargs.pop("settings", None)
    if settings is None:
        resolved = resolve_gateway_settings()
        # Constructing the provider by name *is* the opt-in; a disabled
        # ambient config still yields a working sim-backed gateway.
        settings = (
            resolved
            if resolved.enabled
            else GatewaySettings.from_env(enabled=True)
        )
    return Gateway(model=model, settings=settings, **kwargs)


register_llm("gateway", _gateway_factory)

__all__ = [
    "AGENT_ROLES",
    "AnthropicBackend",
    "BackendError",
    "BackendResult",
    "CassetteMiss",
    "CassetteRecord",
    "CassetteStore",
    "DownBackend",
    "FlakyBackend",
    "GATEWAY_STATS",
    "Gateway",
    "GatewayBackend",
    "GatewayExhausted",
    "GatewaySettings",
    "GatewayStats",
    "OpenAIBackend",
    "SimBackend",
    "TokenBucket",
    "TransientBackendError",
    "active_gateway_fingerprint",
    "build_backend",
    "cassette_key",
    "cassette_store",
    "model_cost",
    "parse_backends",
    "parse_stage_models",
    "resolve_gateway_settings",
]
