"""Provider adapters: one call surface over heterogeneous LLM backends.

A :class:`GatewayBackend` turns ``(model, messages, params)`` into
completions plus token usage.  The shipped adapters:

- :class:`SimBackend` -- wraps the deterministic
  :class:`~repro.llm.simllm.SimLLM` (or any injected
  :class:`~repro.llm.interface.LLMClient`), so the gateway sits on the
  call path even in tests and CI;
- :class:`OpenAIBackend` / :class:`AnthropicBackend` -- OpenAI-compatible
  and Anthropic-style HTTP chat APIs over stdlib ``urllib`` (no extra
  dependencies; the cassette store keeps CI off the network entirely);
- :class:`DownBackend` -- always raises a transient error: the
  "sockets disabled" stub replay runs and fallback tests pin the chain
  against;
- :class:`FlakyBackend` -- fails its first N calls then behaves like
  :class:`SimBackend`: the seeded failure-mode fixture for retry and
  fallback coverage.

Failure taxonomy: :class:`TransientBackendError` (timeouts, 429s, 5xx,
connection refusals) is retried and then failed over;
:class:`BackendError` (bad request, auth) aborts the chain immediately
-- retrying a 401 across providers just burns quota.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.llm.interface import ChatMessage, LLMClient, SamplingParams


class BackendError(Exception):
    """Permanent backend failure: retrying cannot help."""


class TransientBackendError(BackendError):
    """Retryable failure: timeout, rate limit, 5xx, connection refused."""


def estimate_tokens(text: str) -> int:
    """Deterministic whitespace-split token estimate (sim accounting)."""
    return len(text.split())


def prompt_token_estimate(messages: list[ChatMessage]) -> int:
    return sum(estimate_tokens(m.content) for m in messages)


@dataclass(frozen=True)
class BackendResult:
    """Completions plus usage, as one backend call produced them."""

    completions: tuple[str, ...]
    prompt_tokens: int = 0
    completion_tokens: int = 0


class GatewayBackend:
    """One provider behind the gateway's retry/fallback chain."""

    name = "backend"

    def complete(
        self, model: str, messages: list[ChatMessage], params: SamplingParams
    ) -> BackendResult:
        raise NotImplementedError

    def sample(
        self, model: str, messages: list[ChatMessage], params: SamplingParams
    ) -> BackendResult:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class SimBackend(GatewayBackend):
    """The deterministic simulated provider as a gateway backend.

    Delegates straight to the wrapped client so a gateway over a
    ``SimBackend`` is bit-identical to calling the client directly --
    same RNG entropy (the client's own call counter), same genome
    registry, same outputs.
    """

    name = "sim"

    def __init__(self, client: LLMClient):
        self.client = client

    def _usage(
        self, messages: list[ChatMessage], completions: tuple[str, ...]
    ) -> tuple[int, int]:
        return (
            prompt_token_estimate(messages),
            sum(estimate_tokens(c) for c in completions),
        )

    def complete(
        self, model: str, messages: list[ChatMessage], params: SamplingParams
    ) -> BackendResult:
        reply = self.client.complete(messages, params)
        prompt, completion = self._usage(messages, (reply,))
        return BackendResult(
            completions=(reply,),
            prompt_tokens=prompt,
            completion_tokens=completion,
        )

    def sample(
        self, model: str, messages: list[ChatMessage], params: SamplingParams
    ) -> BackendResult:
        replies = tuple(self.client.sample(messages, params))
        prompt, completion = self._usage(messages, replies)
        return BackendResult(
            completions=replies,
            prompt_tokens=prompt,
            completion_tokens=completion,
        )


class DownBackend(GatewayBackend):
    """A provider that is always unreachable (every call is transient).

    What ``--backends down`` means in CI replay smokes: if a replay run
    ever leaves the cassette store, the chain lands here and the run
    fails loudly instead of silently re-recording.
    """

    name = "down"

    def __init__(self) -> None:
        self.calls = 0

    def _fail(self) -> BackendResult:
        self.calls += 1
        raise TransientBackendError("backend down (scripted)")

    def complete(self, model, messages, params) -> BackendResult:
        return self._fail()

    def sample(self, model, messages, params) -> BackendResult:
        return self._fail()


class FlakyBackend(SimBackend):
    """Sim-backed provider that fails its first ``fail_first`` calls.

    Failures happen *before* the wrapped client is touched, so the
    client's call-counter state -- and therefore its outputs once the
    backend recovers -- matches an unwrapped run exactly.
    """

    name = "flaky"

    def __init__(self, client: LLMClient, fail_first: int):
        super().__init__(client)
        if fail_first < 0:
            raise ValueError("fail_first must be >= 0")
        self.fail_first = fail_first
        self.failures_dealt = 0

    def describe(self) -> str:
        return f"flaky@{self.fail_first}"

    def _maybe_fail(self) -> None:
        if self.failures_dealt < self.fail_first:
            self.failures_dealt += 1
            raise TransientBackendError(
                f"flaky backend failure "
                f"{self.failures_dealt}/{self.fail_first} (scripted)"
            )

    def complete(self, model, messages, params) -> BackendResult:
        self._maybe_fail()
        return super().complete(model, messages, params)

    def sample(self, model, messages, params) -> BackendResult:
        self._maybe_fail()
        return super().sample(model, messages, params)


class _HTTPBackend(GatewayBackend):
    """Shared plumbing for the stdlib-urllib HTTP adapters."""

    def __init__(
        self,
        base_url: str,
        api_key_env: str,
        timeout: float = 60.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.api_key_env = api_key_env
        self.timeout = timeout

    def describe(self) -> str:
        return f"{self.name} ({self.base_url})"

    def _api_key(self) -> str:
        import os

        key = os.environ.get(self.api_key_env, "")
        if not key:
            raise BackendError(
                f"no API key: set {self.api_key_env} (or run --replay "
                f"against a recorded cassette)"
            )
        return key

    def _post(self, path: str, payload: dict, headers: dict) -> dict:
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json", **headers},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                body = resp.read()
        except urllib.error.HTTPError as exc:
            detail = f"{self.name} HTTP {exc.code}"
            if exc.code == 429 or exc.code >= 500:
                raise TransientBackendError(detail) from exc
            raise BackendError(detail) from exc
        except OSError as exc:  # URLError, timeouts, refused connections
            raise TransientBackendError(f"{self.name}: {exc}") from exc
        try:
            parsed = json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransientBackendError(
                f"{self.name}: undecodable response body"
            ) from exc
        if not isinstance(parsed, dict):
            raise TransientBackendError(f"{self.name}: non-object response")
        return parsed


class OpenAIBackend(_HTTPBackend):
    """OpenAI-compatible ``/chat/completions`` adapter (native ``n``)."""

    name = "openai"

    def __init__(
        self,
        base_url: str = "https://api.openai.com/v1",
        api_key_env: str = "OPENAI_API_KEY",
        timeout: float = 60.0,
    ):
        super().__init__(base_url, api_key_env, timeout)

    def _request(
        self, model: str, messages: list[ChatMessage], params: SamplingParams, n: int
    ) -> BackendResult:
        payload = {
            "model": model,
            "messages": [
                {"role": m.role, "content": m.content} for m in messages
            ],
            "temperature": params.temperature,
            "top_p": params.top_p,
            "n": n,
        }
        if params.seed is not None:
            payload["seed"] = params.seed
        reply = self._post(
            "/chat/completions",
            payload,
            {"Authorization": f"Bearer {self._api_key()}"},
        )
        try:
            completions = tuple(
                choice["message"]["content"] for choice in reply["choices"]
            )
        except (KeyError, TypeError) as exc:
            raise TransientBackendError(
                f"{self.name}: malformed choices"
            ) from exc
        if len(completions) != n:
            raise TransientBackendError(
                f"{self.name}: asked for {n} completions, got {len(completions)}"
            )
        usage = reply.get("usage") or {}
        return BackendResult(
            completions=completions,
            prompt_tokens=int(usage.get("prompt_tokens", 0))
            or prompt_token_estimate(messages),
            completion_tokens=int(usage.get("completion_tokens", 0))
            or sum(estimate_tokens(c) for c in completions),
        )

    def complete(self, model, messages, params) -> BackendResult:
        return self._request(model, messages, params, n=1)

    def sample(self, model, messages, params) -> BackendResult:
        return self._request(model, messages, params, n=params.n)


class AnthropicBackend(_HTTPBackend):
    """Anthropic-style ``/v1/messages`` adapter.

    The API takes the system prompt out-of-band and has no ``n``, so
    sampling loops one request per completion -- which is also why the
    gateway's rate limiter meters *backend calls*, not gateway calls.
    """

    name = "anthropic"

    def __init__(
        self,
        base_url: str = "https://api.anthropic.com",
        api_key_env: str = "ANTHROPIC_API_KEY",
        timeout: float = 60.0,
        max_tokens: int = 4096,
    ):
        super().__init__(base_url, api_key_env, timeout)
        self.max_tokens = max_tokens

    def _request_one(
        self, model: str, messages: list[ChatMessage], params: SamplingParams
    ) -> tuple[str, int, int]:
        system = "\n\n".join(
            m.content for m in messages if m.role == "system"
        )
        payload = {
            "model": model,
            "max_tokens": self.max_tokens,
            "messages": [
                {"role": m.role, "content": m.content}
                for m in messages
                if m.role != "system"
            ],
            "temperature": params.temperature,
            "top_p": params.top_p,
        }
        if system:
            payload["system"] = system
        reply = self._post(
            "/v1/messages",
            payload,
            {
                "x-api-key": self._api_key(),
                "anthropic-version": "2023-06-01",
            },
        )
        try:
            text = "".join(
                block["text"]
                for block in reply["content"]
                if block.get("type") == "text"
            )
        except (KeyError, TypeError) as exc:
            raise TransientBackendError(
                f"{self.name}: malformed content"
            ) from exc
        usage = reply.get("usage") or {}
        return (
            text,
            int(usage.get("input_tokens", 0)),
            int(usage.get("output_tokens", 0)),
        )

    def complete(self, model, messages, params) -> BackendResult:
        text, prompt, completion = self._request_one(model, messages, params)
        return BackendResult(
            completions=(text,),
            prompt_tokens=prompt or prompt_token_estimate(messages),
            completion_tokens=completion or estimate_tokens(text),
        )

    def sample(self, model, messages, params) -> BackendResult:
        completions = []
        prompt_total = completion_total = 0
        for _ in range(params.n):
            text, prompt, completion = self._request_one(model, messages, params)
            completions.append(text)
            prompt_total += prompt
            completion_total += completion
        return BackendResult(
            completions=tuple(completions),
            prompt_tokens=prompt_total or prompt_token_estimate(messages),
            completion_tokens=completion_total
            or sum(estimate_tokens(c) for c in completions),
        )


def build_backend(
    spec: str, sim_client: LLMClient | None = None
) -> GatewayBackend:
    """Instantiate one backend from its chain-spec string.

    Specs: ``sim`` | ``down`` | ``flaky@N`` | ``openai[:base_url]`` |
    ``anthropic[:base_url]``.  ``sim_client`` supplies the wrapped
    client for the sim-backed specs (the gateway passes its routed
    model's client so per-role routing and registry sharing hold).
    """
    kind, _, rest = spec.partition(":")
    kind = kind.strip()
    if kind == "sim":
        if sim_client is None:
            raise ValueError("sim backend needs a client")
        return SimBackend(sim_client)
    if kind == "down":
        return DownBackend()
    if kind.startswith("flaky"):
        _, _, count = kind.partition("@")
        try:
            fail_first = int(count)
        except ValueError:
            raise ValueError(
                f"bad flaky backend spec {spec!r}; expected flaky@N"
            ) from None
        if sim_client is None:
            raise ValueError("flaky backend needs a client")
        return FlakyBackend(sim_client, fail_first=fail_first)
    if kind == "openai":
        return OpenAIBackend(**({"base_url": rest} if rest else {}))
    if kind == "anthropic":
        return AnthropicBackend(**({"base_url": rest} if rest else {}))
    raise ValueError(
        f"unknown gateway backend {spec!r}; "
        "choose from sim, down, flaky@N, openai[:url], anthropic[:url]"
    )
