"""LLM substrate: an LLM-agnostic client interface plus ``SimLLM``,
a behavioral model of a code LLM used in place of remote APIs.

The paper runs MAGE against Claude 3.5 Sonnet through LlamaIndex's
LLM-agnostic interface; this package mirrors that layering.  Agents are
written against :class:`~repro.llm.interface.LLMClient` only.  The
offline provider, :class:`~repro.llm.simllm.SimLLM`, responds to the
agents' actual prompt text by sampling fault-injected variants of the
golden design -- see DESIGN.md ("How SimLLM keeps the experiments
honest") for the behavioural rules and the calibration contract.
"""

from repro.llm.interface import (
    ChatMessage,
    LLMClient,
    SamplingParams,
    create_llm,
    register_llm,
)
from repro.llm.profiles import ModelProfile, get_profile, profile_names
from repro.llm.simllm import SimLLM

__all__ = [
    "ChatMessage",
    "LLMClient",
    "ModelProfile",
    "SamplingParams",
    "SimLLM",
    "create_llm",
    "get_profile",
    "profile_names",
    "register_llm",
]
