"""Declarative staged pipelines: the one execution model for every
solve path.

A solve path is a list of :class:`Stage` objects over a mutable,
picklable :class:`RunState`.  The :class:`Pipeline` runner executes the
stages in order, emits typed events (:mod:`repro.core.events`) at every
boundary -- including per-stage wall-clock and LLM-call accounting --
and checkpoints the state after each stage so a run can be snapshotted,
shipped, and resumed from where it stopped.

Determinism contract: the runner adds no control flow of its own.  A
stage list executed by ``Pipeline.run`` issues exactly the calls the
stage functions issue, in order, so re-expressing an imperative solve
loop as stages is bit-identical at fixed seeds.

Stage functions receive ``(state, emit)`` and may return :data:`DONE`
to short-circuit the remaining stages (e.g. MAGE skipping Steps 4-5
when the initial candidate already passes).  They must be module-level
callables when states are checkpointed across processes.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.events import (
    Event,
    EventSink,
    NULL_SINK,
    RunStarted,
    StageFinished,
    StageStarted,
    ambient_sink,
    as_sink,
)


class StageClock:
    """Process-wide per-stage wall-clock accounting.

    Every :meth:`Pipeline.run` stage execution records its measured
    seconds here under ``"<pipeline>/<stage>"``.  The snapshot is the
    ``stages`` section of the service ``StatsReply`` and the ``stats``
    CLI report -- where the per-run event stream answers "how long did
    *this* run's step4 take", this answers "where does a whole server's
    wall-clock go".
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, list] = {}

    def record(self, name: str, seconds: float) -> None:
        with self._lock:
            entry = self._stages.get(name)
            if entry is None:
                entry = self._stages[name] = [0, 0.0]
            entry[0] += 1
            entry[1] += seconds

    def snapshot(self) -> dict:
        with self._lock:
            return {
                name: {"runs": entry[0], "seconds": entry[1]}
                for name, entry in sorted(self._stages.items())
            }

    def reset(self) -> None:
        with self._lock:
            self._stages.clear()


STAGE_CLOCK = StageClock()

# Sentinel a stage returns to stop the pipeline (the run is complete).
DONE = "__pipeline_done__"

StageFn = Callable[["RunState", Callable[[Event], None]], str | None]


@dataclass
class RunState:
    """Everything a run carries between stages.

    ``data`` holds the stage-to-stage values (agents, testbenches,
    candidates, ...); ``next_stage`` is the resume cursor.  States are
    picklable whenever their ``data`` values are, which holds for every
    shipped solve path (SimLLM, agents, and conversations all pickle).
    """

    seed: int = 0
    next_stage: int = 0
    finished: bool = False
    data: dict[str, Any] = field(default_factory=dict)

    def snapshot(self) -> bytes:
        """Serialise for checkpointing (see :func:`restore_state`)."""
        return pickle.dumps(self)


def restore_state(blob: bytes) -> RunState:
    """Inverse of :meth:`RunState.snapshot`."""
    state = pickle.loads(blob)
    if not isinstance(state, RunState):
        raise TypeError(f"checkpoint did not hold a RunState: {type(state)!r}")
    return state


@dataclass(frozen=True)
class Stage:
    """One named step of a solve path."""

    name: str
    fn: StageFn

    def run(self, state: RunState, emit: Callable[[Event], None]) -> str | None:
        return self.fn(state, emit)


class Pipeline:
    """Executes a stage list over a :class:`RunState`.

    ``calls_probe(state)`` reads the cumulative LLM-call counter of the
    run (e.g. an agent team's total); the runner differences it across
    each stage for the :class:`~repro.core.events.StageFinished`
    accounting.  ``checkpoint(state)`` is invoked after every completed
    stage with the cursor already advanced, so restoring the latest
    checkpoint and calling :meth:`run` again continues the run exactly.
    """

    def __init__(
        self,
        name: str,
        stages: list[Stage],
        calls_probe: Callable[[RunState], int] | None = None,
    ):
        seen: set[str] = set()
        for stage in stages:
            if stage.name in seen:
                raise ValueError(f"duplicate stage name {stage.name!r}")
            seen.add(stage.name)
        self.name = name
        self.stages = list(stages)
        self.calls_probe = calls_probe

    def stage_names(self) -> list[str]:
        return [stage.name for stage in self.stages]

    def run(
        self,
        state: RunState,
        sink: EventSink | Callable[[Event], None] | None = None,
        stop_after: str | None = None,
        checkpoint: Callable[[RunState], None] | None = None,
    ) -> RunState:
        """Execute stages from ``state.next_stage`` onward.

        ``stop_after`` pauses the pipeline after the named stage (the
        state remains resumable); a stage returning :data:`DONE` marks
        the run finished and skips the rest.
        """
        if stop_after is not None and stop_after not in self.stage_names():
            raise ValueError(
                f"unknown stop_after stage {stop_after!r}; "
                f"stages: {', '.join(self.stage_names())}"
            )
        resolved = as_sink(sink) if sink is not None else NULL_SINK
        emit = resolved.emit
        if state.next_stage >= len(self.stages):
            # Nothing left to execute: an empty stage list, or a state
            # whose cursor already passed the last stage.  Mark it
            # finished rather than leaving a never-resumable state that
            # claims to be resumable (``stop_after`` equal to the final
            # stage must hand back a *finished* state -- see the
            # regression tests).
            state.finished = True
            if checkpoint is not None:
                checkpoint(state)
            return state
        for index in range(state.next_stage, len(self.stages)):
            if state.finished:
                break
            stage = self.stages[index]
            emit(StageStarted(stage=stage.name, index=index))
            calls_before = (
                self.calls_probe(state) if self.calls_probe is not None else 0
            )
            started = time.perf_counter()
            # The stage's emit doubles as the thread's ambient sink, so
            # layers without a sink in their signature (the LLM gateway
            # under the agents) narrate into this run's stream.
            with ambient_sink(emit):
                signal = stage.run(state, emit)
            seconds = time.perf_counter() - started
            STAGE_CLOCK.record(f"{self.name}/{stage.name}", seconds)
            calls_after = (
                self.calls_probe(state) if self.calls_probe is not None else 0
            )
            emit(
                StageFinished(
                    stage=stage.name,
                    index=index,
                    seconds=seconds,
                    llm_calls=calls_after - calls_before,
                )
            )
            state.next_stage = index + 1
            if signal == DONE or state.next_stage >= len(self.stages):
                state.finished = True
            if checkpoint is not None:
                checkpoint(state)
            if state.finished or stop_after == stage.name:
                break
        return state


@dataclass(frozen=True)
class ProgramSpec:
    """Picklable recipe for resuming a run state anywhere.

    Every solve path stores one of these in ``state.data["program"]``
    when it starts a run, so a checkpointed state carries everything a
    scheduler (or another process) needs to keep driving it: how to
    rebuild the pipeline, how to read the final source out of the
    finished state, and -- for paths with a gang-schedulable sampling
    stage -- which stage that is and how to extract its pending work.

    All callables must be module-level functions or ``functools.partial``
    objects over them, so specs survive ``RunState.snapshot()`` round
    trips across process boundaries.

    ``runner`` overrides the generic advance (e.g. MAGE's
    ``run_mage_state``, which owns RunStarted/RunFinished emission and
    event recording); paths without one get the default behaviour: a
    :class:`~repro.core.events.RunStarted` on the first advance, then
    ``pipeline.run``.  ``sample_plan(state)`` is called on a state
    suspended just before ``sample_stage``; it performs the run's own
    candidate *generation* (LLM calls, in-state order) and returns the
    pure simulation work a scheduler may coalesce across runs.

    The debug trio extends the same suspension protocol to iterative
    debug rounds.  ``debug_plan(state)`` is called on a state suspended
    just before ``debug_stage``: it draws the first round's trials
    (LLM calls, parked events) and returns their simulation work, or
    None when the stage has nothing left to gang-schedule.
    ``debug_step(state, reports)`` feeds one round's trial reports back,
    applies the accept/rollback update, and returns the *next* round's
    work (again None when done).  After a None, advancing the state
    through ``debug_stage`` replays the accumulated rounds into the
    event stream bit-identically to an inline run.
    """

    pipeline_factory: Callable[[], "Pipeline"]
    system: str
    task_name: str
    extractor: Callable[["RunState"], str]
    runner: Callable | None = None
    sample_stage: str | None = None
    sample_plan: Callable[["RunState"], Any] | None = None
    debug_stage: str | None = None
    debug_plan: Callable[["RunState"], Any] | None = None
    debug_step: Callable[["RunState", list], Any] | None = None


@dataclass
class RunProgram:
    """A started run: the spec plus its live state.

    ``advance`` drives the state (optionally pausing via ``stop_after``)
    and is safe to call repeatedly until ``finished``; ``source`` reads
    the final RTL out of a finished state.
    """

    spec: ProgramSpec
    state: RunState

    def pipeline(self) -> Pipeline:
        return self.spec.pipeline_factory()

    @property
    def finished(self) -> bool:
        return self.state.finished

    def advance(
        self,
        sink: EventSink | Callable[[Event], None] | None = None,
        stop_after: str | None = None,
        checkpoint: Callable[[RunState], None] | None = None,
    ) -> RunState:
        if self.spec.runner is not None:
            return self.spec.runner(
                self.state, sink=sink, stop_after=stop_after, checkpoint=checkpoint
            )
        resolved = as_sink(sink)
        if self.state.next_stage == 0 and not self.state.data.get("run_started"):
            self.state.data["run_started"] = True
            resolved.emit(
                RunStarted(
                    system=self.spec.system,
                    task_name=self.spec.task_name,
                    seed=self.state.seed,
                )
            )
        return self.pipeline().run(
            self.state, sink=resolved, stop_after=stop_after, checkpoint=checkpoint
        )

    def source(self) -> str:
        if not self.state.finished:
            raise ValueError(
                "run is not finished "
                f"(next stage index {self.state.next_stage})"
            )
        return self.spec.extractor(self.state)


def start_program(spec: ProgramSpec, state: RunState) -> RunProgram:
    """Bind a spec to a fresh state (and record it for later resumes)."""
    state.data["program"] = spec
    return RunProgram(spec=spec, state=state)


def resume_program(state: RunState) -> RunProgram:
    """Rebuild the program of a (possibly restored) state."""
    spec = state.data.get("program")
    if not isinstance(spec, ProgramSpec):
        raise ValueError("state carries no ProgramSpec (data['program'])")
    return RunProgram(spec=spec, state=state)


def stage_before(pipeline: Pipeline, stage: str) -> str | None:
    """Name of the stage preceding ``stage`` (None when it is first)."""
    names = pipeline.stage_names()
    if stage not in names:
        raise ValueError(
            f"unknown stage {stage!r}; stages: {', '.join(names)}"
        )
    index = names.index(stage)
    return names[index - 1] if index > 0 else None


class MemoryCheckpointer:
    """Keeps the latest state snapshot in memory (tests, in-process
    pause/resume)."""

    def __init__(self) -> None:
        self.blob: bytes | None = None
        self.saves = 0

    def __call__(self, state: RunState) -> None:
        self.blob = state.snapshot()
        self.saves += 1

    def restore(self) -> RunState:
        if self.blob is None:
            raise ValueError("no checkpoint has been saved")
        return restore_state(self.blob)


class FileCheckpointer:
    """Persists the latest state snapshot to one file (atomic rename)."""

    def __init__(self, path: str):
        self.path = path
        self.saves = 0

    def __call__(self, state: RunState) -> None:
        import os
        import tempfile

        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
        with os.fdopen(fd, "wb") as handle:
            handle.write(state.snapshot())
        os.replace(tmp_path, self.path)
        self.saves += 1

    def restore(self) -> RunState:
        with open(self.path, "rb") as handle:
            return restore_state(handle.read())
