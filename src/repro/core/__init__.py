"""MAGE core: the five-step multi-agent engine (paper Sec. III).

- :mod:`repro.core.config` -- tunables with the paper's defaults;
- :mod:`repro.core.events` -- typed run events and pluggable sinks;
- :mod:`repro.core.pipeline` -- the staged ``Pipeline`` runner every
  solve path (MAGE and all baselines) executes on, with checkpointable
  ``RunState``;
- :mod:`repro.core.scoring` -- Eq. 2 scoring and Eq. 3 Top-K selection;
- :mod:`repro.core.sampling` -- Step 4 high-temperature sampling/ranking;
- :mod:`repro.core.debug_loop` -- Step 5 checkpoint debugging with the
  Eq. 4 accept/rollback rule;
- :mod:`repro.core.engine` -- the workflow as a five-stage pipeline;
- :mod:`repro.core.transcript` -- the legacy run record, derived from
  the typed event stream.
"""

from repro.core.config import MAGEConfig
from repro.core.engine import MAGE, MAGEResult, mage_pipeline
from repro.core.events import Event, EventSink, ListSink, StreamSink
from repro.core.pipeline import DONE, Pipeline, RunState, Stage
from repro.core.task import DesignTask

__all__ = [
    "DONE",
    "DesignTask",
    "Event",
    "EventSink",
    "ListSink",
    "MAGE",
    "MAGEConfig",
    "MAGEResult",
    "Pipeline",
    "RunState",
    "Stage",
    "StreamSink",
    "mage_pipeline",
]
