"""MAGE core: the five-step multi-agent engine (paper Sec. III).

- :mod:`repro.core.config` -- tunables with the paper's defaults;
- :mod:`repro.core.scoring` -- Eq. 2 scoring and Eq. 3 Top-K selection;
- :mod:`repro.core.sampling` -- Step 4 high-temperature sampling/ranking;
- :mod:`repro.core.debug_loop` -- Step 5 checkpoint debugging with the
  Eq. 4 accept/rollback rule;
- :mod:`repro.core.engine` -- the orchestrated workflow;
- :mod:`repro.core.transcript` -- structured run records feeding the
  paper's figures.
"""

from repro.core.config import MAGEConfig
from repro.core.engine import MAGE, MAGEResult
from repro.core.task import DesignTask

__all__ = ["MAGE", "MAGEConfig", "MAGEResult", "DesignTask"]
