"""Candidate scoring and selection (paper Eqs. 2-4).

The score itself, s(r) = 1 - m(r)/tc(r), is computed by
:class:`~repro.tb.runner.TestReport`; this module hosts the selection
algebra the sampler and debug loop share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tb.runner import TestReport


@dataclass
class ScoredCandidate:
    """One candidate with its latest simulation evidence."""

    source: str
    report: TestReport

    @property
    def score(self) -> float:
        return self.report.score

    @property
    def passed(self) -> bool:
        return self.report.passed


def select_top_k(
    candidates: list[ScoredCandidate], k: int
) -> list[ScoredCandidate]:
    """Eq. 3: the K candidates maximising total score (ties: earlier wins)."""
    ordered = sorted(
        enumerate(candidates), key=lambda pair: (-pair[1].score, pair[0])
    )
    return [pair[1] for pair in ordered[: max(k, 0)]]


def better(a: ScoredCandidate, b: ScoredCandidate) -> ScoredCandidate:
    """Eq. 4 accept/rollback: keep the argmax of s(r), preferring ``a``.

    ``a`` is the incumbent; a debug trial ``b`` replaces it only when it
    strictly improves the score, so regressions roll back.
    """
    return b if b.score > a.score else a


def best_candidate(candidates: list[ScoredCandidate]) -> ScoredCandidate:
    """Highest-scoring candidate overall (earlier wins ties)."""
    if not candidates:
        raise ValueError("no candidates to choose from")
    return select_top_k(candidates, 1)[0]
