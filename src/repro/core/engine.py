"""The MAGE engine: orchestration of the five-step workflow (Fig. 1a).

Step 1  testbench agent writes an optimized, checkpoint-logging
        testbench from the spec (plus golden hints when available);
Step 2  RTL agent writes the initial candidate (syntax loop, s=5);
Step 3  if the candidate fails, the judge reviews the testbench and
        orders regeneration when the testbench itself is wrong;
Step 4  high-temperature sampling of c candidates, simulation scoring,
        Top-K selection;
Step 5  checkpoint debugging with accept/rollback until s(r)=1 or the
        iteration cap.

The engine never sees the benchmark's golden testbench; final success
is judged externally (``repro.evaluation``) exactly like VerilogEval
scores submissions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.debug_agent import DebugAgent
from repro.agents.judge_agent import JudgeAgent
from repro.agents.rtl_agent import RTLAgent
from repro.agents.testbench_agent import TestbenchAgent
from repro.core.config import MAGEConfig
from repro.core.debug_loop import debug_candidates
from repro.core.sampling import sample_and_rank
from repro.core.scoring import ScoredCandidate, best_candidate
from repro.core.task import DesignTask
from repro.core.transcript import RunTranscript
from repro.llm.interface import Conversation, LLMClient, create_llm
from repro.llm.profiles import get_profile
from repro.llm.simllm import SimLLM


@dataclass
class MAGEResult:
    """Outcome of one engine run."""

    task: DesignTask
    source: str
    internal_score: float  # against the *optimized* testbench
    transcript: RunTranscript

    @property
    def internal_pass(self) -> bool:
        return self.internal_score >= 1.0


class MAGE:
    """The multi-agent engine.

    ``single_agent=True`` in the config reproduces the Table III
    ablation: all four roles share one conversation history and the
    model profile is pollution-penalised.
    """

    def __init__(self, config: MAGEConfig | None = None, llm: LLMClient | None = None):
        self.config = config or MAGEConfig()
        if llm is not None:
            self.llm = llm
        elif self.config.single_agent:
            profile = get_profile(self.config.model).polluted()
            self.llm = SimLLM(profile=profile)
        else:
            self.llm = create_llm(self.config.model)
        shared = (
            Conversation(
                system_prompt=(
                    "You are a single engineering agent handling "
                    "specification analysis, testbench writing, RTL "
                    "design, scoring decisions, and debugging in one "
                    "continuous conversation."
                )
            )
            if self.config.single_agent
            else None
        )

        def conv() -> Conversation | None:
            return shared

        self.tb_agent = TestbenchAgent(self.llm, conv())
        self.rtl_agent = RTLAgent(self.llm, conv())
        self.judge = JudgeAgent(self.llm, conv())
        self.debug_agent = DebugAgent(self.llm, conv())

    # ------------------------------------------------------------------

    def solve(
        self,
        task: DesignTask,
        golden_tb_hint: str | None = None,
        seed: int = 0,
    ) -> MAGEResult:
        """Run the five-step workflow on one task."""
        config = self.config.with_seed(seed)
        transcript = RunTranscript(task_name=task.name)

        # Step 1: optimized testbench.
        tb_text, testbench = self.tb_agent.generate(
            task, config.judge_params, golden_hint=golden_tb_hint
        )
        transcript.log(
            "step1",
            f"testbench generated: {testbench.total_checks} checkpointed checks",
        )

        # Step 2: initial RTL (syntax loop inside).
        initial_source, clean = self.rtl_agent.generate_initial(
            task, tb_text, config.initial_generation
        )
        transcript.log(
            "step2",
            "initial RTL generated"
            + ("" if clean else " (syntax errors remain after s=5 rounds)"),
        )
        initial = ScoredCandidate(
            initial_source, self.judge.score(initial_source, testbench, task.top)
        )
        transcript.initial_score = initial.score
        transcript.log("step2", f"initial candidate score {initial.score:.3f}")

        # Step 3: testbench arbitration.
        regens = 0
        while not initial.passed and regens < config.max_tb_regens:
            verdict = self.judge.review_testbench(
                task, tb_text, initial.report, config.judge_params
            )
            if verdict.correct:
                transcript.log("step3", "judge upheld the testbench")
                break
            regens += 1
            transcript.log(
                "step3", f"judge rejected the testbench: {verdict.rationale}"
            )
            tb_text, testbench = self.tb_agent.generate(
                task,
                config.judge_params,
                golden_hint=golden_tb_hint,
                reason=verdict.rationale,
            )
            initial = ScoredCandidate(
                initial.source, self.judge.score(initial.source, testbench, task.top)
            )
            transcript.log(
                "step3",
                f"regenerated testbench; initial rescored {initial.score:.3f}",
            )
        transcript.tb_regens = regens

        if initial.passed:
            transcript.log("done", "initial candidate passed; skipping steps 4-5")
            return self._finish(task, initial, transcript)

        # Step 4: high-temperature sampling and ranking.
        outcome = sample_and_rank(
            task,
            tb_text,
            testbench,
            self.rtl_agent,
            self.judge,
            config,
            extra=[initial],
        )
        transcript.candidate_scores = outcome.scores
        transcript.selected_scores = [c.score for c in outcome.selected]
        transcript.log(
            "step4",
            f"sampled {len(outcome.candidates)} candidates; "
            f"best {outcome.best_score:.3f}; kept top-{len(outcome.selected)}",
        )
        if any(c.passed for c in outcome.selected):
            winner = best_candidate(outcome.selected)
            transcript.log("done", "a sampled candidate passed; skipping step 5")
            return self._finish(task, winner, transcript)

        # Step 5: checkpoint debugging with rollback.
        debug_outcome = debug_candidates(
            task,
            testbench,
            outcome.selected,
            self.debug_agent,
            self.judge,
            config,
        )
        transcript.debug_round_scores = debug_outcome.round_scores
        winner = debug_outcome.best
        transcript.log(
            "step5",
            f"debugging finished after {len(debug_outcome.round_scores) - 1} "
            f"rounds; best score {winner.score:.3f}",
        )
        return self._finish(task, winner, transcript)

    def _finish(
        self, task: DesignTask, winner: ScoredCandidate, transcript: RunTranscript
    ) -> MAGEResult:
        transcript.llm_calls = (
            self.tb_agent.calls
            + self.rtl_agent.calls
            + self.judge.calls
            + self.debug_agent.calls
        )
        return MAGEResult(
            task=task,
            source=winner.source,
            internal_score=winner.score,
            transcript=transcript,
        )
