"""The MAGE engine: the five-step workflow (Fig. 1a) as a staged pipeline.

Step 1  testbench agent writes an optimized, checkpoint-logging
        testbench from the spec (plus golden hints when available);
Step 2  RTL agent writes the initial candidate (syntax loop, s=5);
Step 3  if the candidate fails, the judge reviews the testbench and
        orders regeneration when the testbench itself is wrong;
Step 4  high-temperature sampling of c candidates, simulation scoring,
        Top-K selection;
Step 5  checkpoint debugging with accept/rollback until s(r)=1 or the
        iteration cap.

Each step is a :class:`~repro.core.pipeline.Stage` over a picklable
:class:`~repro.core.pipeline.RunState`; progress is narrated as typed
events (:mod:`repro.core.events`) from which the legacy
:class:`~repro.core.transcript.RunTranscript` is derived.  Because the
runner adds no control flow, the staged form issues exactly the same
LLM calls in the same order as the old imperative loop -- outputs are
bit-identical at fixed seeds.  States checkpoint and resume mid-run
(:meth:`MAGE.start_state` / :func:`run_mage_state` / :func:`mage_result`).

The engine never sees the benchmark's golden testbench; final success
is judged externally (``repro.evaluation``) exactly like VerilogEval
scores submissions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.team import AgentTeam
from repro.core.config import MAGEConfig
from repro.core.debug_loop import (
    DebugWork,
    apply_round,
    debug_candidates,
    draw_trials,
)
from repro.core.events import (
    CandidateScored,
    DebugRound,
    DebugSummary,
    EarlyFinish,
    Event,
    EventSink,
    InitialGenerated,
    ListSink,
    RunFinished,
    RunStarted,
    SamplingSummary,
    StageFinished,
    TestbenchReady,
    TestbenchRegenerated,
    TestbenchVerdict,
    ambient_sink,
    as_sink,
)
from repro.core.pipeline import (
    DONE,
    Pipeline,
    ProgramSpec,
    RunProgram,
    RunState,
    Stage,
    start_program,
)
from repro.core.sampling import (
    SampleWork,
    generate_candidates,
    rank_candidates,
    sample_and_rank,
)
from repro.core.scoring import ScoredCandidate, best_candidate
from repro.core.task import DesignTask
from repro.core.transcript import RunTranscript, transcript_from_events
from repro.llm.factory import build_llm
from repro.llm.interface import LLMClient

_SINGLE_AGENT_PROMPT = (
    "You are a single engineering agent handling "
    "specification analysis, testbench writing, RTL "
    "design, scoring decisions, and debugging in one "
    "continuous conversation."
)


@dataclass
class MAGEResult:
    """Outcome of one engine run."""

    task: DesignTask
    source: str
    internal_score: float  # against the *optimized* testbench
    transcript: RunTranscript
    events: list[Event] = field(default_factory=list)

    @property
    def internal_pass(self) -> bool:
        return self.internal_score >= 1.0


# ----------------------------------------------------------------------
# Stage functions.  Module-level (not bound methods) so checkpointed
# states stay process-portable; everything they need lives in
# ``state.data``: config (seed-bound), team, task, golden_tb_hint, and
# the values earlier stages produced.
# ----------------------------------------------------------------------


def _stage_testbench(state: RunState, emit) -> None:
    """Step 1: optimized testbench."""
    data = state.data
    config: MAGEConfig = data["config"]
    team: AgentTeam = data["team"]
    tb_text, testbench = team.tb.generate(
        data["task"], config.judge_params, golden_hint=data["golden_tb_hint"]
    )
    data["tb_text"], data["testbench"] = tb_text, testbench
    emit(TestbenchReady(total_checks=testbench.total_checks))


def _stage_initial(state: RunState, emit) -> None:
    """Step 2: initial RTL (syntax loop inside), scored."""
    data = state.data
    config: MAGEConfig = data["config"]
    team: AgentTeam = data["team"]
    task: DesignTask = data["task"]
    source, clean = team.rtl.generate_initial(
        task, data["tb_text"], config.initial_generation
    )
    emit(InitialGenerated(clean=clean))
    initial = ScoredCandidate(
        source, team.judge.score(source, data["testbench"], task.top)
    )
    data["initial"] = initial
    emit(
        CandidateScored(
            origin="initial", score=initial.score, passed=initial.passed
        )
    )


def _stage_arbitrate(state: RunState, emit) -> str | None:
    """Step 3: testbench arbitration (and the direct-pass short-circuit)."""
    data = state.data
    config: MAGEConfig = data["config"]
    team: AgentTeam = data["team"]
    task: DesignTask = data["task"]
    initial: ScoredCandidate = data["initial"]
    regens = 0
    while not initial.passed and regens < config.max_tb_regens:
        verdict = team.judge.review_testbench(
            task, data["tb_text"], initial.report, config.judge_params
        )
        if verdict.correct:
            emit(TestbenchVerdict(correct=True, rationale=verdict.rationale))
            break
        regens += 1
        emit(TestbenchVerdict(correct=False, rationale=verdict.rationale))
        tb_text, testbench = team.tb.generate(
            task,
            config.judge_params,
            golden_hint=data["golden_tb_hint"],
            reason=verdict.rationale,
        )
        data["tb_text"], data["testbench"] = tb_text, testbench
        emit(TestbenchReady(total_checks=testbench.total_checks, regen_index=regens))
        initial = ScoredCandidate(
            initial.source, team.judge.score(initial.source, testbench, task.top)
        )
        data["initial"] = initial
        emit(TestbenchRegenerated(regen_index=regens, rescored=initial.score))
    data["tb_regens"] = regens
    if initial.passed:
        data["winner"] = initial
        emit(EarlyFinish(reason="initial-pass"))
        return DONE
    return None


def _stage_sample(state: RunState, emit) -> str | None:
    """Step 4: high-temperature sampling and ranking.

    A rollout scheduler may have already run this stage's LLM half
    (:func:`mage_sample_plan`) and scored the candidates in a coalesced
    wave; in that case the pre-generated sources and their reports are
    waiting in ``state.data`` and the stage only ranks and emits --
    producing exactly the events (and Top-K selection) an inline run
    would, since both paths share :func:`rank_candidates`.
    """
    data = state.data
    config: MAGEConfig = data["config"]
    team: AgentTeam = data["team"]
    task: DesignTask = data["task"]
    sources = data.pop("rollout_sources", None)
    reports = data.pop("rollout_reports", None)
    parked_events = data.pop("rollout_gateway_events", ())
    data.pop("rollout_call_debt", None)  # the probe now sees the raw counter
    if sources is not None:
        # Generation ran out-of-band under the scheduler; its gateway
        # accounting events were parked on the state.  Emit them now,
        # first -- exactly where an inline run's generation calls would
        # have placed them (before any CandidateScored).
        for event in parked_events:
            emit(event)
        if reports is None:
            # Generation ran out-of-band but the reports never arrived.
            # Re-sampling would double the LLM calls and silently break
            # the determinism contract, so fail loudly instead.
            raise ValueError(
                "rollout injection incomplete: pre-generated sources "
                "without scored reports"
            )
        outcome = rank_candidates(
            list(sources), list(reports), config, extra=[data["initial"]]
        )
    else:
        outcome = sample_and_rank(
            task,
            data["tb_text"],
            data["testbench"],
            team.rtl,
            team.judge,
            config,
            extra=[data["initial"]],
        )
    for index, candidate in enumerate(outcome.candidates[1:]):
        emit(
            CandidateScored(
                origin="sampled",
                score=candidate.score,
                passed=candidate.passed,
                index=index,
            )
        )
    emit(
        SamplingSummary(
            pool_scores=tuple(outcome.scores),
            selected_scores=tuple(c.score for c in outcome.selected),
        )
    )
    data["selected"] = outcome.selected
    if any(c.passed for c in outcome.selected):
        data["winner"] = best_candidate(outcome.selected)
        emit(EarlyFinish(reason="sampled-pass"))
        return DONE
    return None


def _stage_debug(state: RunState, emit) -> None:
    """Step 5: checkpoint debugging with rollback.

    A rollout scheduler may have already driven the whole debug loop
    out-of-band (:func:`mage_debug_plan` / :func:`mage_debug_step`,
    with trial scorings coalesced into shared waves); in that case the
    accumulated rounds are waiting in ``state.data`` and the stage only
    replays them into the event stream -- round rows, parked gateway
    events, and the final summary land exactly where an inline run
    would put them.
    """
    data = state.data
    config: MAGEConfig = data["config"]
    team: AgentTeam = data["team"]
    record = data.pop("rollout_debug", None)
    data.pop("rollout_debug_call_debt", None)  # probe now sees the raw counter
    if record is not None:
        if not record.get("complete"):
            # Replaying a half-driven loop would silently drop rounds
            # (and their LLM calls) from the stream; fail loudly.
            raise ValueError(
                "rollout debug injection incomplete: staged rounds were "
                "not driven to completion"
            )
        round_scores = record["round_scores"]
        round_events = record["round_events"]
        emit(DebugRound(round_index=0, scores=tuple(round_scores[0])))
        for index, scores in enumerate(round_scores[1:], start=1):
            # Each round's trial-drawing gateway events precede its row,
            # exactly where the inline loop's LLM calls would emit them.
            for event in round_events[index - 1]:
                emit(event)
            emit(DebugRound(round_index=index, scores=tuple(scores)))
        winner = best_candidate(record["survivors"])
        data["winner"] = winner
        emit(
            DebugSummary(
                rounds=len(round_scores) - 1, best_score=winner.score
            )
        )
        return

    def on_round(index: int, scores: list[float]) -> None:
        emit(DebugRound(round_index=index, scores=tuple(scores)))

    outcome = debug_candidates(
        data["task"],
        data["testbench"],
        data["selected"],
        team.debug,
        team.judge,
        config,
        on_round=on_round,
    )
    winner = outcome.best
    data["winner"] = winner
    emit(
        DebugSummary(
            rounds=len(outcome.round_scores) - 1, best_score=winner.score
        )
    )


def _team_calls(state: RunState) -> int:
    # ``rollout_call_debt`` holds LLM calls a rollout scheduler spent
    # pre-generating Step-4 candidates while the state was suspended;
    # ``rollout_debug_call_debt`` the calls spent drawing Step-5 debug
    # trials the same way.  Subtracting both here (and clearing each
    # inside its stage) keeps the per-stage call accounting identical
    # to an inline run: generation calls land in step4's StageFinished
    # and trial calls in step5's, not in whichever stage happened to be
    # probed while the state was suspended.
    return (
        state.data["team"].llm_calls
        - state.data.get("rollout_call_debt", 0)
        - state.data.get("rollout_debug_call_debt", 0)
    )


def mage_sample_plan(state: RunState) -> SampleWork | None:
    """Run Step 4's LLM half on a suspended state; return the sim work.

    Called by a rollout scheduler on a state paused just before
    ``step4``: draws the c high-temperature candidates in the run's own
    LLM-call order (so batched runs issue exactly the calls a serial
    run would, in the same order), parks the sources on the state, and
    returns the pure-simulation :class:`~repro.core.sampling.SampleWork`
    the scheduler coalesces across runs.  Records the call debt so the
    stage accounting stays identical to an inline run.
    """
    data = state.data
    if state.finished or "initial" not in data:
        return None
    config: MAGEConfig = data["config"]
    team: AgentTeam = data["team"]
    before = team.llm_calls
    # Generation happens outside any pipeline stage here, so no ambient
    # sink is installed; collect the gateway's accounting events and
    # park them for ``_stage_sample`` to emit in the inline position.
    collector = ListSink()
    with ambient_sink(collector):
        sources = generate_candidates(
            data["task"], data["tb_text"], team.rtl, config
        )
    data["rollout_sources"] = tuple(sources)
    data["rollout_gateway_events"] = tuple(collector.events)
    data["rollout_call_debt"] = team.llm_calls - before
    return SampleWork(
        sources=tuple(sources),
        testbench=data["testbench"],
        top=data["task"].top,
    )


def _next_debug_round(state: RunState) -> DebugWork | None:
    """Draw the next staged debug round, or mark the loop complete.

    Mirrors the inline loop's control flow exactly: stop when an
    incumbent passes or the iteration budget is spent; otherwise draw
    one trial per active incumbent (serial, in-state LLM-call order,
    gateway events parked per round) and hand the pure simulation work
    back to the scheduler.  An empty round (every incumbent errored)
    still consumes an iteration and appends an unchanged score row,
    just like the inline loop.
    """
    data = state.data
    record = data["rollout_debug"]
    config: MAGEConfig = data["config"]
    team: AgentTeam = data["team"]
    survivors: list[ScoredCandidate] = record["survivors"]
    if record["iterations_left"] <= 0 or any(c.passed for c in survivors):
        record["complete"] = True
        record["pending"] = None
        return None
    record["iterations_left"] -= 1
    before = team.llm_calls
    collector = ListSink()
    with ambient_sink(collector):
        trials = draw_trials(data["task"], survivors, team.debug, config)
    record["round_events"].append(tuple(collector.events))
    record["pending"] = trials
    data["rollout_debug_call_debt"] = (
        data.get("rollout_debug_call_debt", 0) + team.llm_calls - before
    )
    return DebugWork(
        sources=tuple(source for _, source in trials),
        testbench=data["testbench"],
        top=data["task"].top,
    )


def mage_debug_plan(state: RunState) -> DebugWork | None:
    """Start Step 5's staged form on a state suspended before ``step5``.

    Seeds the round record (round 0 is the pre-debug selection, exactly
    as :func:`~repro.core.debug_loop.debug_candidates` records it) and
    draws the first round's trials.  Returns None when there is nothing
    to debug -- the state is finished, sampling never ran, or the loop
    terminates immediately -- in which case advancing through ``step5``
    replays whatever was recorded.
    """
    data = state.data
    if state.finished or "selected" not in data:
        return None
    config: MAGEConfig = data["config"]
    selected: list[ScoredCandidate] = data["selected"]
    data["rollout_debug"] = {
        "survivors": list(selected),
        "round_scores": [[c.score for c in selected]],
        "round_events": [],
        "pending": None,
        "iterations_left": config.debug_iterations,
        "complete": False,
    }
    return _next_debug_round(state)


def mage_debug_step(state: RunState, reports: list) -> DebugWork | None:
    """Feed one staged round's trial reports back; draw the next round.

    ``reports`` are the wave scorings of the pending trials, in trial
    order -- the same pure simulations the inline loop's executor map
    would have produced, so the accept/rollback update is bit-identical.
    """
    data = state.data
    record = data["rollout_debug"]
    trials: list[tuple[int, str]] = record.get("pending") or []
    record["pending"] = None
    record["survivors"] = apply_round(
        record["survivors"], trials, list(reports)
    )
    record["round_scores"].append([c.score for c in record["survivors"]])
    return _next_debug_round(state)


def mage_extract(state: RunState) -> str:
    """The final source of a finished MAGE-family state."""
    winner: ScoredCandidate = state.data["winner"]
    return winner.source


def mage_pipeline() -> Pipeline:
    """The five-step workflow as a declarative stage list."""
    return Pipeline(
        "mage",
        [
            Stage("step1", _stage_testbench),
            Stage("step2", _stage_initial),
            Stage("step3", _stage_arbitrate),
            Stage("step4", _stage_sample),
            Stage("step5", _stage_debug),
        ],
        calls_probe=_team_calls,
    )


class _StateRecorder:
    """Mirrors every emitted event into ``state.data["events"]`` so a
    checkpointed state carries its full history (transcripts rebuild
    from it after resume, even in another process)."""

    def __init__(self, state: RunState):
        self.events: list[Event] = state.data.setdefault("events", [])

    def emit(self, event: Event) -> None:
        self.events.append(event)


def run_mage_state(
    state: RunState,
    sink: EventSink | None = None,
    stop_after: str | None = None,
    checkpoint=None,
) -> RunState:
    """Execute (or resume) a MAGE run state.

    Fresh states get a :class:`~repro.core.events.RunStarted` event;
    finishing states get :class:`~repro.core.events.RunFinished` with
    the LLM-call and wall-clock totals.  Every event is recorded in the
    state itself and forwarded to ``sink``.
    """
    recorder = _StateRecorder(state)
    external = as_sink(sink)

    def emit(event: Event) -> None:
        recorder.emit(event)
        external.emit(event)

    if state.next_stage == 0 and not recorder.events:
        config: MAGEConfig = state.data["config"]
        emit(
            RunStarted(
                system=f"mage[{config.model}]",
                task_name=state.data["task"].name,
                seed=state.seed,
            )
        )
    mage_pipeline().run(
        state, sink=emit, stop_after=stop_after, checkpoint=checkpoint
    )
    if state.finished and not state.data.get("run_finished"):
        winner: ScoredCandidate = state.data["winner"]
        seconds = sum(
            e.seconds for e in recorder.events if isinstance(e, StageFinished)
        )
        state.data["run_finished"] = True
        emit(
            RunFinished(
                score=winner.score,
                passed=winner.passed,
                llm_calls=state.data["team"].llm_calls,
                seconds=seconds,
            )
        )
    return state


def mage_result(state: RunState) -> MAGEResult:
    """Assemble the :class:`MAGEResult` of a finished state."""
    if not state.finished:
        raise ValueError(
            f"run state is not finished (next stage index {state.next_stage})"
        )
    winner: ScoredCandidate = state.data["winner"]
    events = list(state.data.get("events", []))
    task: DesignTask = state.data["task"]
    return MAGEResult(
        task=task,
        source=winner.source,
        internal_score=winner.score,
        transcript=transcript_from_events(events, task_name=task.name),
        events=events,
    )


class MAGE:
    """The multi-agent engine.

    ``single_agent=True`` in the config reproduces the Table III
    ablation: all four roles share one conversation history and the
    model profile is pollution-penalised.
    """

    def __init__(self, config: MAGEConfig | None = None, llm: LLMClient | None = None):
        self.config = config or MAGEConfig()
        self.llm = build_llm(
            self.config.model, llm=llm, merged_history=self.config.single_agent
        )
        self.team = AgentTeam.build(
            self.llm,
            shared_prompt=(
                _SINGLE_AGENT_PROMPT if self.config.single_agent else None
            ),
        )
        # Role aliases (the pre-pipeline attribute names).
        self.tb_agent = self.team.tb
        self.rtl_agent = self.team.rtl
        self.judge = self.team.judge
        self.debug_agent = self.team.debug

    # ------------------------------------------------------------------

    def start_state(
        self,
        task: DesignTask,
        golden_tb_hint: str | None = None,
        seed: int = 0,
    ) -> RunState:
        """A fresh, checkpointable run state bound to this engine's team."""
        return RunState(
            seed=seed,
            data={
                "config": self.config.with_seed(seed),
                "team": self.team,
                "task": task,
                "golden_tb_hint": golden_tb_hint,
            },
        )

    def start_run(
        self,
        task: DesignTask,
        golden_tb_hint: str | None = None,
        seed: int = 0,
    ) -> RunProgram:
        """A resumable program for one run (see :class:`ProgramSpec`).

        The spec travels inside the state, so a checkpointed run can be
        restored and driven anywhere -- the hook rollout schedulers use
        to suspend states at Step 4 and gang-schedule the sampling.
        """
        state = self.start_state(task, golden_tb_hint=golden_tb_hint, seed=seed)
        spec = ProgramSpec(
            pipeline_factory=mage_pipeline,
            system=f"mage[{self.config.model}]",
            task_name=task.name,
            extractor=mage_extract,
            runner=run_mage_state,
            sample_stage="step4",
            sample_plan=mage_sample_plan,
            debug_stage="step5",
            debug_plan=mage_debug_plan,
            debug_step=mage_debug_step,
        )
        return start_program(spec, state)

    def solve(
        self,
        task: DesignTask,
        golden_tb_hint: str | None = None,
        seed: int = 0,
        sink: EventSink | None = None,
    ) -> MAGEResult:
        """Run the five-step workflow on one task.

        ``sink`` subscribes to the typed event stream (stage
        boundaries, candidate scorings, debug rounds, accounting).
        """
        state = self.start_state(task, golden_tb_hint=golden_tb_hint, seed=seed)
        run_mage_state(state, sink=sink)
        return mage_result(state)
