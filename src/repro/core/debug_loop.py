"""Step 5: RTL debugging with the state-checkpoint mechanism.

For each selected candidate r*, run debug trials D(r*) and keep the
better of {D(r*), r*} by score -- the Eq. 4 accept/rollback update --
until some candidate reaches s(r) = 1 or the iteration limit.
Feedback is the Eq. 5/6 checkpoint window (or the aggregate log in the
ablated configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.agents.debug_agent import DebugAgent
from repro.agents.judge_agent import JudgeAgent
from repro.core.config import MAGEConfig
from repro.core.scoring import ScoredCandidate, best_candidate, better
from repro.core.task import DesignTask
from repro.runtime.context import get_runtime
from repro.tb.stimulus import Testbench


@dataclass
class DebugOutcome:
    """Step-5 record: the surviving candidates and per-round mean scores."""

    survivors: list[ScoredCandidate] = field(default_factory=list)
    round_scores: list[list[float]] = field(default_factory=list)

    @property
    def best(self) -> ScoredCandidate:
        return best_candidate(self.survivors)


@dataclass(frozen=True)
class DebugWork:
    """One debug round's simulations, detached for gang-scheduling.

    The sibling of :class:`repro.core.sampling.SampleWork`: the rollout
    scheduler coalesces the ``sources`` of many concurrent runs into
    shared deduplicated score waves, then feeds the reports back through
    the program's ``debug_step`` hook.  ``testbench`` is the run's
    *working* (optimized) testbench -- the same one the inline loop
    scores against -- not the golden one.
    """

    sources: tuple[str, ...]
    testbench: Testbench
    top: str


def draw_trials(
    task: DesignTask,
    survivors: list[ScoredCandidate],
    debug_agent: DebugAgent,
    config: MAGEConfig,
) -> list[tuple[int, str]]:
    """Phase 1 of one debug round: draw one trial per active incumbent.

    Serial on purpose -- LLM-call ordering is part of the
    reproducibility contract, so trials are never reordered by worker
    count.  Incumbents that already pass, or whose report carries a
    compile/elaboration error (no signal to debug against), are
    skipped, exactly as the inline loop does.
    """
    trials: list[tuple[int, str]] = []
    for index, incumbent in enumerate(survivors):
        if incumbent.passed or incumbent.report.error is not None:
            continue
        trial_source = debug_agent.debug(
            task,
            incumbent.source,
            incumbent.report,
            config.debug_params,
            use_checkpoints=config.use_checkpoints,
            window=config.checkpoint_window,
        )
        trials.append((index, trial_source))
    return trials


def apply_round(
    survivors: list[ScoredCandidate],
    trials: list[tuple[int, str]],
    reports: list,
) -> list[ScoredCandidate]:
    """Phase 2 of one debug round: the Eq. 4 accept/rollback update.

    ``reports`` are the trial scorings in ``trials`` order, however they
    were produced (inline executor map, or a scheduler score wave --
    both run the same pure simulation, so results are bit-identical).
    """
    updated = list(survivors)
    for (index, trial_source), report in zip(trials, reports):
        trial = ScoredCandidate(trial_source, report)
        updated[index] = better(survivors[index], trial)
    return updated


def debug_candidates(
    task: DesignTask,
    testbench: Testbench,
    selected: list[ScoredCandidate],
    debug_agent: DebugAgent,
    judge: JudgeAgent,
    config: MAGEConfig,
    on_round: Callable[[int, list[float]], None] | None = None,
) -> DebugOutcome:
    """Iteratively refine the Top-K candidate set.

    ``on_round(index, scores)`` streams each appended row of
    ``round_scores`` as it happens (round 0 is the pre-debug selection),
    so event sinks see debugging progress live.
    """
    outcome = DebugOutcome(survivors=list(selected))
    outcome.round_scores.append([c.score for c in outcome.survivors])
    if on_round is not None:
        on_round(0, outcome.round_scores[0])
    for _round in range(config.debug_iterations):
        if any(c.passed for c in outcome.survivors):
            break
        trials = draw_trials(task, outcome.survivors, debug_agent, config)
        # Score the trials -- pure simulation, fanned across the runtime
        # executor with input-order results.
        reports = get_runtime().executor.map(
            lambda source: judge.score(source, testbench, task.top),
            [source for _, source in trials],
        )
        outcome.survivors = apply_round(outcome.survivors, trials, reports)
        outcome.round_scores.append([c.score for c in outcome.survivors])
        if on_round is not None:
            on_round(len(outcome.round_scores) - 1, outcome.round_scores[-1])
    return outcome
