"""The unit of work MAGE operates on: a natural-language design task."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DesignTask:
    """A spec-to-RTL task, as a benchmark row or a user request.

    ``kind``/``clock`` describe the interface contract the testbench
    needs (combinational vs clocked and the clock port name); real specs
    state this in prose, and the testbench agent needs it structurally.
    """

    spec: str
    top: str
    kind: str  # "comb" | "clocked"
    clock: str | None = None
    name: str = "task"

    def __post_init__(self) -> None:
        if self.kind not in ("comb", "clocked"):
            raise ValueError(f"bad task kind {self.kind!r}")
        if self.kind == "clocked" and not self.clock:
            raise ValueError("clocked task needs a clock name")

    @staticmethod
    def from_problem(problem) -> "DesignTask":
        """Build a task from an evalset problem (spec and interface only)."""
        return DesignTask(
            spec=problem.spec,
            top=problem.top,
            kind=problem.kind,
            clock=problem.clock,
            name=problem.id,
        )
