"""Typed run events and pluggable sinks.

Every solve path (MAGE and the baselines) executes as a staged
:class:`~repro.core.pipeline.Pipeline` that narrates progress by
emitting the frozen dataclasses below -- stage boundaries, candidate
scorings, testbench arbitration, debug rounds, LLM-call and wall-clock
accounting -- instead of appending free-form transcript strings.
Consumers subscribe by passing any object with an ``emit(event)``
method (or a plain callable wrapped in :class:`CallbackSink`):

- :class:`~repro.core.transcript.TranscriptBuilder` folds the stream
  back into the legacy :class:`~repro.core.transcript.RunTranscript`
  (the paper-figure extractors read those fields);
- :class:`StreamSink` renders one human line per event for the CLI's
  live ``run``/``--progress`` modes;
- :class:`ListSink` records the stream verbatim (what the solve-cell
  cache stores next to the source).

Events are immutable and picklable: they cross process boundaries
inside cached solve cells and checkpointed run states.  They are also
JSON round-trippable (:meth:`Event.to_json` / :meth:`Event.from_json`):
the service wire protocol ships the exact event stream a local run
would produce, so a remote client rebuilds transcripts and figures
from frames alone -- no transcript parsing.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Any, Callable, ClassVar, Protocol, runtime_checkable

# kind -> concrete event class; populated as subclasses are defined.
EVENT_TYPES: dict[str, type["Event"]] = {}


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


def _from_jsonable(value: Any) -> Any:
    # Events carry no list fields; every JSON array was a tuple.
    if isinstance(value, list):
        return tuple(_from_jsonable(item) for item in value)
    return value


@dataclass(frozen=True)
class Event:
    """Base event: ``kind`` discriminates, ``render()`` humanises."""

    kind: ClassVar[str] = "event"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        EVENT_TYPES[cls.kind] = cls

    def render(self) -> str:
        pairs = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        )
        return f"{self.kind}({pairs})"

    def to_json(self) -> dict:
        """JSON-ready payload: ``kind`` plus every field (tuples as lists)."""
        payload: dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            payload[f.name] = _jsonable(getattr(self, f.name))
        return payload

    @staticmethod
    def from_json(payload: dict) -> "Event":
        """Rebuild the concrete event from a :meth:`to_json` payload.

        Unknown fields are ignored (forward compatibility) and a
        missing field falls back to its dataclass default, so old
        clients can read frames from newer servers and vice versa.
        Raises ``ValueError`` for an unknown kind or a payload missing
        a required (defaultless) field.
        """
        kind = payload.get("kind")
        cls = EVENT_TYPES.get(kind)
        if cls is None:
            raise ValueError(f"unknown event kind {kind!r}")
        kwargs = {
            f.name: _from_jsonable(payload[f.name])
            for f in fields(cls)
            if f.name in payload
        }
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ValueError(f"bad {kind!r} event payload: {exc}") from exc


# ----------------------------------------------------------------------
# Run-level events (one engine/baseline solve).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunStarted(Event):
    """A solve pipeline began on one task."""

    kind: ClassVar[str] = "run-started"
    system: str
    task_name: str
    seed: int

    def render(self) -> str:
        return f"run started: {self.system} on {self.task_name} (seed {self.seed})"


@dataclass(frozen=True)
class StageStarted(Event):
    kind: ClassVar[str] = "stage-started"
    stage: str
    index: int

    def render(self) -> str:
        return f"stage {self.stage} started"


@dataclass(frozen=True)
class StageFinished(Event):
    """Stage boundary with wall-clock and LLM-call accounting."""

    kind: ClassVar[str] = "stage-finished"
    stage: str
    index: int
    seconds: float
    llm_calls: int = 0  # completions consumed during this stage

    def render(self) -> str:
        return (
            f"stage {self.stage} finished in {self.seconds:.3f}s "
            f"({self.llm_calls} LLM calls)"
        )


@dataclass(frozen=True)
class TestbenchReady(Event):
    """Step 1 (or a Step-3 regeneration) produced a parseable testbench."""

    kind: ClassVar[str] = "testbench-ready"
    total_checks: int
    regen_index: int = 0  # 0 = the Step-1 original

    def render(self) -> str:
        origin = "regenerated" if self.regen_index else "generated"
        return f"testbench {origin}: {self.total_checks} checkpointed checks"


@dataclass(frozen=True)
class InitialGenerated(Event):
    """Step 2 produced the initial RTL candidate."""

    kind: ClassVar[str] = "initial-generated"
    clean: bool  # syntax loop converged within s=5 rounds

    def render(self) -> str:
        return "initial RTL generated" + (
            "" if self.clean else " (syntax errors remain)"
        )


@dataclass(frozen=True)
class CandidateScored(Event):
    """One candidate simulated against the optimized testbench."""

    kind: ClassVar[str] = "candidate-scored"
    origin: str  # "initial" | "sampled" | "debug"
    score: float
    passed: bool
    index: int = 0

    def render(self) -> str:
        return f"{self.origin} candidate {self.index} scored {self.score:.3f}"


@dataclass(frozen=True)
class TestbenchVerdict(Event):
    """Step 3: the judge reviewed the testbench."""

    kind: ClassVar[str] = "testbench-verdict"
    correct: bool
    rationale: str = ""

    def render(self) -> str:
        return (
            "judge upheld the testbench"
            if self.correct
            else f"judge rejected the testbench: {self.rationale}"
        )


@dataclass(frozen=True)
class TestbenchRegenerated(Event):
    """Step 3: a fresh testbench, with the initial candidate rescored."""

    kind: ClassVar[str] = "testbench-regenerated"
    regen_index: int
    rescored: float

    def render(self) -> str:
        return f"regenerated testbench; initial rescored {self.rescored:.3f}"


@dataclass(frozen=True)
class SamplingSummary(Event):
    """Step 4 outcome: the scored pool and the Top-K selection."""

    kind: ClassVar[str] = "sampling-summary"
    pool_scores: tuple[float, ...]
    selected_scores: tuple[float, ...]

    def render(self) -> str:
        best = max(self.pool_scores, default=0.0)
        return (
            f"sampled {len(self.pool_scores)} candidates; best {best:.3f}; "
            f"kept top-{len(self.selected_scores)}"
        )


@dataclass(frozen=True)
class DebugRound(Event):
    """Step 5: survivor scores after one accept/rollback round.

    Round 0 is the pre-debug selection (matching the leading entry of
    the legacy ``debug_round_scores``).
    """

    kind: ClassVar[str] = "debug-round"
    round_index: int
    scores: tuple[float, ...]

    def render(self) -> str:
        rendered = ", ".join(f"{s:.3f}" for s in self.scores)
        return f"debug round {self.round_index}: [{rendered}]"


@dataclass(frozen=True)
class DebugSummary(Event):
    kind: ClassVar[str] = "debug-summary"
    rounds: int
    best_score: float

    def render(self) -> str:
        return (
            f"debugging finished after {self.rounds} rounds; "
            f"best score {self.best_score:.3f}"
        )


@dataclass(frozen=True)
class EarlyFinish(Event):
    """The run short-circuited before later stages."""

    kind: ClassVar[str] = "early-finish"
    reason: str  # "initial-pass" | "sampled-pass"

    def render(self) -> str:
        if self.reason == "initial-pass":
            return "initial candidate passed; skipping steps 4-5"
        if self.reason == "sampled-pass":
            return "a sampled candidate passed; skipping step 5"
        return f"finished early: {self.reason}"


@dataclass(frozen=True)
class RunFinished(Event):
    """Terminal event: the winner plus total accounting."""

    kind: ClassVar[str] = "run-finished"
    score: float
    passed: bool
    llm_calls: int
    seconds: float
    stage: str = "done"

    def render(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"run finished: {verdict} score {self.score:.3f} "
            f"({self.llm_calls} LLM calls, {self.seconds:.3f}s)"
        )


@dataclass(frozen=True)
class GatewayCall(Event):
    """One LLM gateway call with token/cost accounting.

    Emitted by the :mod:`repro.llm.gateway` client for every completion
    request it serves -- live, recorded, or replayed from a cassette.
    The fields are deterministic functions of the request and the
    serving backend (no wall-clock, no attempt counts), so a cassette
    replay emits the *bit-identical* event the recording run emitted:
    transcripts, solve-cell records, and the parity matrix stay exact
    across record/replay.  Operational counters (retries, fallbacks,
    rate-limit waits) live in the gateway's process-global stats
    instead, surfaced through ``StatsReply`` and the ``stats`` CLI.
    """

    kind: ClassVar[str] = "gateway-call"
    model: str
    backend: str
    role: str = ""
    n: int = 1
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost: float = 0.0

    def render(self) -> str:
        role = f" [{self.role}]" if self.role else ""
        return (
            f"gateway {self.model}{role} via {self.backend}: "
            f"{self.n} completion(s), "
            f"{self.prompt_tokens}+{self.completion_tokens} tokens"
        )


# ----------------------------------------------------------------------
# Batch-level events (evaluate_many streaming).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CellFinished(Event):
    """One (problem, run) evaluation cell completed (completion order)."""

    kind: ClassVar[str] = "cell-finished"
    problem_id: str
    run_index: int
    passed: bool
    score: float
    seconds: float
    solve_cached: bool = False

    def render(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        cached = " [cached]" if self.solve_cached else ""
        return (
            f"{self.problem_id} run {self.run_index}: {verdict} "
            f"score {self.score:.3f} ({self.seconds:.2f}s){cached}"
        )


@dataclass(frozen=True)
class BatchFinished(Event):
    """The whole evaluation grid completed."""

    kind: ClassVar[str] = "batch-finished"
    cells: int
    seconds: float

    def render(self) -> str:
        return f"batch finished: {self.cells} cells in {self.seconds:.2f}s"


@dataclass(frozen=True)
class WaveScheduled(Event):
    """The rollout scheduler dispatched one executor wave.

    Batch-level telemetry only: these are emitted to the scheduler's
    batch sink, never into per-run event streams, so the per-run parity
    contract is untouched no matter how waves are sized.
    """

    kind: ClassVar[str] = "wave-scheduled"
    phase: str  # open | score | resume | debug-score | debug-step | close
    width: int  # concurrent runs in the wave
    items: int  # payloads dispatched to the executor
    adaptive: bool = False

    def render(self) -> str:
        mode = " [adaptive]" if self.adaptive else ""
        return (
            f"wave {self.phase}{mode}: {self.width} run(s), "
            f"{self.items} item(s)"
        )


@dataclass(frozen=True)
class SpeculationOutcome(Event):
    """Speculative-simulation tally for one scheduler run (batch-level).

    Speculation only warms the simulation cache ahead of the close
    phase; ``mispredicted`` counts discarded warm-ups.  Like
    :class:`WaveScheduled` this never enters per-run streams.
    """

    kind: ClassVar[str] = "speculation-outcome"
    launched: int
    used: int
    mispredicted: int
    already_cached: int = 0

    def render(self) -> str:
        return (
            f"speculation: launched {self.launched}, used {self.used}, "
            f"mispredicted {self.mispredicted}, "
            f"pre-cached {self.already_cached}"
        )


# ----------------------------------------------------------------------
# Sinks.
# ----------------------------------------------------------------------


@runtime_checkable
class EventSink(Protocol):
    """Anything that can receive the event stream."""

    def emit(self, event: Event) -> None: ...


class NullSink:
    """Discards everything (the default when nobody subscribes)."""

    def emit(self, event: Event) -> None:
        pass


NULL_SINK = NullSink()


class ListSink:
    """Records the stream verbatim (tests, caching, figures)."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)


class CallbackSink:
    """Adapts a plain callable to the sink protocol."""

    def __init__(self, fn: Callable[[Event], None]):
        self.fn = fn

    def emit(self, event: Event) -> None:
        self.fn(event)


class StreamSink:
    """Renders one line per event through ``write`` (CLI live streams).

    ``kinds`` filters the stream; None passes everything through.
    """

    def __init__(
        self,
        write: Callable[[str], None] = print,
        kinds: set[str] | None = None,
        prefix: str = "",
    ):
        self.write = write
        self.kinds = kinds
        self.prefix = prefix

    def emit(self, event: Event) -> None:
        if self.kinds is not None and event.kind not in self.kinds:
            return
        self.write(f"{self.prefix}{event.render()}")


class Broadcast:
    """Fans one stream out to several sinks, in order."""

    def __init__(self, *sinks: EventSink):
        self.sinks = [s for s in sinks if s is not None]

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)


def as_sink(
    target: EventSink | Callable[[Event], None] | None,
) -> EventSink:
    """Normalise a sink argument: sink, bare callable, or None."""
    if target is None:
        return NULL_SINK
    if hasattr(target, "emit"):
        return target
    return CallbackSink(target)


# ----------------------------------------------------------------------
# Ambient sink: how deep layers reach the run's event stream.
# ----------------------------------------------------------------------
#
# Stage functions receive ``emit`` explicitly, but code *below* them --
# the LLM gateway inside an agent inside a stage -- has no sink in its
# signature and must not grow one (the LLMClient protocol is
# deliberately sink-free).  The pipeline runner installs the active
# stage's emit as a thread-local ambient sink around every stage body;
# anything executing under it can narrate into the run's stream with
# :func:`emit_ambient`.  A stack (not a single slot) keeps nested runs
# sane, and thread-locality keeps concurrent cells' streams separate.

_AMBIENT = threading.local()


@contextmanager
def ambient_sink(target: EventSink | Callable[[Event], None] | None):
    """Install ``target`` as this thread's ambient event sink."""
    stack = getattr(_AMBIENT, "stack", None)
    if stack is None:
        stack = _AMBIENT.stack = []
    stack.append(as_sink(target))
    try:
        yield
    finally:
        stack.pop()


def emit_ambient(event: Event) -> bool:
    """Emit into the innermost ambient sink; False when none is active."""
    stack = getattr(_AMBIENT, "stack", None)
    if not stack:
        return False
    stack[-1].emit(event)
    return True
