"""Step 4: high-temperature RTL candidate sampling and ranking.

Implements Sec. III-B: sample c candidates from
P_T(r | p_sys, SP_i, TB_i) (Eq. 1), score each with the optimized
testbench (Eq. 2), and keep the Top-K (Eq. 3).  The key mechanism is
order statistics: temperature raises per-sample variance, and
simulation-based scoring harvests the right tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.judge_agent import JudgeAgent
from repro.agents.rtl_agent import RTLAgent
from repro.core.config import MAGEConfig
from repro.core.scoring import ScoredCandidate, select_top_k
from repro.core.task import DesignTask
from repro.runtime.context import get_runtime
from repro.tb.stimulus import Testbench


@dataclass
class SamplingOutcome:
    """Everything Step 4 produced (kept for figures and transcripts)."""

    candidates: list[ScoredCandidate] = field(default_factory=list)
    selected: list[ScoredCandidate] = field(default_factory=list)

    @property
    def scores(self) -> list[float]:
        return [c.score for c in self.candidates]

    @property
    def best_score(self) -> float:
        return max((c.score for c in self.candidates), default=0.0)


@dataclass(frozen=True)
class SampleWork:
    """The pure-simulation remainder of one run's Step 4.

    Produced by a pipeline's ``sample_plan`` hook after the candidate
    *generation* ran (LLM calls, in-state order): everything a scheduler
    needs to score the candidates anywhere -- including another process
    -- and hand the reports back.  Picklable by construction.
    """

    sources: tuple[str, ...]
    testbench: Testbench
    top: str


def generate_candidates(
    task: DesignTask,
    tb_text: str,
    rtl_agent: RTLAgent,
    config: MAGEConfig,
) -> list[str]:
    """The LLM half of Step 4: draw the c high-temperature candidates.

    Always called in the run's own LLM-call order (the determinism
    contract pins per-run call ordering), whether Step 4 runs inline or
    a rollout scheduler pre-generates before resuming the state.
    """
    count = config.candidates if config.use_sampling else 0
    if count <= 0:
        return []
    return rtl_agent.sample_candidates(task, tb_text, config.generation, count)


def rank_candidates(
    sources: list[str],
    reports: list,
    config: MAGEConfig,
    extra: list[ScoredCandidate] | None = None,
) -> SamplingOutcome:
    """The pure half of Step 4: pool the scored candidates, keep Top-K.

    ``reports[i]`` must be the simulation report of ``sources[i]``; the
    pairing (and therefore the ranking) is order-sensitive, which is why
    every scoring path returns reports in source order.
    """
    outcome = SamplingOutcome()
    if extra:
        outcome.candidates.extend(extra)
    for source, report in zip(sources, reports):
        outcome.candidates.append(ScoredCandidate(source, report))
    outcome.selected = select_top_k(outcome.candidates, config.top_k)
    return outcome


def sample_and_rank(
    task: DesignTask,
    tb_text: str,
    testbench: Testbench,
    rtl_agent: RTLAgent,
    judge: JudgeAgent,
    config: MAGEConfig,
    extra: list[ScoredCandidate] | None = None,
) -> SamplingOutcome:
    """Sample c candidates, score them, select the Top-K.

    ``extra`` carries already-scored candidates (the Step-2 initial RTL)
    into the ranking pool so sampling can only improve on them.
    """
    sources = generate_candidates(task, tb_text, rtl_agent, config)
    if sources:
        # Scoring is pure simulation (no LLM calls, no shared state), so
        # it fans out across the runtime executor; results come back in
        # source order, keeping the ranking bit-identical to serial.
        reports = get_runtime().executor.map(
            lambda source: judge.score(source, testbench, task.top), sources
        )
    else:
        reports = []
    return rank_candidates(sources, reports, config, extra=extra)
