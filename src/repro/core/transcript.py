"""Structured run records: the raw material of the paper's figures.

:class:`RunTranscript` is the legacy record the figure extractors and
the CLI read.  Since the pipeline refactor it is *derived* from the
typed event stream (:mod:`repro.core.events`): feed events to a
:class:`TranscriptBuilder` (it is itself an event sink) or call
:func:`transcript_from_events`, and the familiar stage-tagged log
lines and figure fields come out exactly as the old imperative engine
wrote them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.events import (
    CandidateScored,
    DebugRound,
    DebugSummary,
    EarlyFinish,
    Event,
    InitialGenerated,
    RunFinished,
    RunStarted,
    SamplingSummary,
    TestbenchReady,
    TestbenchRegenerated,
    TestbenchVerdict,
)


@dataclass
class TranscriptEvent:
    """One engine-level event (stage label plus human-readable note)."""

    stage: str
    note: str


@dataclass
class RunTranscript:
    """Everything observable about one MAGE run on one task.

    - ``initial_score``: Step-2 candidate score (Fig. 4a "without
      sampling");
    - ``candidate_scores``: Step-4 pool scores (Fig. 2 / Fig. 4a);
    - ``debug_round_scores``: per-round survivor scores (Fig. 4b);
    - ``tb_regens``: Step-3 regenerations that actually happened;
    - ``llm_calls``: total completions consumed.
    """

    task_name: str = ""
    events: list[TranscriptEvent] = field(default_factory=list)
    initial_score: float | None = None
    candidate_scores: list[float] = field(default_factory=list)
    selected_scores: list[float] = field(default_factory=list)
    debug_round_scores: list[list[float]] = field(default_factory=list)
    tb_regens: int = 0
    llm_calls: int = 0
    stage_reached: str = "init"

    def log(self, stage: str, note: str) -> None:
        self.events.append(TranscriptEvent(stage, note))
        self.stage_reached = stage

    def render(self) -> str:
        lines = [f"=== MAGE run: {self.task_name} ==="]
        for event in self.events:
            lines.append(f"[{event.stage}] {event.note}")
        return "\n".join(lines)


class TranscriptBuilder:
    """Event sink that folds the typed stream into a :class:`RunTranscript`.

    The mapping reproduces the pre-pipeline engine's transcript
    *byte-for-byte*: each typed event that used to be a
    ``transcript.log(...)`` call renders to the identical stage tag and
    note string, and the figure fields (``initial_score``,
    ``candidate_scores``, ``debug_round_scores``, ...) fill in from the
    same quantities.
    """

    def __init__(self, task_name: str = ""):
        self.transcript = RunTranscript(task_name=task_name)

    def emit(self, event: Event) -> None:
        t = self.transcript
        if isinstance(event, RunStarted):
            if not t.task_name:
                t.task_name = event.task_name
        elif isinstance(event, TestbenchReady):
            if event.regen_index == 0:
                t.log(
                    "step1",
                    f"testbench generated: {event.total_checks} "
                    "checkpointed checks",
                )
            # Regenerated testbenches are logged by the rescore event.
        elif isinstance(event, InitialGenerated):
            t.log(
                "step2",
                "initial RTL generated"
                + (
                    ""
                    if event.clean
                    else " (syntax errors remain after s=5 rounds)"
                ),
            )
        elif isinstance(event, CandidateScored):
            if event.origin == "initial" and t.initial_score is None:
                t.initial_score = event.score
                t.log("step2", f"initial candidate score {event.score:.3f}")
        elif isinstance(event, TestbenchVerdict):
            if event.correct:
                t.log("step3", "judge upheld the testbench")
            else:
                t.log(
                    "step3",
                    f"judge rejected the testbench: {event.rationale}",
                )
        elif isinstance(event, TestbenchRegenerated):
            t.tb_regens = max(t.tb_regens, event.regen_index)
            t.log(
                "step3",
                f"regenerated testbench; initial rescored {event.rescored:.3f}",
            )
        elif isinstance(event, SamplingSummary):
            t.candidate_scores = list(event.pool_scores)
            t.selected_scores = list(event.selected_scores)
            best = max(event.pool_scores, default=0.0)
            t.log(
                "step4",
                f"sampled {len(event.pool_scores)} candidates; "
                f"best {best:.3f}; kept top-{len(event.selected_scores)}",
            )
        elif isinstance(event, DebugRound):
            while len(t.debug_round_scores) <= event.round_index:
                t.debug_round_scores.append([])
            t.debug_round_scores[event.round_index] = list(event.scores)
        elif isinstance(event, DebugSummary):
            t.log(
                "step5",
                f"debugging finished after {event.rounds} "
                f"rounds; best score {event.best_score:.3f}",
            )
        elif isinstance(event, EarlyFinish):
            if event.reason == "initial-pass":
                t.log("done", "initial candidate passed; skipping steps 4-5")
            elif event.reason == "sampled-pass":
                t.log("done", "a sampled candidate passed; skipping step 5")
        elif isinstance(event, RunFinished):
            t.llm_calls = event.llm_calls


def transcript_from_events(
    events: Iterable[Event], task_name: str = ""
) -> RunTranscript:
    """Fold a recorded event stream into the legacy transcript."""
    builder = TranscriptBuilder(task_name=task_name)
    for event in events:
        builder.emit(event)
    return builder.transcript
