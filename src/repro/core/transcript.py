"""Structured run records: the raw material of the paper's figures."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TranscriptEvent:
    """One engine-level event (stage label plus human-readable note)."""

    stage: str
    note: str


@dataclass
class RunTranscript:
    """Everything observable about one MAGE run on one task.

    - ``initial_score``: Step-2 candidate score (Fig. 4a "without
      sampling");
    - ``candidate_scores``: Step-4 pool scores (Fig. 2 / Fig. 4a);
    - ``debug_round_scores``: per-round survivor scores (Fig. 4b);
    - ``tb_regens``: Step-3 regenerations that actually happened;
    - ``llm_calls``: total completions consumed.
    """

    task_name: str = ""
    events: list[TranscriptEvent] = field(default_factory=list)
    initial_score: float | None = None
    candidate_scores: list[float] = field(default_factory=list)
    selected_scores: list[float] = field(default_factory=list)
    debug_round_scores: list[list[float]] = field(default_factory=list)
    tb_regens: int = 0
    llm_calls: int = 0
    stage_reached: str = "init"

    def log(self, stage: str, note: str) -> None:
        self.events.append(TranscriptEvent(stage, note))
        self.stage_reached = stage

    def render(self) -> str:
        lines = [f"=== MAGE run: {self.task_name} ==="]
        for event in self.events:
            lines.append(f"[{event.stage}] {event.note}")
        return "\n".join(lines)
