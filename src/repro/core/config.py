"""Engine configuration with the paper's default parameters."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.llm.interface import SamplingParams


@dataclass(frozen=True)
class MAGEConfig:
    """All tunables of the MAGE workflow.

    Defaults follow the paper: c = 4 sampled candidates (Fig. 1c),
    Top-K = 2, at most 5 syntax-fix iterations, 5 debug iterations,
    checkpoint window L_W = 8, and the High Temperature evaluation
    setting (T = 0.85, top_p = 0.95).
    """

    model: str = "claude-3.5-sonnet"
    candidates: int = 4  # c, Step-4 sample size
    top_k: int = 2  # K, Eq. 3
    debug_iterations: int = 5  # Eq. 4 iteration limit
    max_tb_regens: int = 2  # Step-3 regeneration budget
    checkpoint_window: int = 8  # L_W, Eq. 6
    use_checkpoints: bool = True  # ablation switch (Fig. 3)
    use_sampling: bool = True  # ablation switch (Fig. 4a)
    single_agent: bool = False  # Table III merged-history ablation
    # Step 2: the initial candidate is drawn conservatively; temperature
    # is a Step-4 *sampling* mechanism in the paper (Sec. III-B), not a
    # knob on the first attempt.
    initial_generation: SamplingParams = SamplingParams(
        temperature=0.0, top_p=0.01, n=1
    )
    generation: SamplingParams = SamplingParams(  # Step-4 candidate sampling
        temperature=0.85, top_p=0.95, n=1
    )
    debug_params: SamplingParams = SamplingParams(
        temperature=0.4, top_p=0.95, n=1
    )
    judge_params: SamplingParams = SamplingParams(
        temperature=0.0, top_p=0.01, n=1
    )

    def with_seed(self, seed: int) -> "MAGEConfig":
        """Bind a run seed to every sampling call (reproducible runs)."""
        return replace(
            self,
            initial_generation=replace(self.initial_generation, seed=seed),
            generation=replace(self.generation, seed=seed),
            debug_params=replace(self.debug_params, seed=seed),
            judge_params=replace(self.judge_params, seed=seed),
        )

    @staticmethod
    def low_temperature(**kwargs) -> "MAGEConfig":
        """The paper's Low Temperature setting (T=0, top_p=0.01, n=1)."""
        return MAGEConfig(
            generation=SamplingParams(temperature=0.0, top_p=0.01, n=1),
            **kwargs,
        )

    @staticmethod
    def high_temperature(**kwargs) -> "MAGEConfig":
        """The paper's High Temperature setting (T=0.85, top_p=0.95)."""
        return MAGEConfig(
            generation=SamplingParams(temperature=0.85, top_p=0.95, n=1),
            **kwargs,
        )
