"""Reproduction of "MAGE: A Multi-Agent Engine for Automated RTL Code
Generation" (DAC 2025), with a pure-Python EDA substrate.

Public API tour:

>>> from repro import MAGE, MAGEConfig, DesignTask
>>> from repro.evalsets import get_problem
>>> problem = get_problem("cb_mux4")
>>> result = MAGE(MAGEConfig.high_temperature()).solve(
...     DesignTask.from_problem(problem))
>>> result.internal_pass
True

Packages:

- ``repro.hdl`` -- Verilog frontend + event-driven simulator;
- ``repro.tb`` -- testbenches, runner, WF-TextLog, state checkpoints;
- ``repro.llm`` -- LLM-agnostic interface + simulated LLM provider;
- ``repro.agents`` -- the four specialised agents;
- ``repro.core`` -- the five-step MAGE engine;
- ``repro.evalsets`` -- VerilogEval-style problem suites;
- ``repro.baselines`` -- Table II comparison systems;
- ``repro.evaluation`` -- pass@k, harness, ablations, figure data;
- ``repro.runtime`` -- parallel executors, content-addressed simulation
  cache, batch evaluation over the ``problems x runs`` grid.
"""

from repro.core.config import MAGEConfig
from repro.core.engine import MAGE, MAGEResult
from repro.core.task import DesignTask

__version__ = "1.0.0"

__all__ = ["MAGE", "MAGEConfig", "MAGEResult", "DesignTask", "__version__"]
