"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``problems``                    list the benchmark problems
- ``solve <problem_id>``          run MAGE on one problem
- ``run <problem_id>``            solve one task with a live event stream
- ``eval <system> <suite>``       evaluate a registered system
- ``bench <system> <suite>``      benchmark the runtime (speedup, cache)
- ``cache``                       per-layer, per-tier cache stats
                                  (``--clear [--layer sim|solve|llm]``
                                  wipes a disk tier)
- ``stats``                       gateway / per-stage / cache metrics
                                  (local process or ``--service``)
- ``serve``                       start a long-lived solve service
- ``submit <system> <problem>``   submit one cell to a running service
- ``lint <file.v>``               lint a Verilog file
- ``tb <file.v> <bench.tb>``      run a testbench against a design

``eval`` and ``bench`` accept ``--jobs N`` (parallel workers; results
are bit-identical at any worker count for fixed seeds),
``--cache/--no-cache`` (content-addressed simulation memoization), and
``--solve-cache`` (whole solve-cell memoization: repeated sweeps over
the same ``config x problem x seed`` grid re-run near-free).
``eval --runs`` defaults to the ``REPRO_EVAL_RUNS`` environment
override, falling back to 1; ``eval --progress`` streams typed
per-cell events as they finish.

Rollout batching: ``eval --rollout-batch N|auto`` gang-schedules the
Step-4 sampling stage across up to N concurrent grid cells (coalesced
candidate-scoring waves through the simulation cache); ``auto`` sizes
waves adaptively from the StageClock's measured per-stage costs and
turns on speculative simulation (cache warming only).  ``bench
--rollout`` measures it against cold *and* warm serial-sampling
baselines (``speedup_vs_cold`` is gated via ``--min-speedup``; numbers
in ``BENCH_rollout.json``), ``serve --rollout-batch N`` turns the same
batching on inside the solve service's workers, and ``serve
--steal-peer ADDR`` lets a server's idle workers drain a busy peer's
published score waves (``WaveSteal`` frames, results returned through
the cache fabric).  Batched rows and event streams stay bit-identical
to ``--jobs 1`` serial runs -- with fixed or auto widths, with or
without speculation, stolen or local.

Service mode: ``serve`` binds a localhost TCP solve service (broker +
long-lived worker pool over both cache layers); ``submit`` streams one
cell's typed events from it; ``eval --service HOST:PORT[,HOST:PORT...]``
shards the evaluation grid across running servers with a deterministic
merge (bit-identical to local ``--jobs 1``); ``bench --service``
measures submit-to-done latency and warm-cache serving speedup, writing
``BENCH_service.json``; ``cache --service`` and ``serve --stop`` query
and drain a running server.

LLM gateway: ``eval``/``run``/``serve`` accept ``--gateway`` (route
every LLM call through the multi-backend gateway), ``--backends
CHAIN`` (ordered fallback chain, e.g. ``openai,anthropic,sim``;
``flaky@N`` and ``down`` exist for failure drills), ``--stage-model
role=model`` (per-agent-role routing for tb/rtl/judge/debug), and the
cassette pair ``--record``/``--replay`` with ``--cassette-dir DIR``:
record writes every completion into a content-addressed cassette
store (shareable over cache peers as the ``llm`` layer), replay
serves from it with zero network and fails loudly on a miss.  Replay
rows and event streams are bit-identical to the recording run.  The
``stats`` command reports gateway call/retry/fallback/token counters
and per-stage wall-clock.

Cache fabric: both cache layers are tiered (memory -> disk -> remote
peers).  ``eval --cache-peer ADDR``, ``serve --cache-peer ADDR``, and
``bench --cache-peer ADDR`` join one or more running solve servers to
the local fabric as remote tiers -- cells and simulations warmed
anywhere in the peer ring replay locally (rows and event streams stay
bit-identical), and fresh results gossip back over the service
protocol's ``CachePut`` frames.  ``bench --peer-cache`` gates the
cold-via-peer speedup into ``BENCH_cache.json``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path


def _batch_width(value: str):
    """``--rollout-batch`` values: a positive wave width or ``auto``.

    ``auto`` turns on cost-aware adaptive sizing: the scheduler feeds
    the StageClock's measured per-stage wall-clock into a WavePlanner
    that re-sizes every wave (rows stay bit-identical either way).
    """
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer wave width or 'auto', got {value!r}"
        ) from None


def _cmd_problems(_args) -> int:
    from repro.evalsets import all_problems

    print(f"{'id':22s} {'category':14s} {'diff':>5s} title")
    print("-" * 72)
    for problem in all_problems():
        print(
            f"{problem.id:22s} {problem.category:14s} "
            f"{problem.difficulty:5.2f} {problem.title}"
        )
    return 0


def _cmd_solve(args) -> int:
    from repro import MAGE, DesignTask, MAGEConfig
    from repro.evalsets import get_problem, golden_testbench
    from repro.tb.runner import run_testbench

    problem = get_problem(args.problem)
    config = (
        MAGEConfig.low_temperature()
        if args.low_temperature
        else MAGEConfig.high_temperature()
    )
    result = MAGE(config).solve(DesignTask.from_problem(problem), seed=args.seed)
    print(result.transcript.render())
    print()
    print(result.source)
    golden = run_testbench(result.source, golden_testbench(problem), problem.top)
    print(f"golden testbench: {'PASS' if golden.passed else 'FAIL'}")
    return 0 if golden.passed else 1


def _cmd_run(args) -> int:
    """Solve one named task with the typed event stream printed live."""
    from functools import partial

    from repro import MAGEConfig
    from repro.baselines.registry import MAGESystem, SYSTEMS, system_names
    from repro.core.events import StreamSink
    from repro.evalsets import get_problem, golden_testbench
    from repro.runtime.cache import (
        SolveCellCache,
        cached_run_testbench,
        system_fingerprint,
    )
    from repro.runtime.workers import solve_streaming

    try:
        problem = get_problem(args.problem)
    except KeyError as exc:
        print(f"error: {exc}")
        return 2
    failed = _activate_gateway(args)
    if failed is not None:
        return failed
    sink = StreamSink(write=lambda line: print(f"  | {line}"))
    if args.system == "mage":
        config = (
            MAGEConfig.low_temperature()
            if args.low_temperature
            else MAGEConfig.high_temperature()
        )
        factory = partial(MAGESystem, config)
    else:
        if args.system not in SYSTEMS:
            print(f"unknown system; choose from: mage, {', '.join(system_names())}")
            return 2
        if args.low_temperature:
            print(
                "error: --low-temperature only applies to --system mage "
                "(registered systems carry their own sampling settings)"
            )
            return 2
        factory = SYSTEMS[args.system].factory
    solve_cache = None
    if args.solve_cache or args.solve_cache_dir:
        solve_cache = SolveCellCache(
            args.solve_cache_dir or os.environ.get("REPRO_SOLVE_CACHE_DIR")
        )
    fingerprint = (
        system_fingerprint(factory) if solve_cache is not None else None
    )
    source, cached = solve_streaming(
        factory,
        problem,
        args.seed,
        sink=sink,
        solve_cache=solve_cache,
        fingerprint=fingerprint,
    )
    if solve_cache is not None:
        print(f"solve-cell cache: {'hit' if cached else 'miss'}")
    print()
    print(source)
    golden = cached_run_testbench(source, golden_testbench(problem), problem.top)
    print(f"golden testbench: {'PASS' if golden.passed else 'FAIL'}")
    return 0 if golden.passed else 1


def _add_gateway_flags(parser) -> None:
    """The LLM-gateway flag family shared by eval/run/serve."""
    parser.add_argument(
        "--gateway",
        action="store_true",
        help="route LLM calls through the multi-backend gateway "
        "(retry/backoff, fallback chains, call accounting)",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="gateway record mode: write every completion into the "
        "cassette store (implies --gateway)",
    )
    parser.add_argument(
        "--replay",
        action="store_true",
        help="gateway replay mode: serve completions from the cassette "
        "store with zero network; a miss is an error (implies --gateway)",
    )
    parser.add_argument(
        "--cassette-dir",
        default=None,
        help="cassette store directory (default: $REPRO_CASSETTE_DIR)",
    )
    parser.add_argument(
        "--backends",
        default=None,
        metavar="CHAIN",
        help="ordered gateway fallback chain, comma-separated "
        "(sim, openai[:URL], anthropic[:URL], flaky@N, down; "
        "default: $REPRO_GATEWAY_BACKENDS or sim)",
    )
    parser.add_argument(
        "--stage-model",
        action="append",
        default=None,
        metavar="ROLE=MODEL",
        help="route one agent role (tb|rtl|judge|debug) to a model; "
        "repeatable (default: $REPRO_STAGE_MODELS)",
    )


def _gateway_from_args(args):
    """(settings, error): gateway settings from flags over env, or
    (None, None) when no gateway flag was given."""
    flagged = any(
        (
            args.gateway,
            args.record,
            args.replay,
            args.cassette_dir,
            args.backends,
            args.stage_model,
        )
    )
    if not flagged:
        return None, None
    if args.record and args.replay:
        return None, "error: --record and --replay are mutually exclusive"
    from repro.llm.gateway import (
        GatewaySettings,
        parse_backends,
        parse_stage_models,
    )

    overrides: dict = {"enabled": True}
    if args.record:
        overrides["mode"] = "record"
    if args.replay:
        overrides["mode"] = "replay"
    if args.cassette_dir:
        overrides["cassette_dir"] = args.cassette_dir
    if args.backends:
        overrides["backends"] = parse_backends(args.backends)
    if args.stage_model:
        try:
            overrides["stage_models"] = parse_stage_models(
                ",".join(args.stage_model)
            )
        except ValueError as exc:
            return None, f"error: {exc}"
    try:
        settings = GatewaySettings.from_env(**overrides)
    except ValueError as exc:
        return None, f"error: {exc}"
    if settings.mode in ("record", "replay") and not settings.cassette_dir:
        return None, (
            "error: --record/--replay need --cassette-dir "
            "(or REPRO_CASSETTE_DIR)"
        )
    return settings, None


def _activate_gateway(args) -> int | None:
    """Materialise gateway flags into the environment; error code or None.

    Writing ``settings.to_env()`` through ``os.environ`` is the one
    propagation path that reaches everything downstream -- lazily built
    runtime contexts, pool worker processes, and a ``serve`` server's
    construction-time resolution -- without threading a settings object
    through every call site.
    """
    settings, error = _gateway_from_args(args)
    if error is not None:
        print(error)
        return 2
    if settings is not None:
        os.environ.update(settings.to_env())
    return None


def _render_gateway_lines(gw: dict, mode: str | None = None) -> list[str]:
    """Human-readable gateway counter block (CLI stats surface)."""
    suffix = f" (mode: {mode})" if mode else ""
    lines = [
        f"  calls {gw.get('calls', 0)}, "
        f"completions {gw.get('completions', 0)}, "
        f"retries {gw.get('retries', 0)}, "
        f"fallbacks {gw.get('fallbacks', 0)}, "
        f"failures {gw.get('failures', 0)}{suffix}",
        f"  tokens: {gw.get('prompt_tokens', 0)} prompt + "
        f"{gw.get('completion_tokens', 0)} completion "
        f"(est. cost ${gw.get('cost', 0.0):.4f})",
        f"  cassette: {gw.get('cassette_hits', 0)} hits, "
        f"{gw.get('cassette_misses', 0)} misses, "
        f"{gw.get('recorded', 0)} recorded, "
        f"{gw.get('replayed', 0)} replayed; "
        f"rate-limit waits {gw.get('rate_limit_waits', 0)}",
    ]
    return lines


def _render_stage_lines(stages: dict) -> list[str]:
    """One line per pipeline stage from a StageClock snapshot."""
    lines = []
    for name, entry in stages.items():
        runs = entry.get("runs", 0)
        seconds = entry.get("seconds", 0.0)
        mean = seconds / runs if runs else 0.0
        lines.append(
            f"  {name:40s} runs {runs:>5d}  total {seconds:8.3f}s  "
            f"mean {mean:7.4f}s"
        )
    return lines


def _render_counter_line(stats: dict) -> str:
    lookups = stats.get("lookups", 0)
    hits = stats.get("hits", 0)
    rate = 100.0 * hits / lookups if lookups else 0.0
    line = (
        f"lookups {lookups}, hits {hits} "
        f"(disk {stats.get('disk_hits', 0)}, "
        f"peer {stats.get('remote_hits', 0)}), "
        f"misses {stats.get('misses', 0)}, "
        f"stores {stats.get('stores', 0)}, hit-rate {rate:.1f}%"
    )
    if stats.get("corrupt"):
        line += f", corrupt {stats['corrupt']}"
    return line


def _render_tier_lines(tiers: list[dict]) -> list[str]:
    """One indented line per cache tier (the fabric's stats surface)."""
    lines = []
    for tier in tiers:
        entries = tier.get("entries")
        shown = "?" if entries is None else str(entries)
        line = (
            f"    tier {tier.get('detail', tier.get('kind', '?')):40s} "
            f"entries {shown:>6s}  hits {tier.get('hits', 0)}, "
            f"misses {tier.get('misses', 0)}, stores {tier.get('stores', 0)}"
        )
        if tier.get("corrupt"):
            line += f", corrupt {tier['corrupt']}"
        if tier.get("errors"):
            line += f", errors {tier['errors']}"
        if tier.get("evictions"):
            line += f", evictions {tier['evictions']}"
        if tier.get("expired"):
            line += f", expired {tier['expired']}"
        lines.append(line)
    return lines


def _cmd_cache_clear(args) -> int:
    """``cache --clear``: wipe the selected on-disk tier(s)."""
    from repro.runtime.cache import clear_disk_cache

    layers = [
        ("sim", args.sim_dir or os.environ.get("REPRO_SIM_CACHE_DIR")),
        ("solve", args.solve_dir or os.environ.get("REPRO_SOLVE_CACHE_DIR")),
        ("llm", args.cassette_dir or os.environ.get("REPRO_CASSETTE_DIR")),
    ]
    if args.layer:
        layers = [(name, directory) for name, directory in layers if name == args.layer]
    cleared = False
    for name, directory in layers:
        if not directory:
            print(f"{name}: no disk directory configured, nothing to clear")
            continue
        removed = clear_disk_cache(directory)
        print(
            f"{name}: cleared {removed.entries} entries "
            f"({removed.megabytes:.2f} MiB) from {directory}"
        )
        cleared = True
    if not cleared:
        print(
            "error: nothing to clear; pass --sim-dir/--solve-dir/"
            "--cassette-dir or set REPRO_SIM_CACHE_DIR / "
            "REPRO_SOLVE_CACHE_DIR / REPRO_CASSETTE_DIR"
        )
        return 2
    return 0


def _cmd_cache(args) -> int:
    """Per-layer cache report: disk size plus per-tier hit/miss counters.

    The two layers (simulation vs solve-cell) are reported separately
    and identically (entry counts + bytes for the disk tier, counters
    for every tier of the live fabric); ``--service`` queries a running
    solve server's live counters instead of this process's, and
    ``--clear`` wipes the selected on-disk tier(s) instead of
    reporting.
    """
    from repro.runtime.cache import disk_cache_info
    from repro.runtime.context import get_runtime

    if args.clear:
        return _cmd_cache_clear(args)
    if args.service:
        from repro.service import ProtocolError, ServiceError, fetch_stats

        try:
            stats = fetch_stats(args.service)
        except (OSError, ValueError, ServiceError, ProtocolError) as exc:
            print(f"error: cannot reach service at {args.service}: {exc}")
            return 2
        broker = stats.get("broker", {})
        workers = stats.get("service", {})
        print(
            f"service {stats.get('address', args.service)}: "
            f"{stats.get('workers', 0)} workers, "
            f"{stats.get('pending', 0)} pending"
        )
        print(
            f"  requests: submitted {broker.get('submitted', 0)}, "
            f"deduped {broker.get('deduped', 0)}, "
            f"completed {broker.get('completed', 0)}, "
            f"failed {broker.get('failed', 0)}, "
            f"rejected {broker.get('rejected', 0)}"
        )
        print(
            f"  workers: executed {workers.get('executed', 0)}, "
            f"cache-served {workers.get('cache_served', 0)}, "
            f"errors {workers.get('errors', 0)}"
        )
        print(
            f"  peer traffic: gets {workers.get('peer_gets', 0)} "
            f"(hits {workers.get('peer_hits', 0)}), "
            f"puts {workers.get('peer_puts', 0)}"
        )
        layers = stats.get("caches", {})
        for label, key in (
            ("simulation cache", "simulation"),
            ("solve-cell cache", "solve_cell"),
            ("cassette cache", "cassette"),
        ):
            layer = layers.get(key)
            if layer is None:
                print(f"  {label}: disabled")
                continue
            print(
                f"  {label}: {layer.get('entries', 0)} entries, "
                + _render_counter_line(layer)
            )
            for line in _render_tier_lines(layer.get("tiers") or []):
                print("  " + line)
        return 0

    runtime = get_runtime()
    layers = [
        (
            "simulation cache",
            args.sim_dir or os.environ.get("REPRO_SIM_CACHE_DIR"),
            runtime.cache,
            "REPRO_SIM_CACHE=1",
        ),
        (
            "solve-cell cache",
            args.solve_dir or os.environ.get("REPRO_SOLVE_CACHE_DIR"),
            runtime.solve_cache,
            "REPRO_SOLVE_CACHE=1",
        ),
        (
            "cassette cache",
            args.cassette_dir or os.environ.get("REPRO_CASSETTE_DIR"),
            None,
            "REPRO_GATEWAY=1 with a cassette dir",
        ),
    ]
    reported = False
    for label, directory, live, enable_hint in layers:
        print(label)
        if not directory:
            print("  disk: no disk directory configured")
        else:
            info = disk_cache_info(directory)
            print(
                f"  disk: {info.directory}: {info.entries} entries, "
                f"{info.megabytes:.2f} MiB"
            )
            reported = True
        if live is None:
            print(f"  this process: layer not active (set {enable_hint})")
        else:
            stats = live.stats
            print(
                "  this process: "
                + _render_counter_line(
                    {
                        "lookups": stats.lookups,
                        "hits": stats.hits,
                        "misses": stats.misses,
                        "stores": stats.stores,
                        "disk_hits": stats.disk_hits,
                        "remote_hits": stats.remote_hits,
                        "corrupt": stats.corrupt,
                    }
                )
            )
            for line in _render_tier_lines(live.tier_report()):
                print(line)
    if not reported:
        print(
            "hint: set REPRO_SIM_CACHE_DIR / REPRO_SOLVE_CACHE_DIR (or pass "
            "--sim-dir / --solve-dir) to persist caches across processes; "
            "--service HOST:PORT reports a running solve server instead"
        )
    return 0


def _cmd_stats(args) -> int:
    """Runtime metrics report: gateway, per-stage wall-clock, caches.

    Local mode reports this process's counters -- mostly useful after
    an in-process run or under test; ``--service HOST:PORT`` renders a
    running solve server's live :class:`StatsReply` instead, which is
    the normal way to watch a long-lived deployment.  ``--prometheus``
    renders either snapshot in the Prometheus text exposition format
    (scrape-by-cron / textfile-collector friendly).
    """
    if args.service:
        from repro.service import ProtocolError, ServiceError, fetch_stats

        try:
            stats = fetch_stats(args.service)
        except (OSError, ValueError, ServiceError, ProtocolError) as exc:
            print(f"error: cannot reach service at {args.service}: {exc}")
            return 2
        if args.prometheus:
            from repro.service import render_prometheus

            print(render_prometheus(stats), end="")
            return 0
        print(
            f"service {stats.get('address', args.service)}: "
            f"{stats.get('workers', 0)} workers, "
            f"{stats.get('pending', 0)} pending"
        )
        print("gateway")
        for line in _render_gateway_lines(
            stats.get("gateway", {}), stats.get("gateway_mode")
        ):
            print(line)
        stages = stats.get("stages", {})
        print("stages")
        if stages:
            for line in _render_stage_lines(stages):
                print(line)
        else:
            print("  no stage executions yet")
        layers = stats.get("caches", {})
        print("caches")
        for label, key in (
            ("simulation", "simulation"),
            ("solve-cell", "solve_cell"),
            ("cassette", "cassette"),
        ):
            layer = layers.get(key)
            if layer is None:
                print(f"  {label}: disabled")
                continue
            print(
                f"  {label}: {layer.get('entries', 0)} entries, "
                + _render_counter_line(layer)
            )
            for line in _render_tier_lines(layer.get("tiers") or []):
                print("  " + line)
        return 0

    from repro.core.pipeline import STAGE_CLOCK
    from repro.llm.gateway import GATEWAY_STATS, resolve_gateway_settings
    from repro.runtime.cache import disk_cache_info

    settings = resolve_gateway_settings()
    if args.prometheus:
        from repro.service import render_prometheus

        snapshot = {
            "gateway": GATEWAY_STATS.snapshot(),
            "gateway_mode": settings.mode if settings.enabled else None,
            "stages": STAGE_CLOCK.snapshot(),
        }
        print(render_prometheus(snapshot), end="")
        return 0
    print("gateway" + ("" if settings.enabled else " (not enabled)"))
    for line in _render_gateway_lines(
        GATEWAY_STATS.snapshot(), settings.mode if settings.enabled else None
    ):
        print(line)
    stages = STAGE_CLOCK.snapshot()
    print("stages")
    if stages:
        for line in _render_stage_lines(stages):
            print(line)
    else:
        print("  no stage executions in this process")
    print("disk caches")
    reported = False
    for label, directory in (
        ("simulation", os.environ.get("REPRO_SIM_CACHE_DIR")),
        ("solve-cell", os.environ.get("REPRO_SOLVE_CACHE_DIR")),
        ("cassette", settings.cassette_dir),
    ):
        if not directory:
            continue
        info = disk_cache_info(directory)
        print(
            f"  {label}: {info.directory}: {info.entries} entries, "
            f"{info.megabytes:.2f} MiB"
        )
        reported = True
    if not reported:
        print("  none configured")
    return 0


def _choose_problems(suite: str, limit: int | None):
    if limit is None:
        return None
    from repro.evalsets.suites import get_suite

    return get_suite(suite)[:limit]


def _cmd_eval(args) -> int:
    from repro.baselines.registry import SYSTEMS, system_names
    from repro.core.events import StreamSink
    from repro.evaluation.harness import default_runs
    from repro.runtime import create_executor, evaluate_many

    if args.system not in SYSTEMS:
        print(f"unknown system; choose from: {', '.join(system_names())}")
        return 2
    spec = SYSTEMS[args.system]
    runs = args.runs if args.runs is not None else default_runs(1)
    events = (
        StreamSink(write=lambda line: print("  ~ " + line))
        if args.progress
        else None
    )
    gateway_settings, gateway_error = _gateway_from_args(args)
    if gateway_error is not None:
        print(gateway_error)
        return 2
    if args.service:
        # Execution happens server-side; local-executor flags would be
        # silently meaningless, so reject the combination outright.
        conflicting = [
            flag
            for flag, value in (
                ("--jobs", args.jobs),
                ("--executor", args.executor),
                ("--cache/--no-cache", args.cache),
                ("--solve-cache/--no-solve-cache", args.solve_cache),
                ("--rollout-batch", args.rollout_batch),
                ("--cache-peer", args.cache_peer),
                ("--gateway/--record/--replay", gateway_settings),
            )
            if value is not None
        ]
        if conflicting:
            print(
                "error: "
                + ", ".join(conflicting)
                + " cannot be combined with --service "
                "(execution and caching are configured on the server)"
            )
            return 2
        return _eval_via_service(args, runs, events)
    if args.ring:
        print("error: --ring requires --service (ring members are servers)")
        return 2
    if gateway_settings is not None:
        os.environ.update(gateway_settings.to_env())
    cache_arg = args.cache
    solve_arg = args.solve_cache
    if args.cache_peer:
        # Peered local evaluation: both cache fabrics gain one remote
        # tier per peer address, so cells warmed anywhere in the ring
        # replay here (and local results gossip back out).  Layer
        # enablement and directories still resolve exactly as without
        # peers (flags beat env vars beat defaults) -- --cache-peer
        # must never re-enable a layer the user disabled.
        from repro.runtime import RuntimeConfig, SimulationCache, SolveCellCache
        from repro.service import parse_shards

        try:
            peers = tuple(parse_shards(args.cache_peer))
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
        resolved = RuntimeConfig.from_env(
            cache=args.cache, solve_cache=args.solve_cache
        )
        if resolved.cache:
            cache_arg = SimulationCache(resolved.cache_dir, peers=peers)
        if resolved.solve_cache:
            solve_arg = SolveCellCache(resolved.solve_cache_dir, peers=peers)
    from repro.runtime.config import default_jobs

    jobs = args.jobs if args.jobs is not None else default_jobs()
    try:
        executor = create_executor(jobs=jobs, kind=args.executor)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    try:
        result, report = evaluate_many(
            spec.factory,
            args.suite,
            runs=runs,
            seed0=args.seed0,
            problems=_choose_problems(args.suite, args.limit),
            executor=executor,
            cache=cache_arg,
            solve_cache=solve_arg,
            progress=(lambda line: print("  " + line)) if args.verbose else None,
            events=events,
            rollout_batch=args.rollout_batch or 0,
        )
        _print_eval_result(result, report, verbose=args.verbose)
    except (KeyError, ValueError) as exc:
        # Bad suite name, zero runs, an empty problem slice, ...
        print(f"error: {exc}")
        return 2
    finally:
        executor.shutdown()
    return 0


def _print_eval_result(result, report, verbose: bool) -> None:
    """One output path for local and service eval (CI diffs the rows)."""
    print(result.render_row())
    if verbose:
        print(report.render())
    if result.failures():
        print("failures:", ", ".join(result.failures()))


def _eval_via_service(args, runs: int, events) -> int:
    """Route one evaluation grid through running service shards."""
    from repro.service import (
        ProtocolError,
        ServiceError,
        parse_shards,
        solve_grid,
    )

    try:
        shards = parse_shards(args.service)
        result, report = solve_grid(
            args.system,
            args.suite,
            runs=runs,
            seed0=args.seed0,
            problems=_choose_problems(args.suite, args.limit),
            shards=shards,
            progress=(lambda line: print("  " + line)) if args.verbose else None,
            events=events,
            ring=args.ring,
        )
    except (KeyError, ValueError, OSError, ServiceError, ProtocolError) as exc:
        print(f"error: {exc}")
        return 2
    _print_eval_result(result, report, verbose=args.verbose)
    return 0


def _cmd_bench(args) -> int:
    """Benchmark the runtime on a repeated-runs workload.

    Pass 1 is the cold baseline (serial, empty cache); every later pass
    reuses the warmed cache on ``--jobs`` workers.  Reports per-pass
    wall-clock, simulations/second, cache hit-rate, and the end-to-end
    speedup -- and verifies that every pass reproduced the baseline
    Pass@1 exactly.
    """
    from repro.baselines.registry import SYSTEMS, system_names
    from repro.runtime import (
        SerialExecutor,
        SimulationCache,
        SolveCellCache,
        create_executor,
    )
    from repro.runtime.batch import evaluate_many

    if args.system not in SYSTEMS:
        print(f"unknown system; choose from: {', '.join(system_names())}")
        return 2
    spec = SYSTEMS[args.system]
    try:
        problems = _choose_problems(args.suite, args.limit)
    except KeyError as exc:
        print(f"error: {exc}")
        return 2
    if args.service:
        # The service bench has its own fixed shape (in-process baseline
        # + cold/warm server passes over in-memory caches); local-pass
        # flags would be silently meaningless, so reject them.
        conflicting = [
            flag
            for flag, value in (
                ("--repeat", args.repeat),
                ("--cache/--no-cache", args.cache),
                ("--cache-dir", args.cache_dir),
                ("--solve-cache/--no-solve-cache", args.solve_cache),
                ("--solve-cache-dir", args.solve_cache_dir),
            )
            if value is not None
        ]
        if args.rollout:
            conflicting.append("--rollout")
        if args.rollout_batch is not None:
            conflicting.append("--rollout-batch")
        if args.peer_cache:
            conflicting.append("--peer-cache")
        if args.cache_peer is not None:
            conflicting.append("--cache-peer")
        if args.ring:
            conflicting.append("--ring")
        if conflicting:
            print(
                "error: "
                + ", ".join(conflicting)
                + " cannot be combined with --service"
            )
            return 2
        return _bench_service(args, spec, problems)
    if args.ring:
        # The ring chaos gate spawns its own server subprocesses; local
        # pass flags don't apply.
        conflicting = [
            flag
            for flag, value in (
                ("--repeat", args.repeat),
                ("--cache/--no-cache", args.cache),
                ("--cache-dir", args.cache_dir),
                ("--solve-cache/--no-solve-cache", args.solve_cache),
                ("--solve-cache-dir", args.solve_cache_dir),
                ("--cache-peer", args.cache_peer),
            )
            if value is not None
        ]
        if args.rollout:
            conflicting.append("--rollout")
        if args.peer_cache:
            conflicting.append("--peer-cache")
        if conflicting:
            print(
                "error: "
                + ", ".join(conflicting)
                + " cannot be combined with --ring"
            )
            return 2
        return _bench_ring(args, spec, problems)
    if args.peer_cache:
        # Self-contained peer-cache gate: spawns its own in-process
        # server, so per-pass cache flags don't apply.
        conflicting = [
            flag
            for flag, value in (
                ("--repeat", args.repeat),
                ("--cache/--no-cache", args.cache),
                ("--cache-dir", args.cache_dir),
                ("--solve-cache/--no-solve-cache", args.solve_cache),
                ("--solve-cache-dir", args.solve_cache_dir),
                ("--cache-peer", args.cache_peer),
            )
            if value is not None
        ]
        if args.rollout:
            conflicting.append("--rollout")
        if conflicting:
            print(
                "error: "
                + ", ".join(conflicting)
                + " cannot be combined with --peer-cache"
            )
            return 2
        return _bench_peer_cache(args, spec, problems)
    if args.rollout_batch is not None and not args.rollout:
        print(
            "error: --rollout-batch only applies to bench --rollout "
            "(pass --rollout to benchmark gang-scheduled sampling)"
        )
        return 2
    from repro.runtime.config import default_jobs

    repeat = args.repeat if args.repeat is not None else 2
    use_cache = args.cache if args.cache is not None else True
    use_solve_cache = (
        args.solve_cache if args.solve_cache is not None else False
    )
    if repeat < 2:
        print("error: --repeat must be >= 2 (pass 1 is the cold baseline)")
        return 2
    jobs = args.jobs if args.jobs is not None else default_jobs()
    try:
        # Warm rollout passes are dominated by cache lookups and live
        # state handoff, both of which a process pool would turn into
        # pickling; the auto kind (serial on one core, threads past
        # that) keeps the handoff inline.  --executor process remains
        # available for measuring true multi-core cold sweeps.
        warm_executor = create_executor(jobs=jobs, kind=args.executor)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    cache_dir = args.cache_dir
    solve_dir = args.solve_cache_dir
    if warm_executor.kind == "process":
        # Process workers can't see the parent's in-memory caches; the
        # disk layer is the only cross-process medium for warm passes.
        import tempfile

        if use_cache and cache_dir is None:
            cache_dir = tempfile.mkdtemp(prefix="repro-simcache-")
            print(f"note: process executor; sharing the cache via {cache_dir}")
        if use_solve_cache and solve_dir is None:
            solve_dir = tempfile.mkdtemp(prefix="repro-solvecache-")
            print(
                "note: process executor; sharing the solve cache via "
                f"{solve_dir}"
            )
    peers: tuple = ()
    if args.cache_peer:
        from repro.service import parse_shards

        try:
            peers = tuple(parse_shards(args.cache_peer))
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
    cache = SimulationCache(cache_dir, peers=peers) if use_cache else False
    solve_cache = (
        SolveCellCache(solve_dir, peers=peers) if use_solve_cache else False
    )
    rollout_batch = (
        (args.rollout_batch if args.rollout_batch is not None else "auto")
        if args.rollout
        else 0
    )
    if args.rollout:
        # Fixed shape: one cold serial-sampling baseline, then
        # alternating warm-serial / warm-rollout passes over the same
        # cache state.  The two warm passes do near-identical work on a
        # fully warm cache, so a single-shot wall comparison is
        # scheduler-noise-bound; alternation plus best-of-(repeat - 1)
        # is what makes the warm attribution meaningful.
        plan = [("cold serial", True, 0)]
        for _ in range(repeat - 1):
            plan.append(("warm serial", True, 0))
            plan.append(("warm rollout", False, rollout_batch))
        # Spawn the process pool before any timed pass: pool startup is
        # a once-per-deployment cost, not a per-wave one.
        if warm_executor.kind == "process":
            warm_executor.map(abs, [0] * warm_executor.workers)
    else:
        plan = [("cold serial", True, 0)]
        plan += [("warm", False, 0)] * (repeat - 1)
    passes = []
    deterministic = True
    try:
        for index, (label, serial, batch) in enumerate(plan):
            executor = SerialExecutor() if serial else warm_executor
            try:
                result, report = evaluate_many(
                    spec.factory,
                    args.suite,
                    runs=args.runs,
                    seed0=args.seed0,
                    problems=problems,
                    executor=executor,
                    cache=cache,
                    solve_cache=solve_cache,
                    rollout_batch=batch,
                )
            except (KeyError, ValueError) as exc:
                print(f"error: {exc}")
                return 2
            passes.append((label, result, report))
            if result.outcomes != passes[0][1].outcomes:
                deterministic = False
            shown = label if serial else f"{label} {report.executor}"
            print(
                f"pass {index + 1} ({shown:>16s}): "
                f"{report.wall_seconds:7.2f} s  "
                f"{report.sims_per_second:7.1f} sims/s  "
                f"hit-rate {100.0 * report.cache.hit_rate:5.1f}%"
            )
    finally:
        warm_executor.shutdown()
    first, last = passes[0][2], passes[-1][2]
    gate_wall = last.wall_seconds
    if args.rollout:
        gate_wall = min(
            report.wall_seconds
            for label, _, report in passes
            if label == "warm rollout"
        )
    speedup = first.wall_seconds / gate_wall if gate_wall > 0 else 0.0
    print()
    print(passes[-1][1].render_row())
    print(last.render())
    print(f"speedup         {speedup:8.2f}x  (cold pass 1 vs best warm)")
    print(f"deterministic   {'yes' if deterministic else 'NO -- MISMATCH'}")
    if args.rollout:
        import json

        warm_wall = min(
            report.wall_seconds
            for label, _, report in passes
            if label == "warm serial"
        )
        speedup_vs_warm = warm_wall / gate_wall if gate_wall > 0 else 0.0
        print(
            f"vs cold serial  {speedup:8.2f}x  "
            f"(cache reuse + parallel waves + dedup combined)"
        )
        print(
            f"vs warm serial  {speedup_vs_warm:8.2f}x  "
            f"(equal cache state; gang-scheduling alone)"
        )
        bench_out = args.bench_out or "BENCH_rollout.json"
        payload = {
            "system": args.system,
            "suite": args.suite,
            "runs": args.runs,
            "seed0": args.seed0,
            "cells": last.cells,
            "rollout_batch": rollout_batch,
            "executor": last.executor,
            "jobs": last.jobs,
            "warm_passes": repeat - 1,
            "cold_serial_wall_seconds": round(first.wall_seconds, 6),
            # Warm walls are best-of-(repeat - 1) over alternating
            # passes; see the plan comment above.
            "warm_serial_wall_seconds": round(warm_wall, 6),
            "rollout_wall_seconds": round(gate_wall, 6),
            # Gated number: cold serial sampling vs the rollout pass
            # (cache reuse + wave dedup + gang-scheduling combined).
            "speedup_vs_cold": round(speedup, 3),
            # Gang-scheduling in isolation: warm serial vs warm rollout
            # over the same cache state.  The old single "batching"
            # number conflated these two baselines.
            "speedup_vs_warm": round(speedup_vs_warm, 3),
            "speculation": dict(last.speculation),
            "cache_hit_rate": round(last.cache.hit_rate, 4),
            "simulations": last.simulations,
            "deterministic": deterministic,
        }
        with open(bench_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"written         {bench_out}")
    if not deterministic:
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"error: speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )
        return 1
    return 0


def _bench_peer_cache(args, spec, problems) -> int:
    """Benchmark cold-start serving through a warm peer's cache fabric.

    Three measured passes over the same grid: a cold local serial
    baseline over fresh caches, the same grid executed through a fresh
    in-process solve server (which warms the *server's* tiers), and a
    second cold local pass whose fresh caches carry a
    :class:`~repro.runtime.cache.RemoteTier` pointed at that server --
    every solve cell and golden scoring then replays over ``CacheGet``
    frames instead of re-running.  ``--min-speedup`` gates cold-local
    vs cold-via-peer; the numbers land in ``BENCH_cache.json``.
    """
    import json

    from repro.runtime import SerialExecutor, SimulationCache, SolveCellCache
    from repro.runtime.batch import evaluate_many
    from repro.service import ServiceError, SolveServer, solve_grid

    try:
        with SerialExecutor() as executor:
            base_result, base_report = evaluate_many(
                spec.factory,
                args.suite,
                runs=args.runs,
                seed0=args.seed0,
                problems=problems,
                executor=executor,
                cache=SimulationCache(),
                solve_cache=False,
            )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    print(
        f"pass 1 (      cold local): {base_report.wall_seconds:7.2f} s  "
        f"{base_report.cells_per_second:7.2f} cells/s"
    )
    peer_sim = peer_solve = None
    try:
        with SolveServer(workers=args.jobs or 2) as server:
            warm_result, warm_report = solve_grid(
                args.system,
                args.suite,
                runs=args.runs,
                seed0=args.seed0,
                problems=problems,
                shards=[server.address],
            )
            print(
                f"pass 2 (  warming peer): {warm_report.wall_seconds:7.2f} s  "
                f"{warm_report.cells_per_second:7.2f} cells/s"
            )
            # Pass 3 is a *cold* process-local state: fresh caches whose
            # only warmth is the remote tier into the peer just warmed.
            peer_sim = SimulationCache(peers=(server.address,))
            peer_solve = SolveCellCache(peers=(server.address,))
            with SerialExecutor() as executor:
                peered_result, peered_report = evaluate_many(
                    spec.factory,
                    args.suite,
                    runs=args.runs,
                    seed0=args.seed0,
                    problems=problems,
                    executor=executor,
                    cache=peer_sim,
                    solve_cache=peer_solve,
                )
            print(
                f"pass 3 ( cold via peer): {peered_report.wall_seconds:7.2f} s  "
                f"{peered_report.cells_per_second:7.2f} cells/s  "
                f"peer hits {peer_solve.stats.remote_hits} solve + "
                f"{peer_sim.stats.remote_hits} sim"
            )
    except (OSError, ServiceError, ValueError, KeyError) as exc:
        print(f"error: {exc}")
        return 2
    deterministic = (
        warm_result.outcomes == base_result.outcomes
        and peered_result.outcomes == base_result.outcomes
    )
    speedup = (
        base_report.wall_seconds / peered_report.wall_seconds
        if peered_report.wall_seconds > 0
        else 0.0
    )
    payload = {
        "system": args.system,
        "suite": args.suite,
        "runs": args.runs,
        "seed0": args.seed0,
        "cells": peered_report.cells,
        "cold_local_wall_seconds": round(base_report.wall_seconds, 6),
        "peer_warming_wall_seconds": round(warm_report.wall_seconds, 6),
        "cold_via_peer_wall_seconds": round(peered_report.wall_seconds, 6),
        # Gated number: a cold process served through a warm peer vs
        # the same cold process computing everything itself.
        "speedup": round(speedup, 3),
        "peer_solve_hits": peer_solve.stats.remote_hits,
        "peer_sim_hits": peer_sim.stats.remote_hits,
        "deterministic": deterministic,
    }
    bench_out = args.bench_out or "BENCH_cache.json"
    with open(bench_out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print(peered_result.render_row())
    print(f"peer speedup    {speedup:8.2f}x  (cold local vs cold via peer)")
    print(f"deterministic   {'yes' if deterministic else 'NO -- MISMATCH'}")
    print(f"written         {bench_out}")
    if not deterministic:
        return 1
    if peer_solve.stats.remote_hits == 0:
        print("error: no peer solve-cell hits; the fabric never engaged")
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"error: peer speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )
        return 1
    return 0


def _bench_service(args, spec, problems) -> int:
    """Benchmark service-mode serving against the in-process runtime.

    Three measured passes over the same grid: in-process cold serial
    (the baseline the determinism contract is checked against), a cold
    pass through a fresh solve server (real submit-to-done latency),
    and a warm pass over the same server (served from the solve-cell
    cache without touching a worker).  ``--min-speedup`` gates
    warm-vs-cold service serving; the numbers land in
    ``BENCH_service.json``.
    """
    import json

    from repro.runtime import SerialExecutor, SimulationCache
    from repro.runtime.batch import evaluate_many
    from repro.service import ServiceError, SolveServer, solve_grid

    def grid_numbers(report):
        return {
            "wall_seconds": round(report.wall_seconds, 6),
            "cells_per_second": round(report.cells_per_second, 3),
            "latency_mean_ms": round(report.mean_latency * 1000.0, 3),
            "latency_max_ms": round(report.max_latency * 1000.0, 3),
            "cached_cells": report.cached_cells,
            "dedup_cells": report.dedup_cells,
        }

    try:
        with SerialExecutor() as executor:
            local_result, local_report = evaluate_many(
                spec.factory,
                args.suite,
                runs=args.runs,
                seed0=args.seed0,
                problems=problems,
                executor=executor,
                cache=SimulationCache(),
                solve_cache=False,
            )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    print(
        f"pass 1 (     in-process): {local_report.wall_seconds:7.2f} s  "
        f"{local_report.cells_per_second:7.2f} cells/s"
    )
    try:
        with SolveServer(workers=args.jobs or 2) as server:
            passes = []
            for label in ("service cold", "service warm"):
                result, report = solve_grid(
                    args.system,
                    args.suite,
                    runs=args.runs,
                    seed0=args.seed0,
                    problems=problems,
                    shards=[server.address],
                )
                passes.append((result, report))
                print(
                    f"pass {len(passes) + 1} ({label:>15s}): "
                    f"{report.wall_seconds:7.2f} s  "
                    f"{report.cells_per_second:7.2f} cells/s  "
                    f"latency mean {report.mean_latency * 1000.0:7.1f} ms  "
                    f"cached {report.cached_cells}"
                )
            executed = server.executed_count()
    except (OSError, ServiceError, ValueError, KeyError) as exc:
        print(f"error: {exc}")
        return 2
    (cold_result, cold_report), (warm_result, warm_report) = passes
    deterministic = (
        cold_result.outcomes == local_result.outcomes
        and warm_result.outcomes == local_result.outcomes
    )
    speedup = (
        cold_report.wall_seconds / warm_report.wall_seconds
        if warm_report.wall_seconds > 0
        else 0.0
    )
    payload = {
        "system": args.system,
        "suite": args.suite,
        "runs": args.runs,
        "seed0": args.seed0,
        "cells": cold_report.cells,
        "workers": args.jobs or 2,
        "in_process": {
            "wall_seconds": round(local_report.wall_seconds, 6),
            "cells_per_second": round(local_report.cells_per_second, 3),
        },
        "service_cold": grid_numbers(cold_report),
        "service_warm": grid_numbers(warm_report),
        "warm_speedup": round(speedup, 3),
        "pipeline_executions": executed,
        "deterministic": deterministic,
    }
    bench_out = args.bench_out or "BENCH_service.json"
    with open(bench_out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print(local_result.render_row())
    print(f"warm speedup    {speedup:8.2f}x  (service cold vs warm)")
    print(f"deterministic   {'yes' if deterministic else 'NO -- MISMATCH'}")
    print(f"written         {bench_out}")
    if not deterministic:
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"error: warm service speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )
        return 1
    return 0


def _spawn_ring_server(join: str | None = None):
    """Spawn one ``repro serve`` subprocess; returns (proc, address)."""
    import subprocess
    import sys as _sys

    import repro as _repro

    src_dir = str(Path(_repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    argv = [
        _sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        "--workers",
        "2",
    ]
    if join:
        argv += ["--join", join]
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    address = None
    for _ in range(20):  # skip banner lines (gateway, join notices)
        line = (proc.stdout.readline() or "").strip()
        if line.startswith("listening on "):
            address = line.removeprefix("listening on ")
            break
        if not line and proc.poll() is not None:
            break
    if address is None:
        proc.kill()
        raise RuntimeError("ring server failed to start")
    return proc, address


def _bench_ring(args, spec, problems) -> int:
    """Chaos-gate the elastic ring: 3 servers, one SIGKILLed mid-grid.

    Spawns a 3-member ring (two servers ``--join`` the first), runs the
    grid with ``ring=True`` placement, and SIGKILLs the member owning
    the most cells as soon as the first cell completes.  The gate is
    the determinism contract under failure: every merged row must be
    bit-identical to the local ``--jobs 1`` baseline, with the dead
    member's cells migrated to the survivors.  Results merge into
    ``BENCH_service.json`` under a ``ring`` key.
    """
    import json
    import threading
    import time as _time

    from repro.runtime import SerialExecutor, SimulationCache
    from repro.runtime.batch import evaluate_many
    from repro.service import (
        HashRing,
        ProtocolError,
        ServiceError,
        fetch_peers,
        registered_system_name,
        ring_key,
        solve_grid,
        stop_server,
    )

    try:
        with SerialExecutor() as executor:
            local_result, local_report = evaluate_many(
                spec.factory,
                args.suite,
                runs=args.runs,
                seed0=args.seed0,
                problems=problems,
                executor=executor,
                cache=SimulationCache(),
                solve_cache=False,
            )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    print(
        f"baseline (in-process --jobs 1): {local_report.wall_seconds:7.2f} s"
    )

    servers: list = []
    try:
        try:
            proc, seed_address = _spawn_ring_server()
            servers.append((proc, seed_address))
            for _ in range(2):
                servers.append(_spawn_ring_server(join=seed_address))
        except (OSError, RuntimeError) as exc:
            print(f"error: {exc}")
            return 2
        addresses = [address for _, address in servers]
        # Wait for the membership views to converge before placing work.
        deadline = _time.monotonic() + 30.0
        members: tuple = ()
        while _time.monotonic() < deadline:
            try:
                members = fetch_peers(seed_address)
            except (OSError, ServiceError, ProtocolError, ValueError):
                members = ()
            if set(members) >= set(addresses):
                break
            _time.sleep(0.2)
        if not set(members) >= set(addresses):
            print(f"error: ring never converged (view: {members})")
            return 1
        print(f"ring formed: {', '.join(sorted(members))}")

        # Pick the victim deterministically: the member that owns the
        # most grid cells (so the kill provably orphans work).
        ring = HashRing(sorted(members))
        resolved_name = registered_system_name(args.system)
        from repro.evalsets.suites import get_suite

        chosen = problems if problems is not None else get_suite(args.suite)
        owned: dict = {}
        for problem in chosen:
            for run in range(args.runs):
                owner = ring.node_for(
                    ring_key(resolved_name, problem.id, args.seed0 + run)
                )
                owned[owner] = owned.get(owner, 0) + 1
        victim = max(addresses, key=lambda a: owned.get(a, 0))
        victim_proc = next(p for p, a in servers if a == victim)

        killed = threading.Event()

        def chaos(event) -> None:
            # SIGKILL the victim the moment the first cell lands: the
            # grid is mid-flight by construction.
            if event.kind == "cell-finished" and not killed.is_set():
                killed.set()
                victim_proc.kill()

        started = _time.perf_counter()
        try:
            result, report = solve_grid(
                args.system,
                args.suite,
                runs=args.runs,
                seed0=args.seed0,
                problems=problems,
                shards=[seed_address],
                ring=True,
                events=chaos,
            )
        except (OSError, ServiceError, ValueError, KeyError) as exc:
            print(f"error: ring grid failed: {exc}")
            return 1
        wall = _time.perf_counter() - started
        deterministic = result.outcomes == local_result.outcomes
        print(
            f"ring grid ({len(members)} members, killed {victim} "
            f"mid-grid): {wall:7.2f} s  "
            f"{report.migrated_cells} migrated  "
            f"{report.retried_cells} retried"
        )
        print(result.render_row())
        print(
            f"deterministic   "
            f"{'yes' if deterministic else 'NO -- MISMATCH'}"
        )

        bench_out = args.bench_out or "BENCH_service.json"
        payload: dict = {}
        if os.path.exists(bench_out):
            try:
                with open(bench_out) as handle:
                    existing = json.load(handle)
                if isinstance(existing, dict):
                    payload = existing
            except (OSError, ValueError):
                payload = {}
        payload["ring"] = {
            "system": args.system,
            "suite": args.suite,
            "runs": args.runs,
            "seed0": args.seed0,
            "members": len(members),
            "cells": report.cells,
            "wall_seconds": round(wall, 6),
            "victim": victim,
            "killed_mid_grid": killed.is_set(),
            "migrated_cells": report.migrated_cells,
            "retried_cells": report.retried_cells,
            "dead_shards": list(report.dead_shards),
            "deterministic": deterministic,
        }
        with open(bench_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"written         {bench_out}")
        return 0 if deterministic else 1
    finally:
        for proc, address in servers:
            try:
                stop_server(address, timeout=5.0)
            except (OSError, ServiceError, ProtocolError, ValueError):
                pass
        for proc, _ in servers:
            try:
                proc.wait(timeout=10)
            except Exception:  # noqa: BLE001 -- force it down
                proc.kill()


def _cmd_serve(args) -> int:
    """Run (or stop) a long-lived solve service on localhost."""
    if args.stop:
        from repro.service import ProtocolError, ServiceError, stop_server

        try:
            stop_server(args.stop)
        except (OSError, ValueError, ServiceError, ProtocolError) as exc:
            print(f"error: cannot stop {args.stop}: {exc}")
            return 2
        print(f"server at {args.stop} draining")
        return 0
    failed = _activate_gateway(args)
    if failed is not None:
        return failed
    from repro.runtime import SimulationCache, SolveCellCache
    from repro.service import SolveServer

    sim_dir = args.sim_cache_dir or os.environ.get("REPRO_SIM_CACHE_DIR") or None
    solve_dir = (
        args.solve_cache_dir or os.environ.get("REPRO_SOLVE_CACHE_DIR") or None
    )
    peers: tuple = ()
    if args.cache_peer:
        from repro.service import parse_shards

        try:
            peers = tuple(parse_shards(args.cache_peer))
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
    steal_peers: tuple = ()
    if args.steal_peer:
        if not args.rollout_batch:
            print(
                "error: --steal-peer requires --rollout-batch "
                "(work stealing drains rollout score waves)"
            )
            return 2
        from repro.service import parse_shards

        try:
            steal_peers = tuple(parse_shards(",".join(args.steal_peer)))
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
    join: tuple = ()
    if args.join:
        from repro.service import parse_shards

        try:
            join = tuple(parse_shards(args.join))
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
    try:
        # Server-owned caches gossip write-behind: peer CachePuts ride a
        # background queue instead of the solve path, and a partitioned
        # peer's backlog drains when it comes back.
        server = SolveServer(
            host=args.host,
            port=args.port,
            workers=args.workers,
            sim_cache=SimulationCache(
                sim_dir, peers=peers, write_behind=True
            ),
            solve_cache=SolveCellCache(
                solve_dir, peers=peers, write_behind=True
            ),
            max_pending=args.max_pending,
            rollout_batch=args.rollout_batch,
            steal_peers=steal_peers,
            join=join,
            advertise=args.advertise,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    server.start()
    if join:
        print(f"joining ring via {', '.join(join)}")
    if server.gateway is not None:
        print(
            f"gateway: mode {server.gateway.mode}, "
            f"backends {','.join(server.gateway.backends)}"
        )
    print(f"listening on {server.address}", flush=True)
    try:
        server.wait()
    except KeyboardInterrupt:
        print("draining...")
        server.shutdown()
    return 0


def _cmd_submit(args) -> int:
    """Submit one solve cell to a running service, streaming its events."""
    from repro.core.events import StreamSink
    from repro.service import ProtocolError, ServiceClient, ServiceError

    sink = (
        None
        if args.quiet
        else StreamSink(write=lambda line: print(f"  | {line}"))
    )
    try:
        with ServiceClient(args.addr) as client:
            outcome = client.solve(
                args.system,
                args.problem,
                seed=args.seed,
                priority=args.priority,
                events=sink,
            )
    except (OSError, ValueError, ServiceError, ProtocolError) as exc:
        print(f"error: {exc}")
        return 2
    if args.source:
        print(outcome.source)
    flags = " [dedup]" if outcome.dedup else ""
    print(
        f"{outcome.system} {args.problem}: "
        f"{'PASS' if outcome.passed else 'FAIL'} "
        f"score {outcome.score:.3f} ({outcome.seconds:.2f}s) "
        f"cache: {'hit' if outcome.cached else 'miss'}{flags}"
    )
    return 0 if outcome.passed else 1


def _cmd_lint(args) -> int:
    from repro.hdl.lint import lint

    with open(args.file) as handle:
        report = lint(handle.read())
    print(report.render())
    return 0 if report.ok else 1


def _cmd_tb(args) -> int:
    from repro.tb.runner import run_testbench
    from repro.tb.stimulus import parse_testbench
    from repro.tb.textlog import render_textlog

    with open(args.design) as handle:
        source = handle.read()
    with open(args.testbench) as handle:
        tb = parse_testbench(handle.read())
    report = run_testbench(source, tb)
    print(render_textlog(report))
    print(
        f"\nscore {report.score:.3f} "
        f"({report.mismatches}/{report.total_checks} mismatches)"
    )
    if args.vcd:
        from repro.hdl.vcd import VcdRecorder

        recorder = VcdRecorder.for_runner()
        run_testbench(source, tb, on_step=recorder.on_step)
        recorder.write(args.vcd)
        print(f"waveform written to {args.vcd}")
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAGE reproduction: multi-agent RTL generation toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("problems", help="list benchmark problems").set_defaults(
        fn=_cmd_problems
    )

    solve = sub.add_parser("solve", help="run MAGE on one problem")
    solve.add_argument("problem")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--low-temperature", action="store_true")
    solve.set_defaults(fn=_cmd_solve)

    run = sub.add_parser(
        "run", help="solve one problem with a live typed event stream"
    )
    run.add_argument("problem")
    run.add_argument(
        "--system",
        default="mage",
        help="mage (default) or any registered system key",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--low-temperature", action="store_true")
    run.add_argument(
        "--solve-cache",
        action="store_true",
        help="memoize the whole solve cell (in-memory unless a dir is set)",
    )
    run.add_argument(
        "--solve-cache-dir",
        default=None,
        help="on-disk solve-cell cache; a warm second run replays its "
        "event stream from cache",
    )
    _add_gateway_flags(run)
    run.set_defaults(fn=_cmd_run)

    evaluate = sub.add_parser("eval", help="evaluate a system on a suite")
    evaluate.add_argument("system")
    evaluate.add_argument("suite", nargs="?", default="verilogeval-v2")
    evaluate.add_argument(
        "--runs",
        type=int,
        default=None,
        help="evaluation runs per problem (default: $REPRO_EVAL_RUNS or 1)",
    )
    evaluate.add_argument(
        "--seed0", type=int, default=0, help="base seed; run r uses seed0+r"
    )
    evaluate.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel workers (default: $REPRO_JOBS or every core)",
    )
    evaluate.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process"],
        default=None,
        help="execution backend (default: $REPRO_EXECUTOR or auto)",
    )
    evaluate.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="content-addressed simulation cache (default: on)",
    )
    evaluate.add_argument(
        "--solve-cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="whole solve-cell memoization (default: $REPRO_SOLVE_CACHE or off)",
    )
    evaluate.add_argument(
        "--rollout-batch",
        type=_batch_width,
        default=None,
        metavar="N|auto",
        help="gang-schedule Step-4 sampling across up to N concurrent "
        "cells; 'auto' sizes waves from measured stage costs "
        "(0 = off; rows stay bit-identical either way)",
    )
    evaluate.add_argument(
        "--limit", type=int, default=None, help="use only the first N problems"
    )
    evaluate.add_argument("--verbose", action="store_true")
    evaluate.add_argument(
        "--progress",
        action="store_true",
        help="stream typed per-cell events as they finish",
    )
    evaluate.add_argument(
        "--service",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="route the grid through running solve servers (sharded, "
        "deterministic merge; bit-identical to local --jobs 1)",
    )
    evaluate.add_argument(
        "--ring",
        action="store_true",
        help="with --service: treat the given address(es) as members of "
        "an elastic peer ring -- discover the full membership, place "
        "cells by consistent hash, and migrate cells off members that "
        "die mid-grid (rows stay bit-identical)",
    )
    evaluate.add_argument(
        "--cache-peer",
        default=None,
        metavar="ADDR[,ADDR...]",
        help="peer solve servers whose caches join the local fabric as "
        "remote tiers (cells warmed anywhere in the ring replay here; "
        "rows stay bit-identical)",
    )
    _add_gateway_flags(evaluate)
    evaluate.set_defaults(fn=_cmd_eval)

    bench = sub.add_parser(
        "bench", help="benchmark runtime throughput and cache on a workload"
    )
    bench.add_argument("system")
    bench.add_argument("suite", nargs="?", default="verilogeval-v2")
    bench.add_argument("--runs", type=int, default=2)
    bench.add_argument("--seed0", type=int, default=0)
    bench.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="workers for the warm passes "
        "(default: $REPRO_JOBS or every core)",
    )
    bench.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process"],
        default=None,
        help="execution backend for the warm passes "
        "(default: $REPRO_EXECUTOR or auto)",
    )
    bench.add_argument(
        "--repeat",
        type=int,
        default=None,
        help="total passes over the workload, at least 2 "
        "(default 2; pass 1 is the cold baseline)",
    )
    bench.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="simulation cache shared across passes (default: on)",
    )
    bench.add_argument(
        "--cache-dir", default=None, help="optional on-disk cache directory"
    )
    bench.add_argument(
        "--solve-cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="also share a whole solve-cell cache across passes "
        "(default: off)",
    )
    bench.add_argument(
        "--solve-cache-dir",
        default=None,
        help="optional on-disk solve-cell cache directory",
    )
    bench.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the warm pass is at least this many times faster",
    )
    bench.add_argument(
        "--limit", type=int, default=None, help="use only the first N problems"
    )
    bench.add_argument(
        "--service",
        action="store_true",
        help="benchmark service-mode serving (spawns an in-process server; "
        "measures submit-to-done latency and warm-cache speedup)",
    )
    bench.add_argument(
        "--ring",
        action="store_true",
        help="chaos-gate the elastic peer ring: spawn a 3-server ring "
        "(serve --join), SIGKILL one member mid-grid, and verify every "
        "row is still bit-identical to local --jobs 1 (merges a 'ring' "
        "section into BENCH_service.json)",
    )
    bench.add_argument(
        "--rollout",
        action="store_true",
        help="benchmark rollout batching: pass 1 is cold serial sampling; "
        "the warm passes gang-schedule Step-4 across cells over the "
        "shared simulation cache (speedup = wave coalescing + dedup + "
        "cache reuse; writes BENCH_rollout.json)",
    )
    bench.add_argument(
        "--rollout-batch",
        type=_batch_width,
        default=None,
        metavar="N|auto",
        help="wave width for --rollout: a fixed width or 'auto' for "
        "cost-aware adaptive sizing (default auto)",
    )
    bench.add_argument(
        "--peer-cache",
        action="store_true",
        help="benchmark the cache fabric's peer sharing: cold local "
        "baseline, a pass warming an in-process server, then a cold "
        "pass served through that peer (writes BENCH_cache.json)",
    )
    bench.add_argument(
        "--cache-peer",
        default=None,
        metavar="ADDR[,ADDR...]",
        help="peer solve servers joined to the warm passes' cache "
        "fabrics as remote tiers",
    )
    bench.add_argument(
        "--bench-out",
        default=None,
        help="where --service / --rollout / --peer-cache write their "
        "numbers (default BENCH_service.json / BENCH_rollout.json / "
        "BENCH_cache.json)",
    )
    bench.set_defaults(fn=_cmd_bench)

    cache_cmd = sub.add_parser(
        "cache", help="report per-layer cache sizes and hit/miss counters"
    )
    cache_cmd.add_argument(
        "--sim-dir",
        default=None,
        help="simulation cache directory (default: $REPRO_SIM_CACHE_DIR)",
    )
    cache_cmd.add_argument(
        "--solve-dir",
        default=None,
        help="solve-cell cache directory (default: $REPRO_SOLVE_CACHE_DIR)",
    )
    cache_cmd.add_argument(
        "--cassette-dir",
        default=None,
        help="LLM cassette directory (default: $REPRO_CASSETTE_DIR)",
    )
    cache_cmd.add_argument(
        "--service",
        default=None,
        metavar="HOST:PORT",
        help="report a running solve server's live counters instead",
    )
    cache_cmd.add_argument(
        "--clear",
        action="store_true",
        help="wipe the on-disk cache tier(s) instead of reporting",
    )
    cache_cmd.add_argument(
        "--layer",
        choices=["sim", "solve", "llm"],
        default=None,
        help="restrict --clear to one cache layer (default: all)",
    )
    cache_cmd.set_defaults(fn=_cmd_cache)

    stats_cmd = sub.add_parser(
        "stats",
        help="gateway, per-stage, and cache metrics (local or --service)",
    )
    stats_cmd.add_argument(
        "--service",
        default=None,
        metavar="HOST:PORT",
        help="report a running solve server's live metrics instead of "
        "this process's",
    )
    stats_cmd.add_argument(
        "--prometheus",
        action="store_true",
        help="render the metrics in Prometheus text exposition format "
        "(works locally and with --service)",
    )
    stats_cmd.set_defaults(fn=_cmd_stats)

    serve = sub.add_parser(
        "serve", help="start a long-lived solve service on localhost"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = pick a free one)"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="long-lived solve workers"
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="queued-job ceiling before submits are rejected (backpressure)",
    )
    serve.add_argument(
        "--rollout-batch",
        type=int,
        default=0,
        metavar="N",
        help="gang-schedule sampling across up to N in-flight cells per "
        "worker (0 = one job at a time)",
    )
    serve.add_argument(
        "--sim-cache-dir",
        default=None,
        help="on-disk simulation cache (default: $REPRO_SIM_CACHE_DIR)",
    )
    serve.add_argument(
        "--solve-cache-dir",
        default=None,
        help="on-disk solve-cell cache (default: $REPRO_SOLVE_CACHE_DIR)",
    )
    serve.add_argument(
        "--cache-peer",
        default=None,
        metavar="ADDR[,ADDR...]",
        help="peer solve servers whose caches join this server's fabric "
        "as remote tiers (warm cells replay across the ring; fresh "
        "results gossip back)",
    )
    serve.add_argument(
        "--steal-peer",
        action="append",
        default=None,
        metavar="ADDR",
        help="peer solve server whose published score waves this "
        "server's idle workers drain over WaveSteal frames; repeatable "
        "(requires --rollout-batch; results return through the cache "
        "fabric, so outputs never change)",
    )
    serve.add_argument(
        "--join",
        default=None,
        metavar="ADDR[,ADDR...]",
        help="join an elastic peer ring through any existing member: "
        "membership is gossiped over PeerHello/PeerList frames, ring "
        "members' caches become remote tiers automatically, and "
        "solve_grid(ring=True) places cells by consistent hash",
    )
    serve.add_argument(
        "--advertise",
        default=None,
        metavar="HOST:PORT",
        help="the address other ring members should reach this server "
        "on (default: the bound address)",
    )
    serve.add_argument(
        "--stop",
        default=None,
        metavar="HOST:PORT",
        help="gracefully drain and stop a running server instead of starting",
    )
    _add_gateway_flags(serve)
    serve.set_defaults(fn=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit one solve cell to a running service"
    )
    submit.add_argument("system")
    submit.add_argument("problem")
    submit.add_argument(
        "--addr",
        default=os.environ.get("REPRO_SERVICE_ADDR", "127.0.0.1:7341"),
        help="service address (default: $REPRO_SERVICE_ADDR or "
        "127.0.0.1:7341)",
    )
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--priority", type=int, default=0, help="higher runs sooner"
    )
    submit.add_argument(
        "--quiet", action="store_true", help="suppress the event stream"
    )
    submit.add_argument(
        "--source", action="store_true", help="also print the final RTL"
    )
    submit.set_defaults(fn=_cmd_submit)

    lint_cmd = sub.add_parser("lint", help="lint a Verilog file")
    lint_cmd.add_argument("file")
    lint_cmd.set_defaults(fn=_cmd_lint)

    tb = sub.add_parser("tb", help="run a testbench against a design")
    tb.add_argument("design")
    tb.add_argument("testbench")
    tb.add_argument("--vcd", help="also dump a VCD waveform")
    tb.set_defaults(fn=_cmd_tb)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
