"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``problems``                    list the benchmark problems
- ``solve <problem_id>``          run MAGE on one problem
- ``run <problem_id>``            solve one task with a live event stream
- ``eval <system> <suite>``       evaluate a registered system
- ``bench <system> <suite>``      benchmark the runtime (speedup, cache)
- ``cache``                       report disk-cache hit/miss/size stats
- ``lint <file.v>``               lint a Verilog file
- ``tb <file.v> <bench.tb>``      run a testbench against a design

``eval`` and ``bench`` accept ``--jobs N`` (parallel workers; results
are bit-identical at any worker count for fixed seeds),
``--cache/--no-cache`` (content-addressed simulation memoization), and
``--solve-cache`` (whole solve-cell memoization: repeated sweeps over
the same ``config x problem x seed`` grid re-run near-free).
``eval --runs`` defaults to the ``REPRO_EVAL_RUNS`` environment
override, falling back to 1; ``eval --progress`` streams typed
per-cell events as they finish.
"""

from __future__ import annotations

import argparse
import os
import sys


def _cmd_problems(_args) -> int:
    from repro.evalsets import all_problems

    print(f"{'id':22s} {'category':14s} {'diff':>5s} title")
    print("-" * 72)
    for problem in all_problems():
        print(
            f"{problem.id:22s} {problem.category:14s} "
            f"{problem.difficulty:5.2f} {problem.title}"
        )
    return 0


def _cmd_solve(args) -> int:
    from repro import MAGE, DesignTask, MAGEConfig
    from repro.evalsets import get_problem, golden_testbench
    from repro.tb.runner import run_testbench

    problem = get_problem(args.problem)
    config = (
        MAGEConfig.low_temperature()
        if args.low_temperature
        else MAGEConfig.high_temperature()
    )
    result = MAGE(config).solve(DesignTask.from_problem(problem), seed=args.seed)
    print(result.transcript.render())
    print()
    print(result.source)
    golden = run_testbench(result.source, golden_testbench(problem), problem.top)
    print(f"golden testbench: {'PASS' if golden.passed else 'FAIL'}")
    return 0 if golden.passed else 1


def _cmd_run(args) -> int:
    """Solve one named task with the typed event stream printed live."""
    from repro import MAGE, DesignTask, MAGEConfig
    from repro.baselines.registry import SYSTEMS, create_system, system_names
    from repro.core.events import StreamSink
    from repro.evalsets import get_problem, golden_testbench
    from repro.runtime.cache import cached_run_testbench

    try:
        problem = get_problem(args.problem)
    except KeyError as exc:
        print(f"error: {exc}")
        return 2
    task = DesignTask.from_problem(problem)
    sink = StreamSink(write=lambda line: print(f"  | {line}"))
    if args.system == "mage":
        config = (
            MAGEConfig.low_temperature()
            if args.low_temperature
            else MAGEConfig.high_temperature()
        )
        result = MAGE(config).solve(task, seed=args.seed, sink=sink)
        source = result.source
    else:
        if args.system not in SYSTEMS:
            print(f"unknown system; choose from: mage, {', '.join(system_names())}")
            return 2
        if args.low_temperature:
            print(
                "error: --low-temperature only applies to --system mage "
                "(registered systems carry their own sampling settings)"
            )
            return 2
        system = create_system(args.system)
        source = system.solve(task, seed=args.seed, sink=sink)
    print()
    print(source)
    golden = cached_run_testbench(source, golden_testbench(problem), problem.top)
    print(f"golden testbench: {'PASS' if golden.passed else 'FAIL'}")
    return 0 if golden.passed else 1


def _cmd_cache(args) -> int:
    """Report hit/miss/size statistics for the configured disk caches."""
    from repro.runtime.cache import disk_cache_info
    from repro.runtime.context import get_runtime

    targets = [
        ("simulation cache", args.sim_dir or os.environ.get("REPRO_SIM_CACHE_DIR")),
        (
            "solve-cell cache",
            args.solve_dir or os.environ.get("REPRO_SOLVE_CACHE_DIR"),
        ),
    ]
    reported = False
    for label, directory in targets:
        if not directory:
            print(f"{label:18s} no disk directory configured")
            continue
        info = disk_cache_info(directory)
        print(
            f"{label:18s} {info.directory}: {info.entries} entries, "
            f"{info.megabytes:.2f} MiB"
        )
        reported = True
    runtime = get_runtime()
    for label, live in (
        ("simulation cache", runtime.cache),
        ("solve-cell cache", runtime.solve_cache),
    ):
        if live is None:
            continue
        stats = live.stats
        print(
            f"{label:18s} (this process) lookups {stats.lookups}, "
            f"hits {stats.hits}, misses {stats.misses}, "
            f"hit-rate {100.0 * stats.hit_rate:.1f}%"
        )
    if not reported:
        print(
            "hint: set REPRO_SIM_CACHE_DIR / REPRO_SOLVE_CACHE_DIR (or pass "
            "--sim-dir / --solve-dir) to persist caches across processes"
        )
    return 0


def _choose_problems(suite: str, limit: int | None):
    if limit is None:
        return None
    from repro.evalsets.suites import get_suite

    return get_suite(suite)[:limit]


def _cmd_eval(args) -> int:
    from repro.baselines.registry import SYSTEMS, system_names
    from repro.core.events import StreamSink
    from repro.evaluation.harness import default_runs
    from repro.runtime import create_executor, evaluate_many

    if args.system not in SYSTEMS:
        print(f"unknown system; choose from: {', '.join(system_names())}")
        return 2
    spec = SYSTEMS[args.system]
    runs = args.runs if args.runs is not None else default_runs(1)
    try:
        executor = create_executor(jobs=args.jobs, kind=args.executor)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    events = (
        StreamSink(write=lambda line: print("  ~ " + line))
        if args.progress
        else None
    )
    try:
        result, report = evaluate_many(
            spec.factory,
            args.suite,
            runs=runs,
            seed0=args.seed0,
            problems=_choose_problems(args.suite, args.limit),
            executor=executor,
            cache=args.cache,
            solve_cache=args.solve_cache,
            progress=(lambda line: print("  " + line)) if args.verbose else None,
            events=events,
        )
        print(result.render_row())
        if args.verbose:
            print(report.render())
        if result.failures():
            print("failures:", ", ".join(result.failures()))
    except (KeyError, ValueError) as exc:
        # Bad suite name, zero runs, an empty problem slice, ...
        print(f"error: {exc}")
        return 2
    finally:
        executor.shutdown()
    return 0


def _cmd_bench(args) -> int:
    """Benchmark the runtime on a repeated-runs workload.

    Pass 1 is the cold baseline (serial, empty cache); every later pass
    reuses the warmed cache on ``--jobs`` workers.  Reports per-pass
    wall-clock, simulations/second, cache hit-rate, and the end-to-end
    speedup -- and verifies that every pass reproduced the baseline
    Pass@1 exactly.
    """
    from repro.baselines.registry import SYSTEMS, system_names
    from repro.runtime import (
        SerialExecutor,
        SimulationCache,
        SolveCellCache,
        create_executor,
    )
    from repro.runtime.batch import evaluate_many

    if args.system not in SYSTEMS:
        print(f"unknown system; choose from: {', '.join(system_names())}")
        return 2
    spec = SYSTEMS[args.system]
    try:
        problems = _choose_problems(args.suite, args.limit)
    except KeyError as exc:
        print(f"error: {exc}")
        return 2
    if args.repeat < 2:
        print("error: --repeat must be >= 2 (pass 1 is the cold baseline)")
        return 2
    try:
        warm_executor = create_executor(jobs=args.jobs)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    cache_dir = args.cache_dir
    solve_dir = args.solve_cache_dir
    if warm_executor.kind == "process":
        # Process workers can't see the parent's in-memory caches; the
        # disk layer is the only cross-process medium for warm passes.
        import tempfile

        if args.cache and cache_dir is None:
            cache_dir = tempfile.mkdtemp(prefix="repro-simcache-")
            print(f"note: process executor; sharing the cache via {cache_dir}")
        if args.solve_cache and solve_dir is None:
            solve_dir = tempfile.mkdtemp(prefix="repro-solvecache-")
            print(
                "note: process executor; sharing the solve cache via "
                f"{solve_dir}"
            )
    cache = SimulationCache(cache_dir) if args.cache else False
    solve_cache = SolveCellCache(solve_dir) if args.solve_cache else False
    passes = []
    deterministic = True
    try:
        for index in range(args.repeat):
            cold = index == 0
            executor = SerialExecutor() if cold else warm_executor
            try:
                result, report = evaluate_many(
                    spec.factory,
                    args.suite,
                    runs=args.runs,
                    seed0=args.seed0,
                    problems=problems,
                    executor=executor,
                    cache=cache,
                    solve_cache=solve_cache,
                )
            except (KeyError, ValueError) as exc:
                print(f"error: {exc}")
                return 2
            passes.append((result, report))
            if result.outcomes != passes[0][0].outcomes:
                deterministic = False
            label = "cold serial" if cold else f"warm {report.executor}"
            print(
                f"pass {index + 1} ({label:>16s}): "
                f"{report.wall_seconds:7.2f} s  "
                f"{report.sims_per_second:7.1f} sims/s  "
                f"hit-rate {100.0 * report.cache.hit_rate:5.1f}%"
            )
    finally:
        warm_executor.shutdown()
    first, last = passes[0][1], passes[-1][1]
    speedup = (
        first.wall_seconds / last.wall_seconds if last.wall_seconds > 0 else 0.0
    )
    print()
    print(passes[-1][0].render_row())
    print(last.render())
    print(f"speedup         {speedup:8.2f}x  (pass 1 vs pass {len(passes)})")
    print(f"deterministic   {'yes' if deterministic else 'NO -- MISMATCH'}")
    if not deterministic:
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"error: speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )
        return 1
    return 0


def _cmd_lint(args) -> int:
    from repro.hdl.lint import lint

    with open(args.file) as handle:
        report = lint(handle.read())
    print(report.render())
    return 0 if report.ok else 1


def _cmd_tb(args) -> int:
    from repro.tb.runner import run_testbench
    from repro.tb.stimulus import parse_testbench
    from repro.tb.textlog import render_textlog

    with open(args.design) as handle:
        source = handle.read()
    with open(args.testbench) as handle:
        tb = parse_testbench(handle.read())
    report = run_testbench(source, tb)
    print(render_textlog(report))
    print(
        f"\nscore {report.score:.3f} "
        f"({report.mismatches}/{report.total_checks} mismatches)"
    )
    if args.vcd:
        from repro.hdl.vcd import VcdRecorder

        recorder = VcdRecorder.for_runner()
        run_testbench(source, tb, on_step=recorder.on_step)
        recorder.write(args.vcd)
        print(f"waveform written to {args.vcd}")
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAGE reproduction: multi-agent RTL generation toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("problems", help="list benchmark problems").set_defaults(
        fn=_cmd_problems
    )

    solve = sub.add_parser("solve", help="run MAGE on one problem")
    solve.add_argument("problem")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--low-temperature", action="store_true")
    solve.set_defaults(fn=_cmd_solve)

    run = sub.add_parser(
        "run", help="solve one problem with a live typed event stream"
    )
    run.add_argument("problem")
    run.add_argument(
        "--system",
        default="mage",
        help="mage (default) or any registered system key",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--low-temperature", action="store_true")
    run.set_defaults(fn=_cmd_run)

    evaluate = sub.add_parser("eval", help="evaluate a system on a suite")
    evaluate.add_argument("system")
    evaluate.add_argument("suite", nargs="?", default="verilogeval-v2")
    evaluate.add_argument(
        "--runs",
        type=int,
        default=None,
        help="evaluation runs per problem (default: $REPRO_EVAL_RUNS or 1)",
    )
    evaluate.add_argument(
        "--seed0", type=int, default=0, help="base seed; run r uses seed0+r"
    )
    evaluate.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel workers (default: $REPRO_JOBS or 1)",
    )
    evaluate.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process"],
        default=None,
        help="execution backend (default: $REPRO_EXECUTOR or auto)",
    )
    evaluate.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="content-addressed simulation cache (default: on)",
    )
    evaluate.add_argument(
        "--solve-cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="whole solve-cell memoization (default: $REPRO_SOLVE_CACHE or off)",
    )
    evaluate.add_argument(
        "--limit", type=int, default=None, help="use only the first N problems"
    )
    evaluate.add_argument("--verbose", action="store_true")
    evaluate.add_argument(
        "--progress",
        action="store_true",
        help="stream typed per-cell events as they finish",
    )
    evaluate.set_defaults(fn=_cmd_eval)

    bench = sub.add_parser(
        "bench", help="benchmark runtime throughput and cache on a workload"
    )
    bench.add_argument("system")
    bench.add_argument("suite", nargs="?", default="verilogeval-v2")
    bench.add_argument("--runs", type=int, default=2)
    bench.add_argument("--seed0", type=int, default=0)
    bench.add_argument(
        "--jobs", type=int, default=None, help="workers for the warm passes"
    )
    bench.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="total passes over the workload, at least 2 "
        "(pass 1 is the cold baseline)",
    )
    bench.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="simulation cache shared across passes",
    )
    bench.add_argument(
        "--cache-dir", default=None, help="optional on-disk cache directory"
    )
    bench.add_argument(
        "--solve-cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="also share a whole solve-cell cache across passes",
    )
    bench.add_argument(
        "--solve-cache-dir",
        default=None,
        help="optional on-disk solve-cell cache directory",
    )
    bench.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the warm pass is at least this many times faster",
    )
    bench.add_argument(
        "--limit", type=int, default=None, help="use only the first N problems"
    )
    bench.set_defaults(fn=_cmd_bench)

    cache_cmd = sub.add_parser(
        "cache", help="report disk-cache entry counts and sizes"
    )
    cache_cmd.add_argument(
        "--sim-dir",
        default=None,
        help="simulation cache directory (default: $REPRO_SIM_CACHE_DIR)",
    )
    cache_cmd.add_argument(
        "--solve-dir",
        default=None,
        help="solve-cell cache directory (default: $REPRO_SOLVE_CACHE_DIR)",
    )
    cache_cmd.set_defaults(fn=_cmd_cache)

    lint_cmd = sub.add_parser("lint", help="lint a Verilog file")
    lint_cmd.add_argument("file")
    lint_cmd.set_defaults(fn=_cmd_lint)

    tb = sub.add_parser("tb", help="run a testbench against a design")
    tb.add_argument("design")
    tb.add_argument("testbench")
    tb.add_argument("--vcd", help="also dump a VCD waveform")
    tb.set_defaults(fn=_cmd_tb)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
